//! Offline stand-in for `serde`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` as API
//! surface, but no code path in the repo performs serde serialization (the
//! benchmark artifacts are emitted as hand-built JSON). This crate supplies
//! the trait names and re-exports the no-op derives so the workspace builds
//! in the offline container. Swapping in real serde is a one-line change in
//! the workspace manifest.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
