//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::{default, sample_size, bench_function}`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each sample times a batch of
//! iterations sized so one sample takes roughly a millisecond, and the
//! reported figure is the mean ns/iter over `sample_size` samples (plus
//! min/max for dispersion). No plots, no statistical regression analysis —
//! the numbers print to stdout in a `cargo bench`-like format and the
//! `addict-bench` JSON emitters do their own timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to each target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    /// Mean ns/iter of each sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called in batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: find how many iterations fill ~1 ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= (1 << 24) {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            self.samples.push(ns / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran * 2)
            })
        });
        assert!(ran > 0);
    }
}
