//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` function runner (deterministic seeds, one per
//! case), `ProptestConfig::with_cases`, range/tuple/`Just`/`prop_map`
//! strategies, `prop::collection::{vec, btree_set}`, weighted and
//! unweighted `prop_oneof!`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from crates.io proptest, acceptable for this repo's tests:
//! no shrinking (a failing case panics with its assert message directly),
//! and the default case count is 64 rather than 256.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for test case number `case`.
    pub fn for_case(case: u32) -> Self {
        TestRng(StdRng::seed_from_u64(
            0xADD1C7_u64 ^ (u64::from(case) << 24),
        ))
    }

    /// Next 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
///
/// Methods needing `Self: Sized` are gated so `Box<dyn Strategy<Value = T>>`
/// remains usable (required by `prop_oneof!`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O + Clone>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy (`Just(value)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.bits()) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.bits()) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Weighted union of boxed strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted option"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.bits() % total;
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Box a strategy for use inside a [`Union`].
pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    /// A `Vec` of `len` in `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.bits() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` with *up to* `size.end - 1` distinct elements (at least
    /// `size.start` when the element universe allows it).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.bits() % span) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts: a small element universe may not contain n
            // distinct values.
            for _ in 0..(n * 50 + 100) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves after a prelude
/// glob import, as with crates.io proptest.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (stub: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::box_strategy($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::box_strategy($strat))),+])
    };
}

/// The property-test runner: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the macro, as with
/// crates.io proptest) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(3);
        let s = (0u8..3, 5u64..10, 1usize..=4);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 3 && (5..10).contains(&b) && (1..=4).contains(&c));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_case(0);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "trues = {trues}");
    }

    #[test]
    fn vec_and_btree_set_sizes() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..50 {
            let v = prop::collection::vec(0u64..100, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = prop::collection::btree_set(0u64..1000, 3..9).generate(&mut rng);
            assert!(s.len() >= 3 && s.len() < 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The runner macro itself: bindings, config, asserts.
        #[test]
        fn runner_binds_arguments(x in 0u64..50, ys in prop::collection::vec(0u8..10, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
            prop_assert_ne!(ys.len(), 0);
        }
    }
}
