//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic,
//! fast, and statistically strong enough for workload generation and tests.
//! The exact stream differs from crates.io `StdRng` (ChaCha12), which is
//! fine: nothing in the workspace depends on rand's specific byte stream,
//! only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor this repo uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Marker for types uniformly samplable from a range. Mirrors rand's
/// `SampleUniform`; the bound is what lets `gen_range(-50..=50)` infer its
/// output type from the surrounding expression.
pub trait SampleUniform {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T: SampleUniform> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Derive a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_bits_standard(self.next_u64()) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

trait F64Helper {
    fn from_bits_standard(bits: u64) -> f64;
}

impl F64Helper for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place randomization of slices.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    /// A uniformly random element, `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (replaces ChaCha12 offline).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
