//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public result
//! types so downstream users *can* wire up serialization, but nothing in
//! the repo ever drives serde itself (artifacts are emitted as hand-built
//! JSON). The container image has no network access to crates.io, so these
//! derives expand to nothing: the attribute parses, no impls are emitted,
//! and no code in the workspace requires the impls to exist.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
