//! Bring your own workload: define a custom schema and transaction mix
//! directly against the storage engine, trace it, and see what ADDICT's
//! profiling makes of it.
//!
//! The scenario is a small message-queue-style application: producers
//! append messages (insert into an indexed table), consumers pop the
//! oldest (scan + delete) and bump a per-topic counter (probe + update) —
//! a mix deliberately unlike the TPC benchmarks.
//!
//! This example drives the engine by hand for full control; for a mix
//! expressible as tables + typed steps, prefer declaring an
//! `addict::workloads::spec::WorkloadSpec` and letting `SpecRunner`
//! interpret it (that path inherits the registry, sweep, and determinism
//! machinery for free — see the TATP and YCSB entries).
//!
//! Run with: `cargo run --release --example custom_workload`

use addict::core::find_migration_points;
use addict::core::replay::ReplayConfig;
use addict::core::sched::{run_scheduler, SchedulerKind};
use addict::storage::{Engine, EngineConfig};
use addict::trace::{WorkloadTrace, XctTypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRODUCE: XctTypeId = XctTypeId(0);
const CONSUME: XctTypeId = XctTypeId(1);

fn main() {
    let mut e = Engine::new(EngineConfig::default());

    // Schema: messages (pk = sequence number), topics (pk = topic id).
    let messages = e.create_table("messages");
    let messages_pk = e
        .create_index(messages, "messages_pk")
        .expect("table exists");
    let topics = e.create_table("topics");
    let topics_pk = e.create_index(topics, "topics_pk").expect("table exists");

    // Populate topics (untraced).
    e.set_tracing(false);
    let x = e.begin(PRODUCE);
    for t in 0..16u64 {
        e.insert_tuple(x, topics, &[(topics_pk, t)], &[0u8; 64])
            .expect("populate");
    }
    e.commit(x).expect("populate commit");
    e.set_tracing(true);

    // The mix: 60% produce, 40% consume.
    let mut rng = StdRng::seed_from_u64(11);
    let mut next_seq = 0u64;
    let mut oldest = 0u64;
    for _ in 0..400 {
        if rng.gen_bool(0.6) || next_seq == oldest {
            let x = e.begin(PRODUCE);
            let payload = vec![rng.gen::<u8>(); 180];
            e.insert_tuple(x, messages, &[(messages_pk, next_seq)], &payload)
                .expect("produce");
            // Bump the topic's message counter.
            let t = next_seq % 16;
            let rid = e
                .index_probe_rid(x, topics_pk, t)
                .expect("probe")
                .expect("exists");
            let mut row = e.peek(topics, rid).expect("row");
            row[0] = row[0].wrapping_add(1);
            e.update_tuple(x, topics, rid, &row).expect("update");
            e.commit(x).expect("commit");
            next_seq += 1;
        } else {
            let x = e.begin(CONSUME);
            // Pop the oldest pending message.
            let batch = e
                .index_scan(x, messages_pk, oldest, true, oldest + 8, true)
                .expect("scan");
            if let Some((seq, _)) = batch.first() {
                let seq = *seq;
                e.delete_tuple(x, messages, &[(messages_pk, seq)])
                    .expect("consume");
                oldest = seq + 1;
            }
            e.commit(x).expect("commit");
        }
    }

    let trace = WorkloadTrace {
        name: "msgqueue".into(),
        xct_type_names: vec!["Produce".into(), "Consume".into()],
        xcts: e.take_traces(),
    };
    println!("traced {} custom transactions", trace.xcts.len());

    // Profile on the first half, evaluate on the second.
    let mid = trace.xcts.len() / 2;
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&trace.xcts[..mid], cfg.sim.l1i);
    for ty in map.xct_types() {
        println!("\n{} migration plan:", trace.type_name(ty));
        for op in map.ops_of(ty) {
            println!(
                "  {:<7} invoked {:>4}x, {} migration point(s)",
                op.name(),
                map.frequency(ty, op),
                map.points(ty, op).map_or(0, Vec::len)
            );
        }
    }

    let eval = &trace.xcts[mid..];
    let base = run_scheduler(SchedulerKind::Baseline, eval, Some(&map), &cfg);
    let addict = run_scheduler(SchedulerKind::Addict, eval, Some(&map), &cfg);
    println!(
        "\nBaseline: {:.2e} cycles, {:.1} L1-I mpki | ADDICT: {:.2e} cycles, {:.1} L1-I mpki",
        base.total_cycles,
        base.stats.l1i_mpki(),
        addict.total_cycles,
        addict.stats.l1i_mpki()
    );
    println!(
        "ADDICT on your workload: {:.0}% fewer instruction misses, {:.0}% {} execution",
        100.0 * (1.0 - addict.stats.l1i_mpki() / base.stats.l1i_mpki()),
        100.0 * (1.0 - addict.total_cycles / base.total_cycles).abs(),
        if addict.total_cycles < base.total_cycles {
            "faster"
        } else {
            "slower"
        }
    );
}
