//! Quickstart: the whole ADDICT pipeline in ~60 lines.
//!
//! 1. Build and populate a TPC-C database on the storage engine.
//! 2. Trace 200 transactions (the profiling run).
//! 3. Run Algorithm 1 to find the migration points.
//! 4. Trace 200 fresh transactions and replay them under traditional
//!    scheduling and under ADDICT on the simulated 16-core machine.
//!
//! Run with: `cargo run --release --example quickstart`

use addict::core::find_migration_points;
use addict::core::replay::ReplayConfig;
use addict::core::sched::{run_scheduler, SchedulerKind};
use addict::trace::OpKind;
use addict::workloads::{collect_traces, Benchmark};

fn main() {
    // 1. Schema + population (untraced), then the workload runner.
    println!("setting up TPC-C ...");
    let (mut engine, mut workload) = Benchmark::TpcC.setup();

    // 2. Profiling traces: every instruction-block walk and data-block
    //    access of 200 transactions, bracketed by operation markers.
    let profile = collect_traces(&mut engine, workload.as_mut(), 200, 1);
    println!(
        "profiled {} transactions, {:.1}M instructions",
        profile.xcts.len(),
        profile.instructions() as f64 / 1e6
    );

    // 3. Algorithm 1: migration points per (transaction type, operation).
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
    for ty in map.xct_types() {
        let name = profile.type_name(ty);
        for op in map.ops_of(ty) {
            let points = map.points(ty, op).map_or(0, Vec::len);
            println!(
                "  {name:<12} {:<7} -> {points} migration point(s)",
                op.name()
            );
        }
    }

    // 4. Fresh traces, replayed under Baseline and ADDICT.
    let eval = collect_traces(&mut engine, workload.as_mut(), 200, 2);
    let baseline = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
    let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);

    println!("\n                   Baseline       ADDICT");
    println!(
        "L1-I MPKI        {:>10.2} {:>12.2}   ({:.0}% fewer instruction misses)",
        baseline.stats.l1i_mpki(),
        addict.stats.l1i_mpki(),
        100.0 * (1.0 - addict.stats.l1i_mpki() / baseline.stats.l1i_mpki())
    );
    println!(
        "exec cycles      {:>10.2e} {:>12.2e}   ({:.0}% faster)",
        baseline.total_cycles,
        addict.total_cycles,
        100.0 * (1.0 - addict.total_cycles / baseline.total_cycles)
    );
    println!(
        "migrations/1k-i  {:>10.3} {:>12.3}",
        baseline.stats.switches_per_ki(),
        addict.stats.switches_per_ki()
    );
    let _ = OpKind::Probe;
}
