//! All four scheduling mechanisms side by side on TPC-E — the paper's
//! Figure 5/6/9 metrics in one table, plus the power report of Figure 8(b).
//!
//! Run with: `cargo run --release --example scheduler_comparison [n_xcts]`

use addict::core::find_migration_points;
use addict::core::replay::ReplayConfig;
use addict::core::sched::{run_scheduler, SchedulerKind};
use addict::workloads::{collect_traces, Benchmark};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let (mut engine, mut workload) = Benchmark::TpcE.setup();
    let profile = collect_traces(&mut engine, workload.as_mut(), n, 1);
    let eval = collect_traces(&mut engine, workload.as_mut(), n, 2);
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);

    println!(
        "{:<9} {:>11} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "scheduler", "cycles", "latency", "L1I-mpki", "L1D-mpki", "switch/ki", "ovh%", "W/core"
    );
    let mut baseline: Option<(f64, f64)> = None;
    for kind in SchedulerKind::ALL {
        let r = run_scheduler(kind, &eval.xcts, Some(&map), &cfg);
        let (bc, bl) = *baseline.get_or_insert((r.total_cycles, r.avg_latency_cycles));
        println!(
            "{:<9} {:>9.2}x {:>8.2}x {:>9.2} {:>9.2} {:>10.3} {:>7.2}% {:>8.2}",
            r.scheduler,
            r.total_cycles / bc,
            r.avg_latency_cycles / bl,
            r.stats.l1i_mpki(),
            r.stats.l1d_mpki(),
            r.stats.switches_per_ki(),
            100.0 * r.overhead_fraction(),
            r.power.per_core_power_w,
        );
    }
    println!("\n(cycles/latency normalized to Baseline; the paper's Figures 5, 6, 8b, 9)");
}
