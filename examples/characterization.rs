//! Memory characterization of a workload, as in Section 2 of the paper:
//! instruction vs data footprint overlap (Figure 2) and within-instance
//! reuse (Figure 3) for TPC-B.
//!
//! Run with: `cargo run --release --example characterization`

use addict::analysis::reuse::ReuseProfile;
use addict::analysis::{overlap_histogram, reuse_profile, OverlapScope};
use addict::trace::OpKind;
use addict::workloads::{collect_traces, tpcb, Benchmark};

fn main() {
    let (mut engine, mut workload) = Benchmark::TpcB.setup();
    let trace = collect_traces(&mut engine, workload.as_mut(), 500, 7);
    println!("traced {} AccountUpdate transactions\n", trace.xcts.len());

    // --- Figure 2 style overlap ---------------------------------------
    let (instr, data) = overlap_histogram(&trace, OverlapScope::Mix).expect("instances");
    println!("whole-mix footprint overlap across instances:");
    println!(
        "  instructions: {:>6} blocks, {:>5.1}% common to >=90% of instances",
        instr.footprint_blocks,
        instr.common_share(0.9) * 100.0
    );
    println!(
        "  data:         {:>6} blocks, {:>5.1}% common to >=90% of instances",
        data.footprint_blocks,
        data.common_share(0.9) * 100.0
    );
    println!("  (the paper's asymmetry: instructions overlap heavily, data barely)\n");

    for op in [OpKind::Probe, OpKind::Update, OpKind::Insert] {
        if let Some((i, _)) = overlap_histogram(&trace, OverlapScope::Op(op)) {
            println!(
                "  {:<7} op: {:>5.1}% of its {} blocks common to >=90% of {} instances",
                op.name(),
                i.common_share(0.9) * 100.0,
                i.footprint_blocks,
                i.instances
            );
        }
    }

    // --- Figure 3 style reuse ------------------------------------------
    let p = reuse_profile(&trace, tpcb::ACCOUNT_UPDATE, None).expect("instances");
    let (common, rest) = ReuseProfile::common_vs_rest(&p.instr);
    println!(
        "\nwithin-instance instruction reuse: blocks present in ALL instances are\n\
         touched {common:.1}x per transaction vs {rest:.1}x for the rest"
    );
    println!("(common code is also the hottest code - why pinning actions to cores pays)");
}
