//! The paper's Section 6 outlook and Section 3.2.5 corner case, both
//! runnable:
//!
//! 1. **Heterogeneous-core hinting** — profile TPC-B, build the ADDICT
//!    plan, and print the per-action instruction profiles a core
//!    specializer would consume ("which database functionality should
//!    this core be specialized for, and how big is its code?").
//! 2. **Crash recovery** — kill transactions mid-flight and run the
//!    storage manager's ARIES-style analysis/redo/undo pass, the scenario
//!    for which ADDICT "falls back to traditional scheduling or finds new
//!    migration points".
//!
//! Run with: `cargo run --release --example specialization_and_recovery`

use addict::core::find_migration_points;
use addict::core::plan::{AssignmentPlan, PlanConfig};
use addict::core::replay::ReplayConfig;
use addict::core::specialize::specialization_report;
use addict::storage::recovery::recover;
use addict::storage::wal::{LogManager, LogPayload};
use addict::storage::Rid;
use addict::workloads::{collect_traces, Benchmark};

fn main() {
    // --- 1. Specialization hints ----------------------------------------
    let (mut engine, mut workload) = Benchmark::TpcB.setup();
    let profile = collect_traces(&mut engine, workload.as_mut(), 300, 1);
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
    let plan = AssignmentPlan::build(&map, PlanConfig::new(cfg.sim.n_cores));

    println!("per-action instruction profiles (TPC-B AccountUpdate):");
    println!(
        "  {:<20} {:>10} {:>12}  top routines",
        "action", "blocks", "instr share"
    );
    let report = specialization_report(&profile.xcts, &plan);
    let total: u64 = report.iter().map(|s| s.instructions).sum();
    for s in &report {
        let top: Vec<String> = s
            .routines
            .iter()
            .take(3)
            .map(|(r, n)| format!("{r}({n})"))
            .collect();
        println!(
            "  {:<20} {:>10} {:>11.1}%  {}",
            s.role,
            s.footprint_blocks,
            100.0 * s.instructions as f64 / total as f64,
            top.join(", ")
        );
    }
    let l1_blocks = (cfg.sim.l1i.size_bytes / 64) as usize;
    let fitting = report.iter().filter(|s| s.fits_l1i(l1_blocks)).count();
    println!(
        "  -> {fitting}/{} actions fit a {} KB L1-I: the granularity ADDICT chose",
        report.len(),
        cfg.sim.l1i.size_bytes / 1024
    );

    // --- 2. Crash recovery ----------------------------------------------
    println!("\ncrash recovery drill:");
    let mut log = LogManager::default();
    // Three transactions: one committed, one aborted, one in flight when
    // the "crash" happens.
    for (x, fate) in [(1u64, "commit"), (2, "abort"), (3, "crash")] {
        log.append(x, LogPayload::XctBegin);
        log.append(
            x,
            LogPayload::Insert {
                table: 0,
                rid: Rid::new(x, 0),
            },
        );
        log.append(
            x,
            LogPayload::Update {
                table: 0,
                rid: Rid::new(x, 0),
            },
        );
        match fate {
            "commit" => {
                log.append(x, LogPayload::XctCommit);
            }
            "abort" => {
                log.append(x, LogPayload::XctAbort);
            }
            _ => {} // crash: no end record
        }
    }
    let report = recover(&mut log);
    println!(
        "  scanned {} records: committed {:?}, aborted {:?}, losers {:?}",
        report.scanned, report.committed, report.aborted, report.losers
    );
    println!(
        "  redo would reapply {} changes; undo wrote {} compensation records",
        report.redo_records, report.compensation_records
    );
    assert_eq!(report.losers, vec![3]);
    println!("  log durable through LSN {}", log.durable_lsn());
}
