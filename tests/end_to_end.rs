//! End-to-end integration tests: the full pipeline — populate → trace →
//! Algorithm 1 → plan → replay all four schedulers — at small scale, with
//! the paper's qualitative claims asserted as invariants.

use addict::core::algorithm1::MigrationMap;
use addict::core::find_migration_points;
use addict::core::replay::ReplayConfig;
use addict::core::sched::{run_scheduler, SchedulerKind};
use addict::sim::SimConfig;
use addict::trace::WorkloadTrace;
use addict::workloads::{collect_traces, Benchmark};

fn pipeline(
    bench: Benchmark,
    n: usize,
) -> (WorkloadTrace, WorkloadTrace, MigrationMap, ReplayConfig) {
    let (mut engine, mut workload) = bench.setup_small();
    let profile = collect_traces(&mut engine, workload.as_mut(), n, 1);
    let eval = collect_traces(&mut engine, workload.as_mut(), n, 2);
    let cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(8),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(8);
    let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
    (profile, eval, map, cfg)
}

#[test]
fn tpcb_pipeline_reproduces_paper_shapes() {
    let (_, eval, map, cfg) = pipeline(Benchmark::TpcB, 64);
    let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
    let strex = run_scheduler(SchedulerKind::Strex, &eval.xcts, Some(&map), &cfg);
    let slicc = run_scheduler(SchedulerKind::Slicc, &eval.xcts, Some(&map), &cfg);
    let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);

    // Everyone executes the same instructions.
    for r in [&strex, &slicc, &addict] {
        assert_eq!(r.instructions, base.instructions, "{}", r.scheduler);
        assert_eq!(r.n_xcts, base.n_xcts);
    }
    // Figure 5 shape: every mechanism cuts L1-I misses; ADDICT cuts most.
    assert!(addict.stats.l1i_mpki() < slicc.stats.l1i_mpki());
    assert!(slicc.stats.l1i_mpki() < base.stats.l1i_mpki());
    assert!(strex.stats.l1i_mpki() < base.stats.l1i_mpki());
    assert!(
        addict.stats.l1i_mpki() < 0.35 * base.stats.l1i_mpki(),
        "ADDICT {} vs base {}",
        addict.stats.l1i_mpki(),
        base.stats.l1i_mpki()
    );
    // Migration-based mechanisms hurt L1-D (Section 4.3).
    assert!(addict.stats.l1d_mpki() > base.stats.l1d_mpki());
    assert!(slicc.stats.l1d_mpki() > base.stats.l1d_mpki());
    // Figure 6 shape: ADDICT beats Baseline in total cycles.
    assert!(addict.total_cycles < base.total_cycles);
    // Figure 9 shape: ADDICT switches least among the mechanisms.
    assert!(addict.stats.switches_per_ki() < slicc.stats.switches_per_ki());
    assert!(addict.stats.switches_per_ki() < strex.stats.switches_per_ki());
    // Overhead stays a small fraction of cycles for everyone.
    for r in [&strex, &slicc, &addict] {
        assert!(r.overhead_fraction() < 0.10, "{} overhead", r.scheduler);
    }
}

#[test]
fn tpcc_pipeline_covers_all_five_operations() {
    let (profile, _, map, _) = pipeline(Benchmark::TpcC, 80);
    // The mix exercises all five operations across its types.
    use addict::trace::OpKind;
    let mut seen = std::collections::HashSet::new();
    for ty in map.xct_types() {
        for op in map.ops_of(ty) {
            seen.insert(op);
        }
    }
    for op in OpKind::ALL {
        assert!(seen.contains(&op), "{op:?} never profiled");
    }
    // Every trace is well-formed: begins/ends and balanced op markers.
    for xct in &profile.xcts {
        let ops = xct.op_slices(); // panics (debug) on unbalanced markers
        assert!(!ops.is_empty() || xct.instructions() > 0);
    }
}

#[test]
fn tpce_readonly_share_and_replay() {
    let (profile, eval, map, cfg) = pipeline(Benchmark::TpcE, 100);
    // ~77% of the mix is read-only (probe/scan only).
    use addict::trace::OpKind;
    let readonly = profile
        .xcts
        .iter()
        .filter(|x| {
            x.op_slices()
                .iter()
                .all(|(k, _)| matches!(k, OpKind::Probe | OpKind::Scan))
        })
        .count();
    let share = readonly as f64 / profile.xcts.len() as f64;
    assert!((0.55..=0.95).contains(&share), "read-only share {share}");

    let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
    let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
    assert!(addict.stats.l1i_mpki() < base.stats.l1i_mpki());
}

#[test]
fn deep_hierarchy_shrinks_addicts_advantage() {
    // Section 4.6: with a 256 KB private L2 most L1-I misses are served
    // on-chip cheaply, so ADDICT's gain over Baseline narrows.
    let (_, eval, map, _) = {
        let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 64, 1);
        let eval = collect_traces(&mut engine, workload.as_mut(), 64, 2);
        let cfg = ReplayConfig::paper_default();
        let map = find_migration_points(&profile.xcts, cfg.sim.l1i);
        ((), eval, map, ())
    };
    let gain = |sim: SimConfig| {
        let cfg = ReplayConfig {
            sim,
            ..ReplayConfig::paper_default()
        };
        let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
        let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
        base.total_cycles / addict.total_cycles
    };
    let shallow = gain(SimConfig::paper_default());
    let deep = gain(SimConfig::paper_deep());
    assert!(
        shallow > 1.0,
        "ADDICT must win on the shallow hierarchy ({shallow})"
    );
    assert!(
        deep < shallow,
        "deep hierarchy should narrow the gain: shallow {shallow:.2} vs deep {deep:.2}"
    );
}

#[test]
fn batch_size_sweep_is_monotonic_enough() {
    // Section 4.5: larger batches improve ADDICT's execution time; L1-I
    // reduction is roughly flat.
    let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
    let profile = collect_traces(&mut engine, workload.as_mut(), 48, 1);
    let eval = collect_traces(&mut engine, workload.as_mut(), 96, 2);
    let base_cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&profile.xcts, base_cfg.sim.l1i);
    let cycles: Vec<f64> = [2usize, 16]
        .iter()
        .map(|&b| {
            let cfg = ReplayConfig::paper_default().with_batch_size(b);
            run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg).total_cycles
        })
        .collect();
    assert!(
        cycles[1] < cycles[0] * 1.05,
        "batch 16 should not be slower than batch 2: {cycles:?}"
    );
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let (_, eval, map, cfg) = pipeline(Benchmark::TpcB, 32);
        let r = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
        (
            r.total_cycles,
            r.stats.l1i_misses(),
            r.stats.migrations_in(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "identical seeds must reproduce identical results"
    );
}

#[test]
fn power_report_is_consistent() {
    let (_, eval, map, cfg) = pipeline(Benchmark::TpcB, 32);
    let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
    let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
    for r in [&base, &addict] {
        assert!(r.power.per_core_power_w > 0.0);
        assert!(r.power.dynamic_energy_j > 0.0);
        assert!(r.power.static_energy_j > 0.0);
        // Static dominates for stalled OLTP (the Figure 8b calibration).
        assert!(r.power.static_energy_j > r.power.dynamic_energy_j);
    }
    // Faster completion at similar work -> ADDICT draws more per-core
    // power (Figure 8b's ~1.1x), bounded well below 2x.
    let ratio = addict.power.per_core_power_w / base.power.per_core_power_w;
    assert!((0.9..2.0).contains(&ratio), "power ratio {ratio}");
}
