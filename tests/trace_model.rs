//! Cross-crate integration tests of the trace model: engine-produced
//! traces respect the code map, the address-space layout, and the
//! Section 2 characterization invariants.

use addict::analysis::{overlap_histogram, OverlapScope};
use addict::trace::{layout, CodeMap, TraceEvent};
use addict::workloads::{collect_traces, Benchmark};

#[test]
fn traces_stay_inside_the_declared_address_spaces() {
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let trace = collect_traces(&mut engine, workload.as_mut(), 40, 3);
    let map = CodeMap::global();
    for xct in &trace.xcts {
        for ev in &xct.events {
            match ev {
                TraceEvent::Instr {
                    block, n_blocks, ..
                } => {
                    // Every instruction block belongs to a registered
                    // routine, and runs never cross region boundaries.
                    let first = map.routine_of(*block).expect("instr outside code map");
                    let last = map
                        .routine_of(addict::sim::BlockAddr(block.0 + u64::from(*n_blocks) - 1))
                        .expect("run end outside code map");
                    assert_eq!(first, last, "run crosses routine boundary");
                }
                TraceEvent::Data { block, .. } => {
                    assert!(
                        layout::is_page(*block) || layout::is_service(*block),
                        "data block {block} outside data regions"
                    );
                    assert!(!layout::is_code(*block), "data access hit code space");
                }
                _ => {}
            }
        }
    }
}

#[test]
fn instruction_overlap_dwarfs_data_overlap() {
    // The paper's core observation (Section 2.2): same-type transactions
    // share most instructions and almost no data.
    let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
    let trace = collect_traces(&mut engine, workload.as_mut(), 60, 4);
    let (instr, data) = overlap_histogram(&trace, OverlapScope::Mix).expect("instances");
    let instr_common = instr.common_share(0.9);
    let data_common = data.common_share(0.9);
    assert!(
        instr_common > 0.5,
        "instruction overlap too low: {:.1}%",
        instr_common * 100.0
    );
    assert!(
        data_common < 0.10,
        "data overlap too high: {:.1}% (paper: at most 6%)",
        data_common * 100.0
    );
    assert!(instr_common > 5.0 * data_common);
}

#[test]
fn transaction_footprint_exceeds_l1i() {
    // The premise of the whole paper: one transaction's instruction
    // footprint does not fit a 32 KB (512-block) L1-I.
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let trace = collect_traces(&mut engine, workload.as_mut(), 20, 5);
    let big = trace
        .xcts
        .iter()
        .filter(|x| {
            let fp = addict::trace::Footprint::of_events(&x.events);
            fp.instr.len() > 512
        })
        .count();
    assert!(
        big * 2 >= trace.xcts.len(),
        "most transactions should overflow the L1-I ({big}/{})",
        trace.xcts.len()
    );
}

#[test]
fn total_code_footprint_matches_shore_mt() {
    let kb = CodeMap::global().total_blocks() * 64 / 1024;
    assert!((128..=256).contains(&kb), "code footprint {kb} KB");
}

#[test]
fn engine_state_survives_the_full_mix() {
    // Run every TPC-C transaction type repeatedly and verify the engine's
    // structural invariants via its own accessors.
    let (mut engine, mut workload) = Benchmark::TpcC.setup_small();
    let trace = collect_traces(&mut engine, workload.as_mut(), 120, 6);
    assert_eq!(trace.xcts.len(), 120);
    // No locks leak across committed transactions.
    assert_eq!(engine.locks().n_locked(), 0, "locks leaked");
    // The log advanced and was flushed by commits.
    assert!(engine.log().durable_lsn() > 0);
    assert!(engine.log().appended_total() > 120);
}
