//! # addict
//!
//! Facade crate for the Rust reproduction of *ADDICT: Advanced Instruction
//! Chasing for Transactions* (Tözün, Atta, Ailamaki, Moshovos — VLDB 2014).
//!
//! ADDICT is a transaction-scheduling mechanism that treats a transaction
//! not as one monolithic task but as a chain of *actions* of the database
//! operations it executes, each action sized to fit an L1 instruction
//! cache. It profiles a workload to find per-operation *migration points*
//! (Algorithm 1) and then migrates transactions across cores at those
//! points (Algorithm 2), so that each core's L1-I stays resident with one
//! cache-sized chunk of code reused by every transaction in a batch.
//!
//! This workspace re-implements the paper's full experimental stack:
//!
//! * [`storage`] — a Shore-MT-like storage manager (B+-trees, buffer pool,
//!   lock manager, WAL) whose execution is instrumented block-by-block,
//! * [`trace`] — the Pin-substitute trace model and recorder,
//! * [`workloads`] — TPC-B/C/E transaction generators plus a declarative
//!   workload-spec subsystem (TATP and YCSB-style mixes ship built in),
//! * [`sim`] — a multicore cache/timing/power simulator (Zesto/McPAT
//!   substitute),
//! * [`core`] — ADDICT itself plus the Baseline/STREX/SLICC comparators,
//! * [`analysis`] — the Section 2 memory-characterization analyses.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

pub use addict_analysis as analysis;
pub use addict_core as core;
pub use addict_sim as sim;
pub use addict_storage as storage;
pub use addict_trace as trace;
pub use addict_workloads as workloads;
