//! Where does shared data come from? (Section 2.2.2.)
//!
//! "Investigating the sources of the few, very frequently used data shows
//! that metadata information, lock manager, buffer pool structures, and
//! index root pages are commonly accessed (mostly read) across different
//! transactions."
//!
//! This analysis classifies every data block of a trace by the
//! address-space region it lives in and reports, per region: footprint,
//! access counts, read share, and how common the region's blocks are
//! across transactions — making the paper's claim checkable.

use std::collections::HashMap;

use addict_sim::BlockAddr;
use addict_trace::{layout, TraceEvent, WorkloadTrace};
use serde::Serialize;

/// The data regions of the synthetic address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum DataRegion {
    /// Catalog / schema metadata.
    Metadata,
    /// Lock-manager hash buckets.
    LockTable,
    /// Buffer-pool control blocks.
    BufferPool,
    /// Log-buffer window.
    Log,
    /// Per-transaction private state (descriptors, cursors).
    XctState,
    /// Database pages (records, index nodes).
    Pages,
}

impl DataRegion {
    /// Classify a data block.
    pub fn of(block: BlockAddr) -> Option<DataRegion> {
        let b = block.0;
        if (layout::METADATA_BASE..layout::LOCK_TABLE_BASE).contains(&b) {
            Some(DataRegion::Metadata)
        } else if (layout::LOCK_TABLE_BASE..layout::BUFFERPOOL_BASE).contains(&b) {
            Some(DataRegion::LockTable)
        } else if (layout::BUFFERPOOL_BASE..layout::LOG_BASE).contains(&b) {
            Some(DataRegion::BufferPool)
        } else if (layout::LOG_BASE..layout::XCT_STATE_BASE).contains(&b) {
            Some(DataRegion::Log)
        } else if (layout::XCT_STATE_BASE..layout::PAGE_BASE).contains(&b) {
            Some(DataRegion::XctState)
        } else if b >= layout::PAGE_BASE {
            Some(DataRegion::Pages)
        } else {
            None
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DataRegion::Metadata => "metadata",
            DataRegion::LockTable => "lock table",
            DataRegion::BufferPool => "buffer pool",
            DataRegion::Log => "log buffer",
            DataRegion::XctState => "xct state",
            DataRegion::Pages => "pages",
        }
    }

    /// All regions, in report order.
    pub const ALL: [DataRegion; 6] = [
        DataRegion::Metadata,
        DataRegion::LockTable,
        DataRegion::BufferPool,
        DataRegion::Log,
        DataRegion::XctState,
        DataRegion::Pages,
    ];
}

/// Per-region statistics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RegionStats {
    /// Distinct blocks.
    pub footprint_blocks: usize,
    /// Total accesses.
    pub accesses: u64,
    /// Read accesses (the paper: shared data is "mostly read").
    pub reads: u64,
    /// Blocks present in at least half of the transactions.
    pub blocks_in_half_of_xcts: usize,
}

impl RegionStats {
    /// Read share of the region's accesses.
    pub fn read_share(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.reads as f64 / self.accesses as f64
        }
    }

    /// Share of the region's footprint that is common to ≥50% of
    /// transactions.
    pub fn common_share(&self) -> f64 {
        if self.footprint_blocks == 0 {
            0.0
        } else {
            self.blocks_in_half_of_xcts as f64 / self.footprint_blocks as f64
        }
    }
}

/// Classify every data access of a workload trace by region.
pub fn data_sources(trace: &WorkloadTrace) -> HashMap<DataRegion, RegionStats> {
    let mut per_block: HashMap<BlockAddr, (u64, u64, usize)> = HashMap::new(); // (accesses, reads, xcts)
    for xct in &trace.xcts {
        let mut seen = std::collections::HashSet::new();
        for ev in &xct.events {
            if let TraceEvent::Data { block, write } = ev {
                let e = per_block.entry(*block).or_insert((0, 0, 0));
                e.0 += 1;
                if !*write {
                    e.1 += 1;
                }
                if seen.insert(*block) {
                    e.2 += 1;
                }
            }
        }
    }
    let half = trace.xcts.len().div_ceil(2);
    let mut out: HashMap<DataRegion, RegionStats> = HashMap::new();
    for (block, (accesses, reads, xcts)) in per_block {
        let Some(region) = DataRegion::of(block) else {
            continue;
        };
        let s = out.entry(region).or_default();
        s.footprint_blocks += 1;
        s.accesses += accesses;
        s.reads += reads;
        if xcts >= half {
            s.blocks_in_half_of_xcts += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::{OpKind, XctTrace, XctTypeId};

    fn workload() -> WorkloadTrace {
        let mut xcts = Vec::new();
        for i in 0..10u64 {
            xcts.push(XctTrace {
                xct_type: XctTypeId(0),
                events: vec![
                    TraceEvent::XctBegin {
                        xct_type: XctTypeId(0),
                    },
                    TraceEvent::OpBegin { op: OpKind::Probe },
                    // Shared metadata read by everyone.
                    TraceEvent::Data {
                        block: layout::metadata_block(1),
                        write: false,
                    },
                    // Private page block per transaction.
                    TraceEvent::Data {
                        block: layout::page_block(100 + i, 0),
                        write: true,
                    },
                    // Lock bucket, written.
                    TraceEvent::Data {
                        block: layout::lock_bucket_block(5),
                        write: true,
                    },
                    TraceEvent::OpEnd { op: OpKind::Probe },
                    TraceEvent::XctEnd,
                ],
            });
        }
        WorkloadTrace {
            name: "t".into(),
            xct_type_names: vec!["A".into()],
            xcts,
        }
    }

    #[test]
    fn regions_classified_and_counted() {
        let s = data_sources(&workload());
        let meta = &s[&DataRegion::Metadata];
        assert_eq!(meta.footprint_blocks, 1);
        assert_eq!(meta.accesses, 10);
        assert!(
            (meta.read_share() - 1.0).abs() < 1e-9,
            "metadata is read-only"
        );
        assert!(
            (meta.common_share() - 1.0).abs() < 1e-9,
            "metadata shared by all"
        );

        let pages = &s[&DataRegion::Pages];
        assert_eq!(pages.footprint_blocks, 10);
        assert_eq!(pages.common_share(), 0.0, "record pages are private");
        assert_eq!(pages.read_share(), 0.0);

        let locks = &s[&DataRegion::LockTable];
        assert_eq!(locks.footprint_blocks, 1);
        assert!((locks.common_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn region_of_respects_layout() {
        assert_eq!(
            DataRegion::of(layout::metadata_block(0)),
            Some(DataRegion::Metadata)
        );
        assert_eq!(
            DataRegion::of(layout::lock_bucket_block(0)),
            Some(DataRegion::LockTable)
        );
        assert_eq!(
            DataRegion::of(layout::bufferpool_block(0)),
            Some(DataRegion::BufferPool)
        );
        assert_eq!(DataRegion::of(layout::log_block(0)), Some(DataRegion::Log));
        assert_eq!(
            DataRegion::of(layout::xct_state_block(1, 0)),
            Some(DataRegion::XctState)
        );
        assert_eq!(
            DataRegion::of(layout::page_block(0, 0)),
            Some(DataRegion::Pages)
        );
        assert_eq!(DataRegion::of(BlockAddr(0)), None, "code space is not data");
    }
}
