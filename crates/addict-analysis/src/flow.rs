//! Measured Figure 1 flow-graph percentages.
//!
//! Figure 1 annotates each call edge A→B of the four database operations
//! with "X% of A's instruction footprint comes from executing B". We
//! measure the same quantity from traces: the operation's instruction
//! footprint is attributed to routines via the code map, and an edge's
//! percentage is `|footprint ∩ closure(B)| / |footprint ∩ closure(A)|`
//! over the static call graph.

use std::collections::BTreeSet;

use addict_sim::BlockAddr;
use addict_trace::codemap::{CodeMap, Routine};
use addict_trace::{Footprint, OpKind, WorkloadTrace};
use serde::{Deserialize, Serialize};

/// One measured edge of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowEdge {
    /// Caller (or the operation itself for top-level boxes).
    pub from: String,
    /// Callee.
    pub to: String,
    /// Measured percentage (0–100).
    pub measured_pct: f64,
    /// The paper's Figure 1 annotation, for side-by-side comparison.
    pub paper_pct: f64,
    /// Dashed in Figure 1 (conditional path)?
    pub conditional: bool,
}

/// Blocks of `footprint` owned by the call closure of `r`.
fn closure_blocks(footprint: &BTreeSet<BlockAddr>, r: Routine) -> usize {
    let map = CodeMap::global();
    let closure = map.closure(r);
    footprint
        .iter()
        .filter(|b| {
            map.routine_of(**b)
                .is_some_and(|owner| closure.contains(&owner))
        })
        .count()
}

/// Union instruction footprint of all instances of `op` in the trace
/// (Figure 1 measures over 1000 transactions of the TPC-C mix).
fn op_footprint(trace: &WorkloadTrace, op: OpKind) -> BTreeSet<BlockAddr> {
    let mut union = BTreeSet::new();
    for xct in &trace.xcts {
        for (kind, range) in xct.op_slices() {
            if kind == op {
                let fp = Footprint::of_events(&xct.events[range]);
                union.extend(fp.instr);
            }
        }
    }
    union
}

/// The Figure 1 edges of one operation, measured over the trace. Returns
/// an empty vector when the operation never ran.
pub fn op_flow(trace: &WorkloadTrace, op: OpKind) -> Vec<FlowEdge> {
    use Routine::*;
    let fp = op_footprint(trace, op);
    if fp.is_empty() {
        return Vec::new();
    }
    let total = fp.len() as f64;
    let pct_of = |child: Routine, parent: Option<Routine>| -> f64 {
        let denom = match parent {
            Some(p) => closure_blocks(&fp, p) as f64,
            None => total,
        };
        if denom == 0.0 {
            0.0
        } else {
            100.0 * closure_blocks(&fp, child) as f64 / denom
        }
    };
    let edge = |from: &str, to: &str, child, parent, paper, conditional| FlowEdge {
        from: from.to_owned(),
        to: to.to_owned(),
        measured_pct: pct_of(child, parent),
        paper_pct: paper,
        conditional,
    };

    match op {
        OpKind::Probe => vec![
            edge(
                "find key",
                "lookup",
                BtreeLookup,
                Some(FindKey),
                73.0,
                false,
            ),
            edge(
                "lookup",
                "traverse",
                BtreeTraverse,
                Some(BtreeLookup),
                71.0,
                false,
            ),
            edge(
                "traverse",
                "lock",
                LockAcquire,
                Some(BtreeTraverse),
                33.5,
                false,
            ),
        ],
        OpKind::Scan => vec![
            edge(
                "index scan",
                "initialize cursor",
                InitCursor,
                None,
                75.0,
                false,
            ),
            edge("index scan", "fetch next", FetchNext, None, 25.0, false),
        ],
        OpKind::Update => vec![
            edge(
                "update tuple",
                "pin record page",
                PinRecordPage,
                None,
                40.0,
                false,
            ),
            edge("update tuple", "update page", UpdatePage, None, 46.0, false),
        ],
        OpKind::Insert => vec![
            edge(
                "insert tuple",
                "create record",
                CreateRecord,
                None,
                44.0,
                false,
            ),
            edge(
                "insert tuple",
                "create index entry",
                CreateIndexEntry,
                None,
                56.0,
                false,
            ),
            edge(
                "create record",
                "allocate page",
                AllocatePage,
                Some(CreateRecord),
                47.0,
                true,
            ),
            edge(
                "create index entry",
                "structural modification",
                StructuralModification,
                Some(CreateIndexEntry),
                65.0,
                true,
            ),
        ],
        OpKind::Delete => vec![
            edge(
                "delete tuple",
                "delete record",
                DeleteRecord,
                None,
                44.0,
                false,
            ),
            edge(
                "delete tuple",
                "delete index entry",
                DeleteIndexEntry,
                None,
                56.0,
                false,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::{TraceEvent, XctTrace, XctTypeId};

    /// Build a trace whose probe op walks the full FindKey closure.
    fn synthetic_probe_trace() -> WorkloadTrace {
        let map = CodeMap::global();
        let mut events = vec![TraceEvent::XctBegin {
            xct_type: XctTypeId(0),
        }];
        events.push(TraceEvent::OpBegin { op: OpKind::Probe });
        for r in [
            Routine::FindKey,
            Routine::BtreeLookup,
            Routine::BtreeTraverse,
            Routine::BpFix,
            Routine::LatchAcquire,
            Routine::LatchRelease,
            Routine::LockAcquire,
            Routine::RecordFetch,
            Routine::TupleLayout,
        ] {
            events.push(TraceEvent::Instr {
                block: map.base(r),
                n_blocks: map.n_blocks(r) as u16,
                ipb: 10,
            });
        }
        events.push(TraceEvent::OpEnd { op: OpKind::Probe });
        events.push(TraceEvent::XctEnd);
        WorkloadTrace {
            name: "synthetic".into(),
            xct_type_names: vec!["T".into()],
            xcts: vec![XctTrace {
                xct_type: XctTypeId(0),
                events,
            }],
        }
    }

    #[test]
    fn probe_edges_match_the_static_ratios() {
        // With the whole closure touched, measured percentages reduce to
        // the code map's static inclusive ratios — near the paper's.
        let w = synthetic_probe_trace();
        let edges = op_flow(&w, OpKind::Probe);
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(
                (e.measured_pct - e.paper_pct).abs() < 12.0,
                "{} -> {}: measured {:.1} vs paper {:.1}",
                e.from,
                e.to,
                e.measured_pct,
                e.paper_pct
            );
        }
    }

    #[test]
    fn missing_op_yields_no_edges() {
        let w = synthetic_probe_trace();
        assert!(op_flow(&w, OpKind::Insert).is_empty());
    }

    #[test]
    fn partial_footprint_shrinks_child_share() {
        // Touch FindKey fully but only a sliver of the lookup closure.
        let map = CodeMap::global();
        let mut events = vec![TraceEvent::XctBegin {
            xct_type: XctTypeId(0),
        }];
        events.push(TraceEvent::OpBegin { op: OpKind::Probe });
        events.push(TraceEvent::Instr {
            block: map.base(Routine::FindKey),
            n_blocks: map.n_blocks(Routine::FindKey) as u16,
            ipb: 10,
        });
        events.push(TraceEvent::Instr {
            block: map.base(Routine::BtreeLookup),
            n_blocks: 4,
            ipb: 10,
        });
        events.push(TraceEvent::OpEnd { op: OpKind::Probe });
        events.push(TraceEvent::XctEnd);
        let w = WorkloadTrace {
            name: "s".into(),
            xct_type_names: vec!["T".into()],
            xcts: vec![XctTrace {
                xct_type: XctTypeId(0),
                events,
            }],
        };
        let edges = op_flow(&w, OpKind::Probe);
        let lookup = &edges[0];
        // 4 of (64 + 4) blocks ~ 5.9%.
        assert!(lookup.measured_pct < 10.0, "{}", lookup.measured_pct);
    }
}
