//! # addict-analysis
//!
//! The Section 2 memory-characterization analyses of the ADDICT paper,
//! computed over traces from `addict-workloads`:
//!
//! * [`overlap`] — instruction/data footprint overlap across instances of
//!   a workload mix, a transaction type, or a database operation
//!   (Figure 2's pie charts);
//! * [`reuse`] — average per-block access counts within one instance,
//!   ordered by cross-instance commonality (Figure 3);
//! * [`flow`] — measured inclusive-footprint percentages along the
//!   Figure 1 call-flow edges of the four database operations;
//! * [`sources`] — the Section 2.2.2 breakdown of *which* structures the
//!   commonly accessed data blocks belong to (metadata, lock table,
//!   buffer pool, log, pages).

pub mod flow;
pub mod overlap;
pub mod reuse;
pub mod sources;

pub use flow::{op_flow, FlowEdge};
pub use overlap::{overlap_histogram, OverlapHistogram, OverlapScope};
pub use reuse::{reuse_profile, ReusePoint};
pub use sources::{data_sources, DataRegion, RegionStats};
