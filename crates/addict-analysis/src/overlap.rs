//! Footprint-overlap analysis (Figure 2).
//!
//! For a set of execution *instances* (whole transactions of a mix, the
//! transactions of one type, or the invocations of one database
//! operation), each cache block in the combined footprint appears in some
//! fraction of the instances. Figure 2 buckets the combined footprint by
//! that appearance frequency: `[0,30)`, `[30,60)`, `[60,90)`, `[90,100)`,
//! and exactly `100%`.

use std::collections::HashMap;

use addict_sim::BlockAddr;
use addict_trace::{Footprint, OpKind, WorkloadTrace, XctTypeId};
use serde::{Deserialize, Serialize};

/// Which instances to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapScope {
    /// Every transaction of the mix (Figure 2's "mix" pies).
    Mix,
    /// Transactions of one type (e.g. NewOrder).
    XctType(XctTypeId),
    /// Invocations of one operation across the whole mix.
    Op(OpKind),
    /// Invocations of one operation within one transaction type.
    OpInType(XctTypeId, OpKind),
}

/// Share of the combined footprint per appearance-frequency bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapHistogram {
    /// Shares for `[0,30)`, `[30,60)`, `[60,90)`, `[90,100)`, `100`; they
    /// sum to 1 (for a non-empty footprint).
    pub buckets: [f64; 5],
    /// Number of instances compared.
    pub instances: usize,
    /// Combined footprint size in blocks.
    pub footprint_blocks: usize,
}

impl OverlapHistogram {
    /// Share of the footprint present in at least `threshold` (0..=1) of
    /// the instances. `common_share(0.9)` is the paper's "90%+ overlap".
    pub fn common_share(&self, threshold: f64) -> f64 {
        let mut share = 0.0;
        let bounds = [0.0, 0.3, 0.6, 0.9, 1.0];
        for (i, &lo) in bounds.iter().enumerate() {
            if lo >= threshold - 1e-12 {
                share += self.buckets[i];
            }
        }
        share
    }

    fn from_counts(counts: &HashMap<BlockAddr, usize>, n: usize) -> Self {
        let mut buckets = [0usize; 5];
        for &c in counts.values() {
            let f = c as f64 / n as f64;
            let idx = if c == n {
                4
            } else if f >= 0.9 {
                3
            } else if f >= 0.6 {
                2
            } else if f >= 0.3 {
                1
            } else {
                0
            };
            buckets[idx] += 1;
        }
        let total = counts.len().max(1) as f64;
        OverlapHistogram {
            buckets: buckets.map(|b| b as f64 / total),
            instances: n,
            footprint_blocks: counts.len(),
        }
    }
}

/// Collect the per-instance footprints for a scope.
fn instance_footprints(trace: &WorkloadTrace, scope: OverlapScope) -> Vec<Footprint> {
    let mut out = Vec::new();
    for xct in &trace.xcts {
        match scope {
            OverlapScope::Mix => out.push(Footprint::of_events(&xct.events)),
            OverlapScope::XctType(ty) => {
                if xct.xct_type == ty {
                    out.push(Footprint::of_events(&xct.events));
                }
            }
            OverlapScope::Op(op) => {
                for (kind, range) in xct.op_slices() {
                    if kind == op {
                        out.push(Footprint::of_events(&xct.events[range]));
                    }
                }
            }
            OverlapScope::OpInType(ty, op) => {
                if xct.xct_type == ty {
                    for (kind, range) in xct.op_slices() {
                        if kind == op {
                            out.push(Footprint::of_events(&xct.events[range]));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Compute the instruction and data overlap histograms for a scope.
/// Returns `None` when the scope has no instances.
pub fn overlap_histogram(
    trace: &WorkloadTrace,
    scope: OverlapScope,
) -> Option<(OverlapHistogram, OverlapHistogram)> {
    let footprints = instance_footprints(trace, scope);
    if footprints.is_empty() {
        return None;
    }
    let n = footprints.len();
    let mut instr: HashMap<BlockAddr, usize> = HashMap::new();
    let mut data: HashMap<BlockAddr, usize> = HashMap::new();
    for fp in &footprints {
        for &b in &fp.instr {
            *instr.entry(b).or_insert(0) += 1;
        }
        for &b in &fp.data {
            *data.entry(b).or_insert(0) += 1;
        }
    }
    Some((
        OverlapHistogram::from_counts(&instr, n),
        OverlapHistogram::from_counts(&data, n),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::{TraceEvent, XctTrace};

    fn xct(ty: u16, instr_base: u64, data_base: u64) -> XctTrace {
        XctTrace {
            xct_type: XctTypeId(ty),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(ty),
                },
                TraceEvent::OpBegin { op: OpKind::Probe },
                // 10 shared blocks + 10 instance-specific ones.
                TraceEvent::Instr {
                    block: BlockAddr(0x100),
                    n_blocks: 10,
                    ipb: 10,
                },
                TraceEvent::Instr {
                    block: BlockAddr(instr_base),
                    n_blocks: 10,
                    ipb: 10,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000),
                    write: false,
                },
                TraceEvent::Data {
                    block: BlockAddr(data_base),
                    write: false,
                },
                TraceEvent::OpEnd { op: OpKind::Probe },
                TraceEvent::XctEnd,
            ],
        }
    }

    fn workload() -> WorkloadTrace {
        WorkloadTrace {
            name: "test".into(),
            xct_type_names: vec!["A".into(), "B".into()],
            xcts: (0..10)
                .map(|i| xct(0, 0x1000 + i * 0x100, 0xA000 + i))
                .collect(),
        }
    }

    #[test]
    fn identical_halves_split_buckets() {
        let w = workload();
        let (instr, data) = overlap_histogram(&w, OverlapScope::Mix).unwrap();
        // 10 blocks in all instances, 100 blocks in exactly one instance
        // each: 10/110 in the 100% bucket, 100/110 in [0,30).
        assert!((instr.buckets[4] - 10.0 / 110.0).abs() < 1e-9);
        assert!((instr.buckets[0] - 100.0 / 110.0).abs() < 1e-9);
        assert_eq!(instr.instances, 10);
        assert_eq!(instr.footprint_blocks, 110);
        // Data: 1 shared + 10 private.
        assert!((data.buckets[4] - 1.0 / 11.0).abs() < 1e-9);
        // Buckets always sum to 1.
        assert!((instr.buckets.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn common_share_thresholds() {
        let w = workload();
        let (instr, _) = overlap_histogram(&w, OverlapScope::Mix).unwrap();
        assert!((instr.common_share(0.9) - 10.0 / 110.0).abs() < 1e-9);
        assert!((instr.common_share(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_instance_is_all_common() {
        let w = WorkloadTrace {
            name: "one".into(),
            xct_type_names: vec!["A".into()],
            xcts: vec![xct(0, 0x1000, 0xA000)],
        };
        let (instr, _) = overlap_histogram(&w, OverlapScope::Mix).unwrap();
        assert!((instr.buckets[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scopes_filter_instances() {
        let mut w = workload();
        w.xcts.push(xct(1, 0x5000, 0xB000));
        let (i_all, _) = overlap_histogram(&w, OverlapScope::Mix).unwrap();
        assert_eq!(i_all.instances, 11);
        let (i_a, _) = overlap_histogram(&w, OverlapScope::XctType(XctTypeId(0))).unwrap();
        assert_eq!(i_a.instances, 10);
        let (i_op, _) = overlap_histogram(&w, OverlapScope::Op(OpKind::Probe)).unwrap();
        assert_eq!(i_op.instances, 11);
        let (i_ot, _) =
            overlap_histogram(&w, OverlapScope::OpInType(XctTypeId(1), OpKind::Probe)).unwrap();
        assert_eq!(i_ot.instances, 1);
        assert!(overlap_histogram(&w, OverlapScope::Op(OpKind::Delete)).is_none());
    }
}
