//! Per-instance reuse analysis (Figure 3).
//!
//! Figure 3 plots, for one transaction type (or operation), the average
//! number of accesses each block receives *within one instance*, with
//! blocks ordered left-to-right by how common they are *across* instances;
//! the vertical gray line marks the blocks present in every instance. The
//! paper's observation: blocks common across instances are also the most
//! heavily reused within an instance.

use std::collections::HashMap;

use addict_sim::BlockAddr;
use addict_trace::footprint::AccessCounts;
use addict_trace::{OpKind, WorkloadTrace, XctTypeId};
use serde::{Deserialize, Serialize};

/// One block's position on the Figure 3 plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReusePoint {
    /// The block.
    pub block: u64,
    /// Fraction of instances touching this block (x-axis ordering).
    pub commonality: f64,
    /// Mean accesses per instance that touches it (y-axis).
    pub avg_reuse: f64,
}

/// The Figure 3 profile for one scope: instruction and data points, each
/// sorted by ascending commonality (the paper's x-axis ordering).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// Instruction blocks.
    pub instr: Vec<ReusePoint>,
    /// Data blocks.
    pub data: Vec<ReusePoint>,
    /// Instances analyzed.
    pub instances: usize,
}

impl ReuseProfile {
    /// Mean within-instance reuse of the blocks present in every instance
    /// versus the rest — the paper's headline comparison.
    pub fn common_vs_rest(points: &[ReusePoint]) -> (f64, f64) {
        let (mut c_sum, mut c_n, mut r_sum, mut r_n) = (0.0, 0usize, 0.0, 0usize);
        for p in points {
            if p.commonality >= 1.0 - 1e-9 {
                c_sum += p.avg_reuse;
                c_n += 1;
            } else {
                r_sum += p.avg_reuse;
                r_n += 1;
            }
        }
        (
            if c_n > 0 { c_sum / c_n as f64 } else { 0.0 },
            if r_n > 0 { r_sum / r_n as f64 } else { 0.0 },
        )
    }
}

/// Build the reuse profile for one transaction type, or for one operation
/// within it (`op = None` analyzes whole transactions, as Figure 3's
/// AccountUpdate panel; `op = Some(..)` analyzes operation instances, as
/// its insert-tuple panel).
pub fn reuse_profile(
    trace: &WorkloadTrace,
    ty: XctTypeId,
    op: Option<OpKind>,
) -> Option<ReuseProfile> {
    // Per-instance access counts.
    let mut counts: Vec<AccessCounts> = Vec::new();
    for xct in trace.of_type(ty) {
        match op {
            None => counts.push(AccessCounts::of_events(&xct.events)),
            Some(kind) => {
                for (k, range) in xct.op_slices() {
                    if k == kind {
                        counts.push(AccessCounts::of_events(&xct.events[range]));
                    }
                }
            }
        }
    }
    if counts.is_empty() {
        return None;
    }
    let n = counts.len();

    let profile = |select: fn(&AccessCounts) -> &std::collections::BTreeMap<BlockAddr, u64>| {
        let mut presence: HashMap<BlockAddr, (usize, u64)> = HashMap::new();
        for c in &counts {
            for (&b, &accesses) in select(c) {
                let e = presence.entry(b).or_insert((0, 0));
                e.0 += 1;
                e.1 += accesses;
            }
        }
        let mut points: Vec<ReusePoint> = presence
            .into_iter()
            .map(|(b, (present_in, total))| ReusePoint {
                block: b.0,
                commonality: present_in as f64 / n as f64,
                avg_reuse: total as f64 / present_in as f64,
            })
            .collect();
        points.sort_by(|a, b| {
            a.commonality
                .partial_cmp(&b.commonality)
                .expect("finite")
                .then_with(|| a.block.cmp(&b.block))
        });
        points
    };

    Some(ReuseProfile {
        instr: profile(|c| &c.instr),
        data: profile(|c| &c.data),
        instances: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::{TraceEvent, XctTrace};

    /// Instances share block 0x100 (touched 3x each) and touch a private
    /// block once.
    fn workload(n: u64) -> WorkloadTrace {
        WorkloadTrace {
            name: "t".into(),
            xct_type_names: vec!["A".into()],
            xcts: (0..n)
                .map(|i| XctTrace {
                    xct_type: XctTypeId(0),
                    events: vec![
                        TraceEvent::XctBegin {
                            xct_type: XctTypeId(0),
                        },
                        TraceEvent::OpBegin { op: OpKind::Probe },
                        TraceEvent::Instr {
                            block: BlockAddr(0x100),
                            n_blocks: 1,
                            ipb: 5,
                        },
                        TraceEvent::Instr {
                            block: BlockAddr(0x100),
                            n_blocks: 1,
                            ipb: 5,
                        },
                        TraceEvent::Instr {
                            block: BlockAddr(0x100),
                            n_blocks: 1,
                            ipb: 5,
                        },
                        TraceEvent::Instr {
                            block: BlockAddr(0x200 + i),
                            n_blocks: 1,
                            ipb: 5,
                        },
                        TraceEvent::Data {
                            block: BlockAddr(0x900),
                            write: false,
                        },
                        TraceEvent::Data {
                            block: BlockAddr(0x900),
                            write: true,
                        },
                        TraceEvent::Data {
                            block: BlockAddr(0xA00 + i),
                            write: false,
                        },
                        TraceEvent::OpEnd { op: OpKind::Probe },
                        TraceEvent::XctEnd,
                    ],
                })
                .collect(),
        }
    }

    #[test]
    fn common_blocks_show_higher_reuse() {
        let w = workload(8);
        let p = reuse_profile(&w, XctTypeId(0), None).unwrap();
        assert_eq!(p.instances, 8);
        // The shared instruction block: commonality 1.0, reuse 3.
        let shared = p.instr.iter().find(|pt| pt.block == 0x100).unwrap();
        assert!((shared.commonality - 1.0).abs() < 1e-9);
        assert!((shared.avg_reuse - 3.0).abs() < 1e-9);
        // Private blocks: commonality 1/8, reuse 1.
        let private = p.instr.iter().find(|pt| pt.block == 0x200).unwrap();
        assert!((private.commonality - 0.125).abs() < 1e-9);
        assert!((private.avg_reuse - 1.0).abs() < 1e-9);
        // The paper's observation holds.
        let (common, rest) = ReuseProfile::common_vs_rest(&p.instr);
        assert!(common > rest);
        // Sorted ascending by commonality: last point is the shared one.
        assert_eq!(p.instr.last().unwrap().block, 0x100);
    }

    #[test]
    fn data_counted_separately() {
        let w = workload(4);
        let p = reuse_profile(&w, XctTypeId(0), None).unwrap();
        let shared = p.data.iter().find(|pt| pt.block == 0x900).unwrap();
        assert!((shared.avg_reuse - 2.0).abs() < 1e-9);
        assert_eq!(p.data.len(), 1 + 4);
    }

    #[test]
    fn op_scope_and_missing_type() {
        let w = workload(4);
        assert!(reuse_profile(&w, XctTypeId(1), None).is_none());
        let p = reuse_profile(&w, XctTypeId(0), Some(OpKind::Probe)).unwrap();
        assert_eq!(p.instances, 4);
        assert!(reuse_profile(&w, XctTypeId(0), Some(OpKind::Insert)).is_none());
    }
}
