//! The spec interpreter's faithfulness obligation: a [`WorkloadSpec`]
//! re-expressing a handwritten benchmark must produce **bit-for-bit
//! identical traces** — same population order (hence the same global
//! page-allocation and B+-tree layout), same per-transaction RNG draws,
//! same engine-call sequence, same every-event trace content.
//!
//! TPC-B is the witness: `spec::tpcb_spec` vs the handwritten
//! `tpcb::TpcB`, compared at multiple scales and seeds. If the
//! interpreter drifts from the engine-call idiom the handwritten
//! benchmarks use (an extra probe, a reordered draw, a different lock),
//! this test names the first diverging transaction.

use addict_trace::XctTrace;
use addict_workloads::spec::{tpcb_spec, SpecRunner};
use addict_workloads::tpcb::{TpcB, TpcBConfig};
use addict_workloads::{collect_traces, Benchmark, WorkloadRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collect `n` transactions from the handwritten TPC-B at `cfg`.
fn handwritten(cfg: TpcBConfig, n: usize, seed: u64) -> Vec<XctTrace> {
    let (mut e, mut w) = TpcB::setup(cfg);
    collect_traces(&mut e, &mut w, n, seed).xcts
}

/// Collect `n` transactions from the spec-driven TPC-B at the same scale.
fn spec_driven(cfg: &TpcBConfig, n: usize, seed: u64) -> Vec<XctTrace> {
    let (mut e, mut w) = SpecRunner::setup(tpcb_spec(
        cfg.branches,
        cfg.tellers_per_branch,
        cfg.accounts_per_branch,
    ));
    collect_traces(&mut e, &mut w, n, seed).xcts
}

fn assert_bit_identical(a: &[XctTrace], b: &[XctTrace], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: trace counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.xct_type, y.xct_type, "{what}: transaction {i} type");
        assert_eq!(
            x.events, y.events,
            "{what}: transaction {i} events diverged"
        );
    }
}

#[test]
fn spec_tpcb_is_bit_identical_to_handwritten() {
    let cfg = TpcBConfig::small();
    for seed in [1u64, 2, 42] {
        let hand = handwritten(cfg.clone(), 40, seed);
        let spec = spec_driven(&cfg, 40, seed);
        assert_bit_identical(&hand, &spec, &format!("small scale, seed {seed}"));
    }
}

#[test]
fn spec_tpcb_equivalence_holds_at_odd_scales() {
    // A scale the handwritten module was never tuned for: uneven branch
    // sizes exercise the child-key partition arithmetic, and enough
    // accounts force multi-level B+-tree descents whose page ids must
    // match exactly.
    let cfg = TpcBConfig {
        branches: 3,
        tellers_per_branch: 7,
        accounts_per_branch: 501,
    };
    let hand = handwritten(cfg.clone(), 60, 7);
    let spec = spec_driven(&cfg, 60, 7);
    assert_bit_identical(&hand, &spec, "odd scale");
}

#[test]
fn spec_tpcb_metadata_matches() {
    let (_, hand) = TpcB::setup(TpcBConfig::small());
    let (_, spec) = SpecRunner::setup(tpcb_spec(2, 4, 100));
    assert_eq!(hand.name(), spec.name());
    assert_eq!(hand.xct_type_names(), spec.xct_type_names());
}

/// The spec-driven registry entries satisfy the same determinism contract
/// as the handwritten trio: identical seed, identical traces — through
/// the same `Benchmark` entry points the harness uses.
#[test]
fn registry_spec_benchmarks_are_deterministic() {
    for bench in [Benchmark::Tatp, Benchmark::YcsbA, Benchmark::YcsbB] {
        let run = |seed: u64| {
            let (mut e, mut w) = bench.setup_small();
            collect_traces(&mut e, w.as_mut(), 30, seed).xcts
        };
        assert_bit_identical(&run(11), &run(11), bench.name());
        let (a, c) = (run(11), run(12));
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.events != y.events),
            "{}: different seeds should produce different traces",
            bench.name()
        );
    }
}

/// TATP transactions are short — the property the mix exists to probe.
/// Median operation count must sit well under TPC-C's (NewOrder alone
/// runs ~25 operations).
#[test]
fn tatp_transactions_are_short() {
    let (mut e, mut w) = Benchmark::Tatp.setup_small();
    let traces = collect_traces(&mut e, w.as_mut(), 200, 3).xcts;
    let mut op_counts: Vec<usize> = traces.iter().map(|t| t.op_slices().len()).collect();
    op_counts.sort_unstable();
    let median = op_counts[op_counts.len() / 2];
    assert!(
        (1..=3).contains(&median),
        "TATP median ops/transaction {median}, expected 1-3"
    );
    assert!(*op_counts.last().unwrap() <= 6, "{op_counts:?}");
}

/// YCSB's Zipfian keys concentrate the data footprint: the hottest data
/// block must absorb far more accesses than a uniform spread would give
/// it.
#[test]
fn ycsb_zipfian_concentrates_data_accesses() {
    use std::collections::HashMap;
    let (mut e, mut w) = Benchmark::YcsbA.setup_small();
    let traces = collect_traces(&mut e, w.as_mut(), 200, 5).xcts;
    let mut by_block: HashMap<u64, usize> = HashMap::new();
    let mut total = 0usize;
    for t in &traces {
        for ev in &t.events {
            if let addict_trace::TraceEvent::Data { block, .. } = ev {
                *by_block.entry(block.0).or_default() += 1;
                total += 1;
            }
        }
    }
    let hottest = by_block.values().copied().max().unwrap();
    let uniform_share = total / by_block.len();
    assert!(
        hottest > 4 * uniform_share,
        "hottest block {hottest} accesses vs uniform expectation {uniform_share}"
    );
}

/// Seed-stream check at the boundary the runner owns: `collect_traces`
/// hands one `StdRng` to the runner for the whole stream, and the spec
/// runner must consume draws exactly as declared (no hidden draws), so a
/// manually-driven run reproduces `collect_traces`.
#[test]
fn spec_runner_consumes_no_hidden_randomness() {
    let (mut e1, mut w1) = Benchmark::Tatp.setup_small();
    let via_collect = collect_traces(&mut e1, w1.as_mut(), 25, 9).xcts;

    let (mut e2, mut w2) = Benchmark::Tatp.setup_small();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..25 {
        w2.run_one(&mut e2, &mut rng).unwrap();
    }
    let manual = e2.take_traces();
    assert_bit_identical(&via_collect, &manual, "TATP manual drive");
}
