//! TPC-B: the single-transaction banking benchmark.
//!
//! Schema: Branch, Teller (10 per branch), Account (many per branch), and
//! the index-less History table. The one transaction type, `AccountUpdate`,
//! updates an account, its teller, and its branch balance, then appends a
//! History row — the exact flow Section 2.2.1 of the paper analyzes
//! (History's lack of an index is what makes TPC-B's insert footprint
//! deviate only on the rare `allocate page` path).

use addict_storage::{Engine, EngineConfig, IndexId, StorageResult, TableId};
use addict_trace::XctTypeId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::rows::{encode_row, get_field_i64, set_field_i64};
use crate::WorkloadRunner;

/// The `AccountUpdate` transaction type id.
pub const ACCOUNT_UPDATE: XctTypeId = XctTypeId(0);

/// TPC-B scale configuration.
#[derive(Debug, Clone)]
pub struct TpcBConfig {
    /// Number of branches.
    pub branches: u64,
    /// Tellers per branch (spec: 10).
    pub tellers_per_branch: u64,
    /// Accounts per branch (spec: 100 000; scaled down by default).
    pub accounts_per_branch: u64,
}

impl Default for TpcBConfig {
    fn default() -> Self {
        TpcBConfig {
            branches: 16,
            tellers_per_branch: 10,
            accounts_per_branch: 8_000,
        }
    }
}

impl TpcBConfig {
    /// Tiny scale for unit tests.
    pub fn small() -> Self {
        TpcBConfig {
            branches: 2,
            tellers_per_branch: 4,
            accounts_per_branch: 100,
        }
    }
}

/// Row widths (bytes) — compact versions of the spec's 100-byte rows.
const BRANCH_ROW: usize = 100;
const TELLER_ROW: usize = 100;
const ACCOUNT_ROW: usize = 100;
const HISTORY_ROW: usize = 50;

/// Field indexes within rows: `[id, balance]`.
const F_BALANCE: usize = 1;

/// The populated TPC-B database handles.
#[derive(Debug)]
pub struct TpcB {
    cfg: TpcBConfig,
    branch: TableId,
    branch_pk: IndexId,
    teller: TableId,
    teller_pk: IndexId,
    account: TableId,
    account_pk: IndexId,
    history: TableId,
}

impl TpcB {
    /// Create tables and populate (untraced); tracing is on when this
    /// returns.
    pub fn setup(cfg: TpcBConfig) -> (Engine, TpcB) {
        let mut e = Engine::new(EngineConfig::default());
        let branch = e.create_table("branch");
        let branch_pk = e.create_index(branch, "branch_pk").expect("table exists");
        let teller = e.create_table("teller");
        let teller_pk = e.create_index(teller, "teller_pk").expect("table exists");
        let account = e.create_table("account");
        let account_pk = e.create_index(account, "account_pk").expect("table exists");
        // History deliberately has no index (spec + paper).
        let history = e.create_table("history");

        let w = TpcB {
            cfg,
            branch,
            branch_pk,
            teller,
            teller_pk,
            account,
            account_pk,
            history,
        };
        w.populate(&mut e);
        (e, w)
    }

    fn populate(&self, e: &mut Engine) {
        e.set_tracing(false);
        let x = e.begin(ACCOUNT_UPDATE);
        for b in 0..self.cfg.branches {
            e.insert_tuple(
                x,
                self.branch,
                &[(self.branch_pk, b)],
                &encode_row(BRANCH_ROW, &[b, 0]),
            )
            .expect("populate branch");
            for t in 0..self.cfg.tellers_per_branch {
                let tid = b * self.cfg.tellers_per_branch + t;
                e.insert_tuple(
                    x,
                    self.teller,
                    &[(self.teller_pk, tid)],
                    &encode_row(TELLER_ROW, &[tid, 0]),
                )
                .expect("populate teller");
            }
            for a in 0..self.cfg.accounts_per_branch {
                let aid = b * self.cfg.accounts_per_branch + a;
                e.insert_tuple(
                    x,
                    self.account,
                    &[(self.account_pk, aid)],
                    &encode_row(ACCOUNT_ROW, &[aid, 1_000]),
                )
                .expect("populate account");
            }
        }
        e.commit(x).expect("populate commit");
        e.set_tracing(true);
    }

    /// Probe a row by key, apply `delta` to its balance field, write back.
    fn probe_and_adjust(
        &self,
        e: &mut Engine,
        x: addict_storage::XctId,
        index: IndexId,
        table: TableId,
        key: u64,
        delta: i64,
    ) -> StorageResult<i64> {
        let rid = e
            .index_probe_rid(x, index, key)?
            .unwrap_or_else(|| panic!("populated key {key} missing"));
        let mut row = e.peek(table, rid)?;
        let balance = get_field_i64(&row, F_BALANCE) + delta;
        set_field_i64(&mut row, F_BALANCE, balance);
        e.update_tuple(x, table, rid, &row)?;
        Ok(balance)
    }

    /// One `AccountUpdate` transaction.
    pub fn account_update(&self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let b = rng.gen_range(0..self.cfg.branches);
        let t = b * self.cfg.tellers_per_branch + rng.gen_range(0..self.cfg.tellers_per_branch);
        let a = b * self.cfg.accounts_per_branch + rng.gen_range(0..self.cfg.accounts_per_branch);
        let delta = rng.gen_range(-99_999i64..=99_999);

        let x = e.begin(ACCOUNT_UPDATE);
        self.probe_and_adjust(e, x, self.account_pk, self.account, a, delta)?;
        self.probe_and_adjust(e, x, self.teller_pk, self.teller, t, delta)?;
        self.probe_and_adjust(e, x, self.branch_pk, self.branch, b, delta)?;
        e.insert_tuple(
            x,
            self.history,
            &[],
            &encode_row(HISTORY_ROW, &[a, t, b, delta as u64]),
        )?;
        e.commit(x)
    }

    /// Account primary index (tests, verification).
    pub fn account_index(&self) -> IndexId {
        self.account_pk
    }

    /// Account table (tests, verification).
    pub fn account_table(&self) -> TableId {
        self.account
    }

    /// The configured scale.
    pub fn config(&self) -> &TpcBConfig {
        &self.cfg
    }
}

impl WorkloadRunner for TpcB {
    fn name(&self) -> &'static str {
        "TPC-B"
    }

    fn xct_type_names(&self) -> Vec<String> {
        vec!["AccountUpdate".to_owned()]
    }

    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId> {
        self.account_update(engine, rng)?;
        Ok(ACCOUNT_UPDATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::{OpKind, TraceEvent};
    use rand::SeedableRng;

    #[test]
    fn populate_builds_all_tables() {
        let (e, w) = TpcB::setup(TpcBConfig::small());
        let c = e.catalog();
        assert_eq!(c.table(w.branch).unwrap().heap.n_records() as u64, 2);
        assert_eq!(c.table(w.teller).unwrap().heap.n_records() as u64, 8);
        assert_eq!(c.table(w.account).unwrap().heap.n_records() as u64, 200);
        assert_eq!(c.table(w.history).unwrap().heap.n_records(), 0);
    }

    #[test]
    fn account_update_moves_money_and_appends_history() {
        let (mut e, w) = TpcB::setup(TpcBConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            w.account_update(&mut e, &mut rng).unwrap();
        }
        assert_eq!(e.catalog().table(w.history).unwrap().heap.n_records(), 20);
        let traces = e.take_traces();
        assert_eq!(traces.len(), 20);
        // Every AccountUpdate: 3 probes, 3 updates, 1 insert.
        for t in &traces {
            let mut probes = 0;
            let mut updates = 0;
            let mut inserts = 0;
            for (op, _) in t.op_slices() {
                match op {
                    OpKind::Probe => probes += 1,
                    OpKind::Update => updates += 1,
                    OpKind::Insert => inserts += 1,
                    other => panic!("unexpected {other:?} in AccountUpdate"),
                }
            }
            assert_eq!((probes, updates, inserts), (3, 3, 1));
        }
    }

    #[test]
    fn balances_stay_consistent() {
        let (mut e, w) = TpcB::setup(TpcBConfig::small());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            w.account_update(&mut e, &mut rng).unwrap();
        }
        // Sum of branch balances equals sum of teller balances equals the
        // net delta applied to accounts (minus initial account endowment).
        let sum = |table, skip_initial: i64| -> i64 {
            e.catalog()
                .table(table)
                .unwrap()
                .heap
                .iter()
                .map(|(_, r)| crate::rows::get_field_i64(r, F_BALANCE) - skip_initial)
                .sum()
        };
        let branches = sum(w.branch, 0);
        let tellers = sum(w.teller, 0);
        let accounts = sum(w.account, 1_000);
        assert_eq!(branches, tellers);
        assert_eq!(branches, accounts);
    }

    #[test]
    fn history_insert_never_touches_index_code() {
        let (mut e, w) = TpcB::setup(TpcBConfig::small());
        let mut rng = StdRng::seed_from_u64(5);
        w.account_update(&mut e, &mut rng).unwrap();
        let traces = e.take_traces();
        let map = addict_trace::CodeMap::global();
        // Inside the insert op span, no CreateIndexEntry blocks.
        for t in &traces {
            for (op, range) in t.op_slices() {
                if op != OpKind::Insert {
                    continue;
                }
                for ev in &t.events[range] {
                    if let TraceEvent::Instr { block, .. } = ev {
                        assert_ne!(
                            map.routine_of(*block),
                            Some(addict_trace::Routine::CreateIndexEntry),
                            "index-less History insert ran create_index_entry"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let (mut e, w) = TpcB::setup(TpcBConfig::small());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..10 {
                w.account_update(&mut e, &mut rng).unwrap();
            }
            e.take_traces()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "same seed must give identical traces");
        }
        // A different seed touches different accounts: the data-block
        // streams diverge even though the op structure is identical.
        let c = run(43);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.events != y.events),
            "different seeds should produce different data accesses"
        );
    }
}
