//! Fixed-layout row encoding.
//!
//! Workload rows are real byte records stored in slotted pages. Numeric
//! fields live at fixed offsets (little endian) so transactions can patch a
//! balance or quantity in place, exactly like a fixed-schema tuple; the
//! remainder is filler bringing each row to a realistic width.

/// Build a row of `width` bytes with `fields` u64 values at the front.
///
/// # Panics
/// Panics if the fields do not fit in `width`.
pub fn encode_row(width: usize, fields: &[u64]) -> Vec<u8> {
    assert!(fields.len() * 8 <= width, "fields exceed row width");
    let mut row = vec![0u8; width];
    for (i, &f) in fields.iter().enumerate() {
        row[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
    }
    // Deterministic filler so rows are not all-zero (helps catch
    // corruption in tests).
    for (i, b) in row.iter_mut().enumerate().skip(fields.len() * 8) {
        *b = (i % 251) as u8;
    }
    row
}

/// Read field `idx` of a row produced by [`encode_row`].
pub fn get_field(row: &[u8], idx: usize) -> u64 {
    let at = idx * 8;
    u64::from_le_bytes(row[at..at + 8].try_into().expect("field within row"))
}

/// Overwrite field `idx` in place.
pub fn set_field(row: &mut [u8], idx: usize, value: u64) {
    let at = idx * 8;
    row[at..at + 8].copy_from_slice(&value.to_le_bytes());
}

/// Signed accessor (balances can go negative).
pub fn get_field_i64(row: &[u8], idx: usize) -> i64 {
    get_field(row, idx) as i64
}

/// Signed setter.
pub fn set_field_i64(row: &mut [u8], idx: usize, value: i64) {
    set_field(row, idx, value as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let row = encode_row(100, &[7, 42, u64::MAX]);
        assert_eq!(row.len(), 100);
        assert_eq!(get_field(&row, 0), 7);
        assert_eq!(get_field(&row, 1), 42);
        assert_eq!(get_field(&row, 2), u64::MAX);
    }

    #[test]
    fn patch_in_place() {
        let mut row = encode_row(64, &[1, 2]);
        set_field(&mut row, 1, 999);
        assert_eq!(get_field(&row, 0), 1);
        assert_eq!(get_field(&row, 1), 999);
    }

    #[test]
    fn signed_balances() {
        let mut row = encode_row(64, &[0]);
        set_field_i64(&mut row, 0, -5000);
        assert_eq!(get_field_i64(&row, 0), -5000);
    }

    #[test]
    fn filler_is_nonzero_and_deterministic() {
        let a = encode_row(64, &[1]);
        let b = encode_row(64, &[1]);
        assert_eq!(a, b);
        assert!(a[8..].iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_fields_rejected() {
        let _ = encode_row(15, &[1, 2]);
    }
}
