//! Declarative workload specifications: benchmarks as data.
//!
//! The paper's whole argument rests on workload *shape* — how much
//! instruction stream transactions share and how little data they share
//! (Sections 2.2, 4.1). The handwritten TPC modules can only ask that
//! question of three mixes; this module turns a benchmark into a value:
//!
//! * [`WorkloadSpec`] — tables (row counts, row shapes, key layout) plus
//!   transaction types (typed step sequences over those tables) plus a
//!   cumulative mix table;
//! * [`SpecRunner`] — an interpreter that populates a fresh
//!   [`Engine`](addict_storage::Engine) from the spec and executes the mix
//!   through the exact same five traced operations the handwritten
//!   benchmarks use. Runs are deterministic in the seed, so every
//!   downstream guarantee (parallel generation, interned replay,
//!   thread-count-independent sweeps) holds for spec-driven workloads
//!   for free.
//!
//! The interpreter is *faithful*: [`tpcb_spec`] re-expresses TPC-B as a
//! spec, and `tests/spec_equivalence.rs` asserts its traces are
//! **bit-for-bit identical** to the handwritten [`crate::tpcb`] module —
//! same population order (page/B+-tree layout), same per-transaction RNG
//! draws, same engine-call sequence.
//!
//! Two spec-only mixes ship as registry entries
//! ([`Benchmark`](crate::Benchmark)):
//!
//! * [`tatp_spec`] — the TATP telecom mix: seven transaction types,
//!   ~80% read, transactions far *shorter* than TPC-C's (1–3 operations).
//!   Short transactions are where ADDICT's instruction-chasing margin
//!   thins: the per-transaction wrapper (begin/commit, logging, lock
//!   release) is a large fraction of the instruction stream, and batches
//!   cross migration points sooner.
//! * [`ycsb_spec`] — YCSB-A/B-style key-value loops: one table, one
//!   operation per transaction, Zipfian-skewed keys. The degenerate
//!   instruction footprint (every transaction walks the same probe or
//!   probe+update path) gives *total* instruction overlap — the opposite
//!   extreme from TPC-E's ten-type mix — while the Zipfian hot set breaks
//!   the paper's ≤6% data-overlap property.

use addict_storage::{Engine, EngineConfig, IndexId, StorageResult, TableId, XctId};
use addict_trace::XctTypeId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::rows::{encode_row, get_field_i64, set_field_i64};
use crate::{pick_mix, WorkloadRunner};

/// How a key rank is drawn from a key space of `n` ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// `rng.gen_range(0..n)` — every rank equally likely.
    Uniform,
    /// Zipfian-skewed ranks (Gray et al.'s quick generator): rank 0 is
    /// the hottest. `theta` is the skew (YCSB's default is 0.99).
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
}

/// Initial value of one row field at population time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldInit {
    /// The row's key.
    Key,
    /// A constant.
    Const(u64),
}

/// One table: row count (via the population group structure), row shape,
/// and key layout.
///
/// Population inserts `per_group` rows per group `g` (the spec's
/// [`WorkloadSpec::groups`] outer dimension), at keys
/// `g * stride + i * step` for `i in 0..per_group`. Dense single-parent
/// tables use `stride == per_group, step == 1`; child tables partitioned
/// under a parent key space leave gaps (TATP's call-forwarding rows live
/// at `(subscriber*4 + facility) * 8 + slot`). The group-major insert
/// order is part of the contract: it fixes the global page-allocation and
/// B+-tree layout, which is what lets a spec reproduce a handwritten
/// benchmark bit-for-bit.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (also names the primary index, as `{name}_pk`).
    pub name: &'static str,
    /// Row width in bytes.
    pub row_bytes: usize,
    /// Whether the table has a primary index. Index-less tables (TPC-B's
    /// History) take the heap-only insert path the paper analyzes in
    /// Section 2.2.1.
    pub indexed: bool,
    /// Rows inserted per population group.
    pub per_group: u64,
    /// Key stride between groups.
    pub stride: u64,
    /// Key step between the rows of one group.
    pub step: u64,
    /// Leading row fields at population (the rest is deterministic
    /// filler, as in [`encode_row`]).
    pub init: Vec<FieldInit>,
}

impl TableSpec {
    /// Total populated rows.
    pub fn rows(&self, groups: u64) -> u64 {
        groups * self.per_group
    }

    /// Key of populated rank `r` (rank = group-major insert order).
    pub fn key_of_rank(&self, r: u64) -> u64 {
        if self.per_group <= 1 {
            r * self.stride
        } else {
            (r / self.per_group) * self.stride + (r % self.per_group) * self.step
        }
    }
}

/// One per-transaction value, drawn (or derived) before any step runs.
///
/// Draw order is the declaration order — the RNG contract that makes a
/// spec transaction reproduce a handwritten one exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarSpec {
    /// A populated key of `table`: a rank drawn under `dist`, mapped
    /// through the table's key layout.
    Key {
        /// Table index in [`WorkloadSpec::tables`].
        table: usize,
        /// Rank distribution.
        dist: KeyDist,
    },
    /// A key derived from an earlier var (a partition parent):
    /// `vars[parent] * stride + draw(0..per) * step`. TPC-B's teller
    /// (`branch * tellers_per_branch + offset`) and TATP's per-subscriber
    /// facilities are this shape.
    ChildKey {
        /// Var index of the parent key.
        parent: usize,
        /// Offsets per parent.
        per: u64,
        /// Multiplier applied to the parent key.
        stride: u64,
        /// Multiplier applied to the drawn offset.
        step: u64,
        /// Offset distribution.
        dist: KeyDist,
    },
    /// A signed delta: `rng.gen_range(lo..=hi)`, stored bit-cast
    /// (`as u64`) so inserts can embed it exactly like the handwritten
    /// benchmarks do.
    DeltaI64 {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `vars[of] * mul + add` — consumes no randomness (scan starts,
    /// key-space projections).
    Derived {
        /// Var index this is derived from.
        of: usize,
        /// Multiplier.
        mul: u64,
        /// Addend.
        add: u64,
    },
}

/// One row field of an insert step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldRef {
    /// A per-transaction var (index into [`XctSpec::vars`]).
    Var(usize),
    /// A constant.
    Const(u64),
}

/// One typed step of a transaction, interpreted against the engine's five
/// traced operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StepSpec {
    /// `index probe`: point-read the row at key `vars[key]`.
    ProbeByKey {
        /// Table index.
        table: usize,
        /// Var index of the key.
        key: usize,
    },
    /// `index scan`: read keys `[vars[start], vars[start] + span - 1]`.
    RangeScan {
        /// Table index.
        table: usize,
        /// Var index of the first key.
        start: usize,
        /// Inclusive key span.
        span: u64,
    },
    /// Probe the row by key, add `vars[delta]` (as i64) to `field`, write
    /// it back — the probe/update pair every TPC transaction is built
    /// from. A missing key skips the update (never panics).
    UpdateRow {
        /// Table index.
        table: usize,
        /// Var index of the key.
        key: usize,
        /// Var index of the signed delta.
        delta: usize,
        /// Row field to adjust.
        field: usize,
    },
    /// `insert tuple` + `create index entry`: insert `row` at key
    /// `vars[key]`. An already-present key skips the step (checked
    /// untraced), so churn mixes run forever without key bookkeeping.
    InsertIndexed {
        /// Table index (must be indexed).
        table: usize,
        /// Var index of the key.
        key: usize,
        /// Leading row fields.
        row: Vec<FieldRef>,
    },
    /// `insert tuple` into an index-less table (TPC-B History: the
    /// `allocate page` variety, no `create index entry`).
    InsertHeap {
        /// Table index (must be index-less).
        table: usize,
        /// Leading row fields.
        row: Vec<FieldRef>,
    },
    /// `delete tuple` at key `vars[key]`; a missing key skips the step
    /// (checked untraced).
    DeleteRow {
        /// Table index.
        table: usize,
        /// Var index of the key.
        key: usize,
    },
}

/// One transaction type: vars drawn in order, then steps run in order.
#[derive(Debug, Clone)]
pub struct XctSpec {
    /// Type name (the [`WorkloadRunner::xct_type_names`] entry).
    pub name: &'static str,
    /// Per-transaction values, drawn before the transaction begins.
    pub vars: Vec<VarSpec>,
    /// The step sequence.
    pub steps: Vec<StepSpec>,
}

/// A complete declarative workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Population groups (the outer population dimension: branches,
    /// subscribers, rows).
    pub groups: u64,
    /// The tables, populated group-major in declaration order.
    pub tables: Vec<TableSpec>,
    /// Transaction types, indexed by [`XctTypeId`].
    pub xcts: Vec<XctSpec>,
    /// Cumulative mix percentages over `xcts`. A single-type spec skips
    /// the mix draw entirely (exactly like the handwritten TPC-B), so the
    /// per-transaction RNG stream starts at the first var.
    pub mix: Vec<(u32, XctTypeId)>,
}

impl WorkloadSpec {
    /// Validate internal references (table/var indexes, mix coverage).
    /// Called by [`SpecRunner::setup`]; panics on a malformed spec — a
    /// spec is code-shaped data, and a bad index is a bug, not input.
    fn validate(&self) {
        assert!(!self.tables.is_empty(), "{}: no tables", self.name);
        assert!(!self.xcts.is_empty(), "{}: no transaction types", self.name);
        assert_eq!(
            self.mix.len(),
            self.xcts.len(),
            "{}: mix rows != transaction types",
            self.name
        );
        assert_eq!(
            self.mix.last().map(|&(c, _)| c),
            Some(100),
            "{}: cumulative mix must end at 100",
            self.name
        );
        for x in &self.xcts {
            for (vi, v) in x.vars.iter().enumerate() {
                match *v {
                    VarSpec::Key { table, .. } => {
                        assert!(
                            table < self.tables.len(),
                            "{}/{}: bad table",
                            self.name,
                            x.name
                        );
                        assert!(
                            self.tables[table].rows(self.groups) > 0,
                            "{}/{}: key var over empty table {}",
                            self.name,
                            x.name,
                            self.tables[table].name
                        );
                    }
                    VarSpec::ChildKey { parent, per, .. } => {
                        assert!(
                            parent < vi,
                            "{}/{}: child var before parent",
                            self.name,
                            x.name
                        );
                        assert!(per > 0, "{}/{}: empty child range", self.name, x.name);
                    }
                    VarSpec::DeltaI64 { lo, hi } => {
                        assert!(lo <= hi, "{}/{}: empty delta range", self.name, x.name);
                    }
                    VarSpec::Derived { of, .. } => {
                        assert!(
                            of < vi,
                            "{}/{}: derived var before source",
                            self.name,
                            x.name
                        );
                    }
                }
            }
            for s in &x.steps {
                let tbl = |t: usize| -> &TableSpec {
                    assert!(
                        t < self.tables.len(),
                        "{}/{}: bad step table",
                        self.name,
                        x.name
                    );
                    &self.tables[t]
                };
                let var = |v: usize| {
                    assert!(v < x.vars.len(), "{}/{}: bad step var", self.name, x.name);
                };
                match *s {
                    StepSpec::ProbeByKey { table, key } => {
                        tbl(table);
                        var(key);
                    }
                    StepSpec::RangeScan { table, start, span } => {
                        tbl(table);
                        var(start);
                        assert!(span > 0, "{}/{}: zero-span range scan", self.name, x.name);
                    }
                    StepSpec::UpdateRow {
                        table, key, delta, ..
                    } => {
                        tbl(table);
                        var(key);
                        var(delta);
                    }
                    StepSpec::InsertIndexed {
                        table,
                        key,
                        ref row,
                    } => {
                        assert!(
                            tbl(table).indexed,
                            "{}/{}: InsertIndexed into index-less table",
                            self.name,
                            x.name
                        );
                        var(key);
                        self.validate_row(x, table, row);
                    }
                    StepSpec::InsertHeap { table, ref row } => {
                        assert!(
                            !tbl(table).indexed,
                            "{}/{}: InsertHeap into indexed table",
                            self.name,
                            x.name
                        );
                        self.validate_row(x, table, row);
                    }
                    StepSpec::DeleteRow { table, key } => {
                        tbl(table);
                        var(key);
                    }
                }
            }
        }
    }

    fn validate_row(&self, x: &XctSpec, table: usize, row: &[FieldRef]) {
        assert!(
            row.len() * 8 <= self.tables[table].row_bytes,
            "{}/{}: row fields exceed width of {}",
            self.name,
            x.name,
            self.tables[table].name
        );
        for f in row {
            if let FieldRef::Var(v) = f {
                assert!(*v < x.vars.len(), "{}/{}: bad row var", self.name, x.name);
            }
        }
    }
}

/// Precomputed Zipfian sampler state (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases"): one `f64` draw per sample,
/// deterministic in the RNG stream.
#[derive(Debug, Clone)]
struct Zipf {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipfian over empty key space");
        assert!(
            (0.0..1.0).contains(&theta),
            "zipfian theta must be in [0, 1)"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        Zipf {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// One rank sampler, resolved from a [`KeyDist`] at setup.
#[derive(Debug, Clone)]
enum Sampler {
    Uniform(u64),
    Zipf(Zipf),
}

impl Sampler {
    fn new(n: u64, dist: KeyDist) -> Sampler {
        match dist {
            KeyDist::Uniform => Sampler::Uniform(n),
            KeyDist::Zipfian { theta } => Sampler::Zipf(Zipf::new(n, theta)),
        }
    }

    /// A rank in `0..n`. The uniform arm is a bare `gen_range(0..n)` —
    /// the identical RNG call the handwritten benchmarks make.
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            Sampler::Uniform(n) => rng.gen_range(0..*n),
            Sampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Table handles of one populated spec table.
#[derive(Debug, Clone, Copy)]
struct TableHandles {
    table: TableId,
    pk: Option<IndexId>,
}

/// The spec interpreter: populates an engine from a [`WorkloadSpec`] and
/// runs its mix as a [`WorkloadRunner`]. Deterministic in the seed.
#[derive(Debug)]
pub struct SpecRunner {
    spec: WorkloadSpec,
    handles: Vec<TableHandles>,
    /// Per-(xct, var) samplers (None for vars that consume no draw or use
    /// `gen_range` directly).
    samplers: Vec<Vec<Option<Sampler>>>,
}

impl SpecRunner {
    /// Create tables and indexes in declaration order, populate
    /// group-major (untraced), and return the engine with tracing on —
    /// the same contract as the handwritten `setup` functions.
    pub fn setup(spec: WorkloadSpec) -> (Engine, SpecRunner) {
        spec.validate();
        let mut e = Engine::new(EngineConfig::default());
        let handles: Vec<TableHandles> = spec
            .tables
            .iter()
            .map(|t| {
                let table = e.create_table(t.name);
                let pk = t.indexed.then(|| {
                    e.create_index(table, &format!("{}_pk", t.name))
                        .expect("table just created")
                });
                TableHandles { table, pk }
            })
            .collect();

        let samplers = spec
            .xcts
            .iter()
            .map(|x| {
                x.vars
                    .iter()
                    .map(|v| match *v {
                        VarSpec::Key { table, dist } => {
                            Some(Sampler::new(spec.tables[table].rows(spec.groups), dist))
                        }
                        VarSpec::ChildKey { per, dist, .. } => Some(Sampler::new(per, dist)),
                        VarSpec::DeltaI64 { .. } | VarSpec::Derived { .. } => None,
                    })
                    .collect()
            })
            .collect();

        let runner = SpecRunner {
            spec,
            handles,
            samplers,
        };
        runner.populate(&mut e);
        (e, runner)
    }

    /// The populated spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn populate(&self, e: &mut Engine) {
        e.set_tracing(false);
        let x = e.begin(XctTypeId(0));
        for g in 0..self.spec.groups {
            for (t, h) in self.spec.tables.iter().zip(&self.handles) {
                for i in 0..t.per_group {
                    let key = g * t.stride + i * t.step;
                    let fields: Vec<u64> = t
                        .init
                        .iter()
                        .map(|f| match f {
                            FieldInit::Key => key,
                            FieldInit::Const(c) => *c,
                        })
                        .collect();
                    let index_keys: Vec<(IndexId, u64)> =
                        h.pk.map(|pk| vec![(pk, key)]).unwrap_or_default();
                    e.insert_tuple(x, h.table, &index_keys, &encode_row(t.row_bytes, &fields))
                        .unwrap_or_else(|err| {
                            panic!("{}: populate {} key {key}: {err}", self.spec.name, t.name)
                        });
                }
            }
        }
        e.commit(x).expect("populate commit");
        e.set_tracing(true);
    }

    fn draw_vars(&self, rng: &mut StdRng, ty: usize) -> Vec<u64> {
        let x = &self.spec.xcts[ty];
        let mut vars: Vec<u64> = Vec::with_capacity(x.vars.len());
        for (vi, v) in x.vars.iter().enumerate() {
            let val = match *v {
                VarSpec::Key { table, .. } => {
                    let rank = self.samplers[ty][vi]
                        .as_ref()
                        .expect("key var has a sampler")
                        .sample(rng);
                    self.spec.tables[table].key_of_rank(rank)
                }
                VarSpec::ChildKey {
                    parent,
                    stride,
                    step,
                    ..
                } => {
                    let off = self.samplers[ty][vi]
                        .as_ref()
                        .expect("child var has a sampler")
                        .sample(rng);
                    vars[parent] * stride + off * step
                }
                VarSpec::DeltaI64 { lo, hi } => rng.gen_range(lo..=hi) as u64,
                VarSpec::Derived { of, mul, add } => vars[of] * mul + add,
            };
            vars.push(val);
        }
        vars
    }

    fn pk(&self, table: usize) -> IndexId {
        self.handles[table]
            .pk
            .unwrap_or_else(|| panic!("{}: keyed step on index-less table", self.spec.name))
    }

    fn encode(&self, table: usize, row: &[FieldRef], vars: &[u64]) -> Vec<u8> {
        let fields: Vec<u64> = row
            .iter()
            .map(|f| match f {
                FieldRef::Var(v) => vars[*v],
                FieldRef::Const(c) => *c,
            })
            .collect();
        encode_row(self.spec.tables[table].row_bytes, &fields)
    }

    fn run_step(
        &self,
        e: &mut Engine,
        x: XctId,
        step: &StepSpec,
        vars: &[u64],
    ) -> StorageResult<()> {
        match *step {
            StepSpec::ProbeByKey { table, key } => {
                e.index_probe(x, self.pk(table), vars[key])?;
            }
            StepSpec::RangeScan { table, start, span } => {
                let lo = vars[start];
                e.index_scan(x, self.pk(table), lo, true, lo + span - 1, true)?;
            }
            StepSpec::UpdateRow {
                table,
                key,
                delta,
                field,
            } => {
                let Some(rid) = e.index_probe_rid(x, self.pk(table), vars[key])? else {
                    return Ok(());
                };
                let t = self.handles[table].table;
                let mut row = e.peek(t, rid)?;
                let value = get_field_i64(&row, field) + vars[delta] as i64;
                set_field_i64(&mut row, field, value);
                e.update_tuple(x, t, rid, &row)?;
            }
            StepSpec::InsertIndexed {
                table,
                key,
                ref row,
            } => {
                let pk = self.pk(table);
                // Untraced existence check: a keyed insert colliding with a
                // live row is a no-op, keeping churn mixes (TATP's
                // insert/delete call-forwarding pair) runnable forever.
                if e.peek_index(pk, vars[key])?.is_some() {
                    return Ok(());
                }
                let bytes = self.encode(table, row, vars);
                e.insert_tuple(x, self.handles[table].table, &[(pk, vars[key])], &bytes)?;
            }
            StepSpec::InsertHeap { table, ref row } => {
                let bytes = self.encode(table, row, vars);
                e.insert_tuple(x, self.handles[table].table, &[], &bytes)?;
            }
            StepSpec::DeleteRow { table, key } => {
                let pk = self.pk(table);
                if e.peek_index(pk, vars[key])?.is_none() {
                    return Ok(());
                }
                e.delete_tuple(x, self.handles[table].table, &[(pk, vars[key])])?;
            }
        }
        Ok(())
    }

    /// Execute one transaction of type `ty` (vars drawn before `begin`,
    /// exactly like the handwritten transaction functions).
    fn run_xct(&self, e: &mut Engine, rng: &mut StdRng, ty: XctTypeId) -> StorageResult<()> {
        let vars = self.draw_vars(rng, ty.0 as usize);
        let x = e.begin(ty);
        for step in &self.spec.xcts[ty.0 as usize].steps {
            self.run_step(e, x, step, &vars)?;
        }
        e.commit(x)
    }
}

impl WorkloadRunner for SpecRunner {
    fn name(&self) -> &'static str {
        self.spec.name
    }

    fn xct_type_names(&self) -> Vec<String> {
        self.spec.xcts.iter().map(|x| x.name.to_owned()).collect()
    }

    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId> {
        // A single-type spec skips the mix draw — the handwritten TPC-B
        // never consumes randomness for its (trivial) mix, and the
        // bit-for-bit equivalence contract requires matching that.
        let ty = if self.spec.xcts.len() == 1 {
            XctTypeId(0)
        } else {
            pick_mix(rng, &self.spec.mix)
        };
        self.run_xct(engine, rng, ty)?;
        Ok(ty)
    }
}

// ----------------------------------------------------------------------
// Built-in specs
// ----------------------------------------------------------------------

/// TPC-B as a spec: the faithfulness witness. Must stay in lockstep with
/// [`crate::tpcb`] — `tests/spec_equivalence.rs` asserts the traces are
/// bit-for-bit identical at every scale.
pub fn tpcb_spec(branches: u64, tellers_per_branch: u64, accounts_per_branch: u64) -> WorkloadSpec {
    use FieldInit::{Const, Key};
    let dense = |name, per_group, init: Vec<FieldInit>| TableSpec {
        name,
        row_bytes: 100,
        indexed: true,
        per_group,
        stride: per_group,
        step: 1,
        init,
    };
    WorkloadSpec {
        name: "TPC-B",
        groups: branches,
        tables: vec![
            dense("branch", 1, vec![Key, Const(0)]),
            dense("teller", tellers_per_branch, vec![Key, Const(0)]),
            dense("account", accounts_per_branch, vec![Key, Const(1_000)]),
            TableSpec {
                name: "history",
                row_bytes: 50,
                indexed: false,
                per_group: 0,
                stride: 0,
                step: 0,
                init: vec![],
            },
        ],
        xcts: vec![XctSpec {
            name: "AccountUpdate",
            // Draw order matches the handwritten transaction: branch,
            // teller offset, account offset, delta.
            vars: vec![
                VarSpec::Key {
                    table: 0,
                    dist: KeyDist::Uniform,
                },
                VarSpec::ChildKey {
                    parent: 0,
                    per: tellers_per_branch,
                    stride: tellers_per_branch,
                    step: 1,
                    dist: KeyDist::Uniform,
                },
                VarSpec::ChildKey {
                    parent: 0,
                    per: accounts_per_branch,
                    stride: accounts_per_branch,
                    step: 1,
                    dist: KeyDist::Uniform,
                },
                VarSpec::DeltaI64 {
                    lo: -99_999,
                    hi: 99_999,
                },
            ],
            steps: vec![
                StepSpec::UpdateRow {
                    table: 2,
                    key: 2,
                    delta: 3,
                    field: 1,
                },
                StepSpec::UpdateRow {
                    table: 1,
                    key: 1,
                    delta: 3,
                    field: 1,
                },
                StepSpec::UpdateRow {
                    table: 0,
                    key: 0,
                    delta: 3,
                    field: 1,
                },
                StepSpec::InsertHeap {
                    table: 3,
                    row: vec![
                        FieldRef::Var(2),
                        FieldRef::Var(1),
                        FieldRef::Var(0),
                        FieldRef::Var(3),
                    ],
                },
            ],
        }],
        mix: vec![(100, XctTypeId(0))],
    }
}

/// TATP: the telecom benchmark — seven short transaction types over four
/// tables, ~80% read (35% GetSubscriberData + 10% GetNewDestination +
/// 35% GetAccessData).
///
/// Per subscriber: 4 access-info rows (`sub*4 + type`), 4
/// special-facility rows (same key shape), and one call-forwarding row at
/// slot 0 of each facility (`facility_key * 8 + slot`, slots 0–3).
/// InsertCallForwarding and DeleteCallForwarding churn the remaining
/// slots against each other at 2% of the mix apiece.
///
/// The paper-relevant property: transactions are 1–3 operations long
/// (vs TPC-C's 10–50), so the begin/commit/log/lock wrapper dominates the
/// instruction stream — the short-transaction regime where
/// instruction-chasing margins thin.
pub fn tatp_spec(subscribers: u64) -> WorkloadSpec {
    use FieldInit::{Const, Key};
    use KeyDist::Uniform;
    let sub_key = VarSpec::Key {
        table: 0,
        dist: Uniform,
    };
    // facility key = subscriber * 4 + type, types 0..4.
    let facility_of = |parent| VarSpec::ChildKey {
        parent,
        per: 4,
        stride: 4,
        step: 1,
        dist: Uniform,
    };
    // call-forwarding key = facility key * 8 + slot, slots 0..4.
    let slot_of = |parent| VarSpec::ChildKey {
        parent,
        per: 4,
        stride: 8,
        step: 1,
        dist: Uniform,
    };
    WorkloadSpec {
        name: "TATP",
        groups: subscribers,
        tables: vec![
            TableSpec {
                name: "subscriber",
                row_bytes: 100,
                indexed: true,
                per_group: 1,
                stride: 1,
                step: 1,
                init: vec![Key, Const(0)],
            },
            TableSpec {
                name: "access_info",
                row_bytes: 80,
                indexed: true,
                per_group: 4,
                stride: 4,
                step: 1,
                init: vec![Key, Const(0)],
            },
            TableSpec {
                name: "special_facility",
                row_bytes: 60,
                indexed: true,
                per_group: 4,
                stride: 4,
                step: 1,
                init: vec![Key, Const(0)],
            },
            TableSpec {
                name: "call_forwarding",
                row_bytes: 60,
                indexed: true,
                per_group: 4,
                stride: 32,
                step: 8,
                init: vec![Key, Const(0)],
            },
        ],
        xcts: vec![
            XctSpec {
                name: "GetSubscriberData",
                vars: vec![sub_key],
                steps: vec![StepSpec::ProbeByKey { table: 0, key: 0 }],
            },
            XctSpec {
                name: "GetNewDestination",
                vars: vec![
                    sub_key,
                    facility_of(0),
                    VarSpec::Derived {
                        of: 1,
                        mul: 8,
                        add: 0,
                    },
                ],
                steps: vec![
                    StepSpec::ProbeByKey { table: 2, key: 1 },
                    StepSpec::RangeScan {
                        table: 3,
                        start: 2,
                        span: 4,
                    },
                ],
            },
            XctSpec {
                name: "GetAccessData",
                vars: vec![sub_key, facility_of(0)],
                steps: vec![StepSpec::ProbeByKey { table: 1, key: 1 }],
            },
            XctSpec {
                name: "UpdateSubscriberData",
                vars: vec![
                    sub_key,
                    facility_of(0),
                    VarSpec::DeltaI64 { lo: -50, hi: 50 },
                ],
                steps: vec![
                    StepSpec::UpdateRow {
                        table: 0,
                        key: 0,
                        delta: 2,
                        field: 1,
                    },
                    StepSpec::UpdateRow {
                        table: 2,
                        key: 1,
                        delta: 2,
                        field: 1,
                    },
                ],
            },
            XctSpec {
                name: "UpdateLocation",
                vars: vec![sub_key, VarSpec::DeltaI64 { lo: 1, hi: 1 << 16 }],
                steps: vec![StepSpec::UpdateRow {
                    table: 0,
                    key: 0,
                    delta: 1,
                    field: 1,
                }],
            },
            XctSpec {
                name: "InsertCallForwarding",
                vars: vec![sub_key, facility_of(0), slot_of(1)],
                steps: vec![
                    StepSpec::ProbeByKey { table: 2, key: 1 },
                    StepSpec::InsertIndexed {
                        table: 3,
                        key: 2,
                        row: vec![FieldRef::Var(2), FieldRef::Var(0)],
                    },
                ],
            },
            XctSpec {
                name: "DeleteCallForwarding",
                vars: vec![sub_key, facility_of(0), slot_of(1)],
                steps: vec![
                    StepSpec::ProbeByKey { table: 2, key: 1 },
                    StepSpec::DeleteRow { table: 3, key: 2 },
                ],
            },
        ],
        mix: vec![
            (35, XctTypeId(0)),
            (45, XctTypeId(1)),
            (80, XctTypeId(2)),
            (82, XctTypeId(3)),
            (96, XctTypeId(4)),
            (98, XctTypeId(5)),
            (100, XctTypeId(6)),
        ],
    }
}

/// The two YCSB-style mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// YCSB-A: 50% read / 50% read-modify-write.
    A,
    /// YCSB-B: 95% read / 5% read-modify-write.
    B,
}

/// YCSB-A/B-style key-value loops: one table, one operation per
/// transaction, Zipfian keys at YCSB's default skew (theta 0.99).
///
/// The paper-relevant properties: instruction overlap is *total* (every
/// transaction of a type walks the identical probe or probe+update path —
/// the opposite extreme from TPC-E's ten-type mix), and the Zipfian hot
/// set concentrates data accesses, breaking the TPC mixes' ≤6%
/// data-overlap property from the other side.
pub fn ycsb_spec(mix: YcsbMix, rows: u64) -> WorkloadSpec {
    use FieldInit::{Const, Key};
    let zipf = VarSpec::Key {
        table: 0,
        dist: KeyDist::Zipfian { theta: 0.99 },
    };
    let (name, read_pct) = match mix {
        YcsbMix::A => ("YCSB-A", 50),
        YcsbMix::B => ("YCSB-B", 95),
    };
    WorkloadSpec {
        name,
        groups: rows,
        tables: vec![TableSpec {
            name: "usertable",
            row_bytes: 200,
            indexed: true,
            per_group: 1,
            stride: 1,
            step: 1,
            init: vec![Key, Const(0)],
        }],
        xcts: vec![
            XctSpec {
                name: "Read",
                vars: vec![zipf],
                steps: vec![StepSpec::ProbeByKey { table: 0, key: 0 }],
            },
            XctSpec {
                name: "Update",
                vars: vec![
                    zipf,
                    VarSpec::DeltaI64 {
                        lo: -1_000,
                        hi: 1_000,
                    },
                ],
                steps: vec![StepSpec::UpdateRow {
                    table: 0,
                    key: 0,
                    delta: 1,
                    field: 1,
                }],
            },
        ],
        mix: vec![(read_pct, XctTypeId(0)), (100, XctTypeId(1))],
    }
}

/// Default (figure-binary) scales. Sized like the TPC defaults: large
/// enough that uniform-key transactions rarely share record/leaf blocks,
/// small enough that population stays a setup cost, not the experiment.
pub const TATP_SUBSCRIBERS: u64 = 10_000;
/// Default YCSB table size.
pub const YCSB_ROWS: u64 = 40_000;
/// Test-scale knobs (`setup_small`).
pub const TATP_SUBSCRIBERS_SMALL: u64 = 64;
/// Test-scale YCSB table size.
pub const YCSB_ROWS_SMALL: u64 = 400;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_of_rank_matches_population_layout() {
        let spec = tatp_spec(8);
        // call_forwarding: per_group 4, stride 32, step 8 — rank r maps to
        // (sub*4 + facility) * 8.
        let cf = &spec.tables[3];
        assert_eq!(cf.key_of_rank(0), 0);
        assert_eq!(cf.key_of_rank(1), 8);
        assert_eq!(cf.key_of_rank(4), 32);
        assert_eq!(cf.key_of_rank(5), 40);
        // Dense tables are the identity.
        let sub = &spec.tables[0];
        assert_eq!(sub.key_of_rank(7), 7);
    }

    #[test]
    fn zipf_ranks_are_in_range_and_skewed() {
        let z = Zipf::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1_000];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1_000);
            counts[r as usize] += 1;
        }
        // Rank 0 is the hottest and far above the uniform expectation (20).
        assert!(counts[0] > 2_000, "rank 0 drawn {} times", counts[0]);
        assert!(counts[0] > counts[10]);
        assert!(
            counts[10] >= counts[500],
            "{} vs {}",
            counts[10],
            counts[500]
        );
    }

    #[test]
    fn zipf_tiny_spaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let z1 = Zipf::new(1, 0.99);
        for _ in 0..50 {
            assert_eq!(z1.sample(&mut rng), 0);
        }
        let z2 = Zipf::new(2, 0.99);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[z2.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn tatp_setup_populates_all_tables() {
        let (e, w) = SpecRunner::setup(tatp_spec(16));
        let c = e.catalog();
        let rows = |i: usize| c.table(w.handles[i].table).unwrap().heap.n_records() as u64;
        assert_eq!(rows(0), 16);
        assert_eq!(rows(1), 64);
        assert_eq!(rows(2), 64);
        assert_eq!(rows(3), 64);
        assert_eq!(
            w.xct_type_names(),
            [
                "GetSubscriberData",
                "GetNewDestination",
                "GetAccessData",
                "UpdateSubscriberData",
                "UpdateLocation",
                "InsertCallForwarding",
                "DeleteCallForwarding"
            ]
        );
    }

    #[test]
    fn tatp_mix_runs_clean_and_is_mostly_reads() {
        let (mut e, mut w) = SpecRunner::setup(tatp_spec(TATP_SUBSCRIBERS_SMALL));
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 7];
        for _ in 0..1_000 {
            let ty = w.run_one(&mut e, &mut rng).unwrap();
            counts[ty.0 as usize] += 1;
        }
        assert_eq!(e.take_traces().len(), 1_000);
        // Read-only types 0/1/2 are ~80% of the mix.
        let reads = counts[0] + counts[1] + counts[2];
        assert!(
            (720..880).contains(&reads),
            "read count {reads}: {counts:?}"
        );
        // The churn pair actually fired.
        assert!(counts[5] > 0 && counts[6] > 0, "{counts:?}");
    }

    #[test]
    fn tatp_call_forwarding_churn_survives() {
        // Run long enough that inserts collide with live rows and deletes
        // hit missing rows: both must be clean no-ops.
        let (mut e, mut w) = SpecRunner::setup(tatp_spec(4));
        let cf_table = w.handles[3].table;
        let before = e.catalog().table(cf_table).unwrap().heap.n_records();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..600 {
            w.run_one(&mut e, &mut rng).unwrap();
        }
        let after = e.catalog().table(cf_table).unwrap().heap.n_records();
        // 4 subscribers x 16 slots bounds the live set.
        assert!(after <= 64, "{after} call-forwarding rows");
        assert_ne!(before, after, "churn never changed the table");
    }

    #[test]
    fn ycsb_transactions_are_single_op() {
        // (The Zipfian hot-key concentration property is asserted against
        // real data-block access counts in tests/spec_equivalence.rs.)
        let (mut e, mut w) = SpecRunner::setup(ycsb_spec(YcsbMix::A, YCSB_ROWS_SMALL));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            w.run_one(&mut e, &mut rng).unwrap();
        }
        let traces = e.take_traces();
        assert_eq!(traces.len(), 300);
        // One logical operation per transaction (an update is the
        // probe+update pair).
        for t in &traces {
            let n_ops = t.op_slices().len();
            assert!(n_ops <= 2, "YCSB transaction ran {n_ops} ops");
        }
    }

    #[test]
    fn ycsb_b_is_read_heavy() {
        let (mut e, mut w) = SpecRunner::setup(ycsb_spec(YcsbMix::B, YCSB_ROWS_SMALL));
        let mut rng = StdRng::seed_from_u64(2);
        let mut updates = 0;
        for _ in 0..400 {
            if w.run_one(&mut e, &mut rng).unwrap() == XctTypeId(1) {
                updates += 1;
            }
        }
        assert!((5..50).contains(&updates), "{updates} updates of 400");
    }

    #[test]
    fn spec_runs_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let (mut e, mut w) = SpecRunner::setup(tatp_spec(TATP_SUBSCRIBERS_SMALL));
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                w.run_one(&mut e, &mut rng).unwrap();
            }
            e.take_traces()
        };
        let (a, b, c) = (run(9), run(9), run(10));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "same seed diverged");
        }
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.events != y.events),
            "different seeds should differ"
        );
    }

    #[test]
    #[should_panic(expected = "mix must end at 100")]
    fn malformed_mix_rejected() {
        let mut spec = ycsb_spec(YcsbMix::A, 10);
        spec.mix = vec![(50, XctTypeId(0)), (90, XctTypeId(1))];
        let _ = SpecRunner::setup(spec);
    }

    #[test]
    #[should_panic(expected = "zero-span range scan")]
    fn zero_span_scan_rejected() {
        // span 0 would underflow `lo + span - 1` at run time and scan the
        // whole table; validate() must refuse it up front.
        let mut spec = tatp_spec(4);
        spec.xcts[1].steps[1] = StepSpec::RangeScan {
            table: 3,
            start: 2,
            span: 0,
        };
        let _ = SpecRunner::setup(spec);
    }

    #[test]
    #[should_panic(expected = "bad step table")]
    fn out_of_range_step_table_named_in_diagnostic() {
        let mut spec = ycsb_spec(YcsbMix::A, 10);
        spec.xcts[0].steps[0] = StepSpec::ProbeByKey { table: 9, key: 0 };
        let _ = SpecRunner::setup(spec);
    }
}
