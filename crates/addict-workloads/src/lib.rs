//! # addict-workloads
//!
//! The three TPC OLTP benchmarks the paper characterizes and evaluates on
//! (Section 4.1): TPC-B, TPC-C, and TPC-E, implemented against the
//! `addict-storage` engine.
//!
//! Each benchmark follows the paper's usage:
//!
//! * **TPC-B** ([`tpcb`]) — a single transaction type, `AccountUpdate`,
//!   which probes/updates account, teller, and branch rows and inserts into
//!   the index-less History table (the source of the `allocate page`
//!   variety Section 2.2.1 discusses).
//! * **TPC-C** ([`tpcc`]) — the five-transaction mix at the standard
//!   45/43/4/4/4 ratios; `NewOrder` inserts into indexed tables (the
//!   `create index entry` path), `Payment` inserts into the index-less
//!   History table, `Delivery` exercises `delete tuple`.
//! * **TPC-E** ([`tpce`]) — a simplified ten-type mix, ~77% read-only,
//!   with `TradeStatus` the most frequent type at 19%, matching the mix
//!   skew the paper attributes TPC-E's lower whole-mix overlap to.
//!
//! Scale factors are configurable; the defaults populate databases large
//! enough that two transactions rarely touch the same record/leaf blocks
//! (the property that drives the paper's ≤6% data overlap) while keeping
//! population fast. Transaction streams are deterministic given a seed.

pub mod rows;
pub mod tpcb;
pub mod tpcc;
pub mod tpce;

use addict_storage::{Engine, StorageResult};
use addict_trace::{InternedTrace, SlicePool, WorkloadTrace, XctTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A benchmark that can execute one transaction from its mix.
pub trait WorkloadRunner {
    /// Benchmark name ("TPC-B", "TPC-C", "TPC-E").
    fn name(&self) -> &'static str;

    /// Names of the transaction types, indexed by [`XctTypeId`].
    fn xct_type_names(&self) -> Vec<String>;

    /// Execute one transaction drawn from the benchmark mix. Returns the
    /// type executed.
    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId>;
}

/// The three benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// TPC-B.
    TpcB,
    /// TPC-C.
    TpcC,
    /// TPC-E.
    TpcE,
}

impl Benchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 3] = [Benchmark::TpcB, Benchmark::TpcC, Benchmark::TpcE];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpcB => "TPC-B",
            Benchmark::TpcC => "TPC-C",
            Benchmark::TpcE => "TPC-E",
        }
    }

    /// Build and populate the benchmark at its default (paper-shaped)
    /// scale, returning the engine and a runner.
    pub fn setup(self) -> (Engine, Box<dyn WorkloadRunner>) {
        match self {
            Benchmark::TpcB => {
                let (e, w) = tpcb::TpcB::setup(tpcb::TpcBConfig::default());
                (e, Box::new(w))
            }
            Benchmark::TpcC => {
                let (e, w) = tpcc::TpcC::setup(tpcc::TpcCConfig::default());
                (e, Box::new(w))
            }
            Benchmark::TpcE => {
                let (e, w) = tpce::TpcE::setup(tpce::TpcEConfig::default());
                (e, Box::new(w))
            }
        }
    }

    /// Build at a reduced scale for fast tests.
    pub fn setup_small(self) -> (Engine, Box<dyn WorkloadRunner>) {
        match self {
            Benchmark::TpcB => {
                let (e, w) = tpcb::TpcB::setup(tpcb::TpcBConfig::small());
                (e, Box::new(w))
            }
            Benchmark::TpcC => {
                let (e, w) = tpcc::TpcC::setup(tpcc::TpcCConfig::small());
                (e, Box::new(w))
            }
            Benchmark::TpcE => {
                let (e, w) = tpce::TpcE::setup(tpce::TpcEConfig::small());
                (e, Box::new(w))
            }
        }
    }
}

// Thread-safety audit: sweep grids carry `Benchmark` tags across worker
// threads (trace *generation* stays on one thread; `Engine` and the
// runners are deliberately not part of this contract).
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<Benchmark>();
};

/// Run `n` transactions of the mix and collect their traces.
///
/// The engine's recorder must be enabled (it is after `setup`). The run is
/// deterministic in `seed`.
pub fn collect_traces(
    engine: &mut Engine,
    workload: &mut dyn WorkloadRunner,
    n: usize,
    seed: u64,
) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        workload
            .run_one(engine, &mut rng)
            .unwrap_or_else(|e| panic!("transaction {i} of {} failed: {e}", workload.name()));
    }
    WorkloadTrace {
        name: workload.name().to_owned(),
        xct_type_names: workload.xct_type_names(),
        xcts: engine.take_traces(),
    }
}

/// Run `n` transactions of the mix and intern their traces into `pool`
/// **as they complete**: each transaction's flat trace is drained from the
/// recorder and interned immediately, so the uncompressed trace set never
/// materializes — memory stays bounded by one transaction plus the
/// deduplicated pool, however large `n` grows.
///
/// Bit-identical to `collect_traces` followed by
/// [`InternedTrace::intern`] over each trace (same traces, same order,
/// same pool layout); deterministic in `seed`. Several collections
/// (profile + eval) may intern into one shared pool.
pub fn collect_traces_interned(
    engine: &mut Engine,
    workload: &mut dyn WorkloadRunner,
    n: usize,
    seed: u64,
    pool: &mut SlicePool,
) -> Vec<InternedTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xcts = Vec::with_capacity(n);
    for i in 0..n {
        workload
            .run_one(engine, &mut rng)
            .unwrap_or_else(|e| panic!("transaction {i} of {} failed: {e}", workload.name()));
        for trace in engine.take_traces() {
            xcts.push(InternedTrace::intern(&trace, pool));
        }
    }
    xcts
}

/// Draw a transaction type from a cumulative-percentage mix table.
pub(crate) fn pick_mix(rng: &mut StdRng, cumulative: &[(u32, XctTypeId)]) -> XctTypeId {
    use rand::Rng;
    let p = rng.gen_range(0..100u32);
    for &(threshold, ty) in cumulative {
        if p < threshold {
            return ty;
        }
    }
    cumulative.last().expect("mix table non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::TpcB.name(), "TPC-B");
        assert_eq!(Benchmark::ALL.len(), 3);
    }

    #[test]
    fn pick_mix_respects_thresholds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = [
            (45u32, XctTypeId(0)),
            (88, XctTypeId(1)),
            (100, XctTypeId(2)),
        ];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[pick_mix(&mut rng, &mix).0 as usize] += 1;
        }
        // Roughly 45 / 43 / 12.
        assert!((4000..5000).contains(&counts[0]), "{counts:?}");
        assert!((3800..4800).contains(&counts[1]), "{counts:?}");
        assert!((800..1600).contains(&counts[2]), "{counts:?}");
    }
}
