//! # addict-workloads
//!
//! The benchmarks the reproduction characterizes and evaluates on: the
//! paper's three TPC OLTP mixes (Section 4.1) plus two spec-driven mixes
//! probing where ADDICT's instruction-chasing wins degrade.
//!
//! The handwritten paper trio:
//!
//! * **TPC-B** ([`tpcb`]) — a single transaction type, `AccountUpdate`,
//!   which probes/updates account, teller, and branch rows and inserts into
//!   the index-less History table (the source of the `allocate page`
//!   variety Section 2.2.1 discusses).
//! * **TPC-C** ([`tpcc`]) — the five-transaction mix at the standard
//!   45/43/4/4/4 ratios; `NewOrder` inserts into indexed tables (the
//!   `create index entry` path), `Payment` inserts into the index-less
//!   History table, `Delivery` exercises `delete tuple`.
//! * **TPC-E** ([`tpce`]) — a simplified ten-type mix, ~77% read-only,
//!   with `TradeStatus` the most frequent type at 19%, matching the mix
//!   skew the paper attributes TPC-E's lower whole-mix overlap to.
//!
//! The [`spec`] module turns benchmarks into *data*: a declarative
//! [`WorkloadSpec`](spec::WorkloadSpec) (tables, typed transaction steps,
//! and a mix table) interpreted by [`SpecRunner`](spec::SpecRunner) —
//! proven faithful by a bit-for-bit TPC-B equivalence test — and two
//! spec-driven registry entries:
//!
//! * **TATP** ([`spec::tatp_spec`]) — seven short telecom transactions,
//!   ~80% read: the short-transaction regime where the per-transaction
//!   wrapper dominates the instruction stream.
//! * **YCSB-A / YCSB-B** ([`spec::ycsb_spec`]) — one-operation key-value
//!   transactions with Zipfian keys: total instruction overlap, skewed
//!   data overlap.
//!
//! Scale factors are configurable; the defaults populate databases large
//! enough that two transactions rarely touch the same record/leaf blocks
//! (the property that drives the paper's ≤6% data overlap) while keeping
//! population fast. Transaction streams are deterministic given a seed.

pub mod rows;
pub mod spec;
pub mod tpcb;
pub mod tpcc;
pub mod tpce;

use addict_storage::{Engine, StorageResult};
use addict_trace::{InternedTrace, SlicePool, WorkloadTrace, XctTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A benchmark that can execute one transaction from its mix.
pub trait WorkloadRunner {
    /// Benchmark name ("TPC-B", "TPC-C", "TPC-E").
    fn name(&self) -> &'static str;

    /// Names of the transaction types, indexed by [`XctTypeId`].
    fn xct_type_names(&self) -> Vec<String>;

    /// Execute one transaction drawn from the benchmark mix. Returns the
    /// type executed.
    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId>;
}

/// The benchmark registry: the paper's TPC trio plus the spec-driven
/// mixes. Every consumer — figure binaries, sweep grids, parallel
/// generation, Algorithm 1 profiling — speaks this enum, so adding an
/// entry here threads a workload through the whole harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// TPC-B.
    TpcB,
    /// TPC-C.
    TpcC,
    /// TPC-E.
    TpcE,
    /// TATP (spec-driven): seven short telecom transactions, ~80% read.
    Tatp,
    /// YCSB-A style (spec-driven): 50/50 Zipfian read/update.
    YcsbA,
    /// YCSB-B style (spec-driven): 95/5 Zipfian read/update.
    YcsbB,
}

impl Benchmark {
    /// Every registered benchmark: the paper trio first (the order its
    /// figures list them), then the spec-driven mixes.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::TpcB,
        Benchmark::TpcC,
        Benchmark::TpcE,
        Benchmark::Tatp,
        Benchmark::YcsbA,
        Benchmark::YcsbB,
    ];

    /// Display name (round-trips through [`FromStr`](std::str::FromStr)).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpcB => "TPC-B",
            Benchmark::TpcC => "TPC-C",
            Benchmark::TpcE => "TPC-E",
            Benchmark::Tatp => "TATP",
            Benchmark::YcsbA => "YCSB-A",
            Benchmark::YcsbB => "YCSB-B",
        }
    }

    /// Canonical lowercase token for serialized forms — job specs,
    /// `--benchmarks` lists, trace-pool cache keys. Round-trips through
    /// [`FromStr`](std::str::FromStr) (which also accepts the dashed
    /// display names).
    pub fn id(self) -> &'static str {
        match self {
            Benchmark::TpcB => "tpcb",
            Benchmark::TpcC => "tpcc",
            Benchmark::TpcE => "tpce",
            Benchmark::Tatp => "tatp",
            Benchmark::YcsbA => "ycsba",
            Benchmark::YcsbB => "ycsbb",
        }
    }

    /// Build and populate the benchmark at its default (paper-shaped)
    /// scale, returning the engine and a runner.
    pub fn setup(self) -> (Engine, Box<dyn WorkloadRunner>) {
        match self {
            Benchmark::TpcB => {
                let (e, w) = tpcb::TpcB::setup(tpcb::TpcBConfig::default());
                (e, Box::new(w))
            }
            Benchmark::TpcC => {
                let (e, w) = tpcc::TpcC::setup(tpcc::TpcCConfig::default());
                (e, Box::new(w))
            }
            Benchmark::TpcE => {
                let (e, w) = tpce::TpcE::setup(tpce::TpcEConfig::default());
                (e, Box::new(w))
            }
            Benchmark::Tatp => {
                let (e, w) = spec::SpecRunner::setup(spec::tatp_spec(spec::TATP_SUBSCRIBERS));
                (e, Box::new(w))
            }
            Benchmark::YcsbA => {
                let (e, w) =
                    spec::SpecRunner::setup(spec::ycsb_spec(spec::YcsbMix::A, spec::YCSB_ROWS));
                (e, Box::new(w))
            }
            Benchmark::YcsbB => {
                let (e, w) =
                    spec::SpecRunner::setup(spec::ycsb_spec(spec::YcsbMix::B, spec::YCSB_ROWS));
                (e, Box::new(w))
            }
        }
    }

    /// Build at a reduced scale for fast tests.
    pub fn setup_small(self) -> (Engine, Box<dyn WorkloadRunner>) {
        match self {
            Benchmark::TpcB => {
                let (e, w) = tpcb::TpcB::setup(tpcb::TpcBConfig::small());
                (e, Box::new(w))
            }
            Benchmark::TpcC => {
                let (e, w) = tpcc::TpcC::setup(tpcc::TpcCConfig::small());
                (e, Box::new(w))
            }
            Benchmark::TpcE => {
                let (e, w) = tpce::TpcE::setup(tpce::TpcEConfig::small());
                (e, Box::new(w))
            }
            Benchmark::Tatp => {
                let (e, w) = spec::SpecRunner::setup(spec::tatp_spec(spec::TATP_SUBSCRIBERS_SMALL));
                (e, Box::new(w))
            }
            Benchmark::YcsbA => {
                let (e, w) = spec::SpecRunner::setup(spec::ycsb_spec(
                    spec::YcsbMix::A,
                    spec::YCSB_ROWS_SMALL,
                ));
                (e, Box::new(w))
            }
            Benchmark::YcsbB => {
                let (e, w) = spec::SpecRunner::setup(spec::ycsb_spec(
                    spec::YcsbMix::B,
                    spec::YCSB_ROWS_SMALL,
                ));
                (e, Box::new(w))
            }
        }
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    /// Case-insensitive parse of a benchmark name; dashes are optional
    /// (`TPC-B`, `tpcb`, and `tpc-b` all resolve).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| {
                b.name()
                    .chars()
                    .filter(|c| *c != '-')
                    .collect::<String>()
                    .to_ascii_lowercase()
                    == canon
            })
            .ok_or_else(|| {
                let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                format!(
                    "unknown benchmark {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

// Thread-safety audit: sweep grids carry `Benchmark` tags across worker
// threads (trace *generation* stays on one thread; `Engine` and the
// runners are deliberately not part of this contract).
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<Benchmark>();
};

/// Run `n` transactions of the mix and collect their traces.
///
/// The engine's recorder must be enabled (it is after `setup`). The run is
/// deterministic in `seed`.
pub fn collect_traces(
    engine: &mut Engine,
    workload: &mut dyn WorkloadRunner,
    n: usize,
    seed: u64,
) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        workload
            .run_one(engine, &mut rng)
            .unwrap_or_else(|e| panic!("transaction {i} of {} failed: {e}", workload.name()));
    }
    WorkloadTrace {
        name: workload.name().to_owned(),
        xct_type_names: workload.xct_type_names(),
        xcts: engine.take_traces(),
    }
}

/// Run `n` transactions of the mix and intern their traces into `pool`
/// **as they complete**: each transaction's flat trace is drained from the
/// recorder and interned immediately, so the uncompressed trace set never
/// materializes — memory stays bounded by one transaction plus the
/// deduplicated pool, however large `n` grows.
///
/// Bit-identical to `collect_traces` followed by
/// [`InternedTrace::intern`] over each trace (same traces, same order,
/// same pool layout); deterministic in `seed`. Several collections
/// (profile + eval) may intern into one shared pool.
pub fn collect_traces_interned(
    engine: &mut Engine,
    workload: &mut dyn WorkloadRunner,
    n: usize,
    seed: u64,
    pool: &mut SlicePool,
) -> Vec<InternedTrace> {
    collect_traces_interned_chunked(engine, workload, n, seed, pool, 1)
}

/// [`collect_traces_interned`] with an explicit drain granularity: run
/// `chunk` transactions, drain their flat traces from the recorder,
/// intern them, repeat. Peak flat-trace memory is bounded by one chunk;
/// larger chunks amortize the recorder drain, `chunk == 0` means "drain
/// once at the end" (the unbounded batch shape, for comparison runs).
///
/// The traces, their order, and the resulting pool layout are
/// **independent of `chunk`** — transactions run and intern in the same
/// order regardless of how the drains are batched (asserted by
/// `gen_determinism`'s chunk-invariance test). Deterministic in `seed`.
pub fn collect_traces_interned_chunked(
    engine: &mut Engine,
    workload: &mut dyn WorkloadRunner,
    n: usize,
    seed: u64,
    pool: &mut SlicePool,
    chunk: usize,
) -> Vec<InternedTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xcts = Vec::with_capacity(n);
    let mut pending = 0usize;
    for i in 0..n {
        workload
            .run_one(engine, &mut rng)
            .unwrap_or_else(|e| panic!("transaction {i} of {} failed: {e}", workload.name()));
        pending += 1;
        if pending == chunk {
            for trace in engine.take_traces() {
                xcts.push(InternedTrace::intern(&trace, pool));
            }
            pending = 0;
        }
    }
    if pending > 0 {
        for trace in engine.take_traces() {
            xcts.push(InternedTrace::intern(&trace, pool));
        }
    }
    xcts
}

/// Draw a transaction type from a cumulative-percentage mix table.
pub(crate) fn pick_mix(rng: &mut StdRng, cumulative: &[(u32, XctTypeId)]) -> XctTypeId {
    use rand::Rng;
    let p = rng.gen_range(0..100u32);
    for &(threshold, ty) in cumulative {
        if p < threshold {
            return ty;
        }
    }
    cumulative.last().expect("mix table non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::TpcB.name(), "TPC-B");
        assert_eq!(Benchmark::Tatp.name(), "TATP");
        assert_eq!(Benchmark::YcsbA.name(), "YCSB-A");
        assert_eq!(Benchmark::ALL.len(), 6);
    }

    #[test]
    fn benchmark_ids_round_trip() {
        // The serialized-form contract: every canonical id parses back to
        // its variant, and ids are distinct lowercase tokens.
        for b in Benchmark::ALL {
            assert_eq!(b.id().parse::<Benchmark>().unwrap(), b);
            assert_eq!(b.id(), b.id().to_ascii_lowercase());
        }
        let mut ids: Vec<&str> = Benchmark::ALL.iter().map(|b| b.id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), Benchmark::ALL.len());
    }

    #[test]
    fn benchmark_name_parse_round_trips() {
        // The --benchmarks flag contract: every display name parses back
        // to its variant, case-insensitively, with or without dashes.
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
            assert_eq!(b.name().to_lowercase().parse::<Benchmark>().unwrap(), b);
            assert_eq!(
                b.name().replace('-', "").parse::<Benchmark>().unwrap(),
                b,
                "dashless form of {} must parse",
                b.name()
            );
        }
        assert_eq!("tatp".parse::<Benchmark>().unwrap(), Benchmark::Tatp);
        assert_eq!("ycsb-b".parse::<Benchmark>().unwrap(), Benchmark::YcsbB);
        let err = "tpcd".parse::<Benchmark>().unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
        assert!(
            err.contains("TPC-B"),
            "error should list valid names: {err}"
        );
    }

    #[test]
    fn pick_mix_respects_thresholds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = [
            (45u32, XctTypeId(0)),
            (88, XctTypeId(1)),
            (100, XctTypeId(2)),
        ];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[pick_mix(&mut rng, &mix).0 as usize] += 1;
        }
        // Roughly 45 / 43 / 12.
        assert!((4000..5000).contains(&counts[0]), "{counts:?}");
        assert!((3800..4800).contains(&counts[1]), "{counts:?}");
        assert!((800..1600).contains(&counts[2]), "{counts:?}");
    }
}
