//! TPC-E: the brokerage benchmark, simplified to a ten-type mix over nine
//! tables.
//!
//! The paper's relevant properties are preserved (Section 2.2.1):
//!
//! * ten transaction types at the spec's mix percentages — twice TPC-C's
//!   type count, which is why whole-mix instruction overlap is lower for
//!   TPC-E than for the other benchmarks;
//! * ~77% of the mix is read-only;
//! * `TradeStatus` is the most frequent type at 19% of the mix.
//!
//! Each transaction is reduced to its probe/scan/update/insert skeleton on
//! our engine; business logic that adds no new storage-manager code paths
//! (pricing math, date arithmetic) is elided.

use std::collections::VecDeque;

use addict_storage::{Engine, EngineConfig, IndexId, StorageResult, TableId, XctId};
use addict_trace::XctTypeId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::rows::{encode_row, get_field, get_field_i64, set_field, set_field_i64};
use crate::{pick_mix, WorkloadRunner};

/// BrokerVolume (read-only).
pub const BROKER_VOLUME: XctTypeId = XctTypeId(0);
/// CustomerPosition (read-only).
pub const CUSTOMER_POSITION: XctTypeId = XctTypeId(1);
/// MarketFeed (read-write).
pub const MARKET_FEED: XctTypeId = XctTypeId(2);
/// MarketWatch (read-only).
pub const MARKET_WATCH: XctTypeId = XctTypeId(3);
/// SecurityDetail (read-only).
pub const SECURITY_DETAIL: XctTypeId = XctTypeId(4);
/// TradeLookup (read-only).
pub const TRADE_LOOKUP: XctTypeId = XctTypeId(5);
/// TradeOrder (read-write).
pub const TRADE_ORDER: XctTypeId = XctTypeId(6);
/// TradeResult (read-write).
pub const TRADE_RESULT: XctTypeId = XctTypeId(7);
/// TradeStatus (read-only, most frequent: 19%).
pub const TRADE_STATUS: XctTypeId = XctTypeId(8);
/// TradeUpdate (read-write).
pub const TRADE_UPDATE: XctTypeId = XctTypeId(9);

/// TPC-E scale configuration.
#[derive(Debug, Clone)]
pub struct TpcEConfig {
    /// Customers.
    pub customers: u64,
    /// Accounts per customer.
    pub accounts_per_customer: u64,
    /// Brokers.
    pub brokers: u64,
    /// Companies.
    pub companies: u64,
    /// Securities.
    pub securities: u64,
    /// Watch-list entries per customer.
    pub watch_per_customer: u64,
    /// Holdings per account.
    pub holdings_per_account: u64,
    /// Initial trades per account.
    pub trades_per_account: u64,
}

impl Default for TpcEConfig {
    fn default() -> Self {
        TpcEConfig {
            customers: 3_000,
            accounts_per_customer: 2,
            brokers: 50,
            companies: 300,
            securities: 1_000,
            watch_per_customer: 8,
            holdings_per_account: 4,
            trades_per_account: 8,
        }
    }
}

impl TpcEConfig {
    /// Tiny scale for unit tests.
    pub fn small() -> Self {
        TpcEConfig {
            customers: 40,
            accounts_per_customer: 2,
            brokers: 5,
            companies: 10,
            securities: 20,
            watch_per_customer: 4,
            holdings_per_account: 3,
            trades_per_account: 4,
        }
    }
}

// --- key packing -------------------------------------------------------

fn k_account_by_customer(c: u64, a: u64) -> u64 {
    (c << 20) | a
}

fn k_trade_by_account(a: u64, t: u64) -> u64 {
    debug_assert!(t < 1 << 28);
    (a << 28) | t
}

fn k_trade_history(t: u64, seq: u64) -> u64 {
    (t << 4) | seq
}

fn k_holding(a: u64, s: u64) -> u64 {
    (a << 16) | s
}

fn k_watch(c: u64, seq: u64) -> u64 {
    (c << 8) | seq
}

// --- row layouts -------------------------------------------------------

const CUST_ROW: usize = 200;
const ACCT_ROW: usize = 100;
const ACCT_BALANCE: usize = 3;
const BROKER_ROW: usize = 100;
const BROKER_TRADES: usize = 1;
const BROKER_COMMISSION: usize = 2;
const SEC_ROW: usize = 150;
const SEC_COMPANY: usize = 1;
const COMPANY_ROW: usize = 200;
const LT_ROW: usize = 50;
const LT_PRICE: usize = 1;
const LT_VOLUME: usize = 2;
const TRADE_ROW: usize = 120;
const TRADE_ACCT: usize = 1;
const TRADE_SEC: usize = 2;
const TRADE_STATUS_F: usize = 5;
const TH_ROW: usize = 50;
const HOLD_ROW: usize = 60;
const HOLD_QTY: usize = 2;
const WATCH_ROW: usize = 30;
const WATCH_SEC: usize = 2;

/// Table/index handles plus run state.
#[derive(Debug)]
pub struct TpcE {
    cfg: TpcEConfig,
    customer: TableId,
    customer_pk: IndexId,
    account: TableId,
    account_pk: IndexId,
    account_by_cust: IndexId,
    broker: TableId,
    broker_pk: IndexId,
    security: TableId,
    security_pk: IndexId,
    company: TableId,
    company_pk: IndexId,
    last_trade: TableId,
    last_trade_pk: IndexId,
    trade: TableId,
    trade_pk: IndexId,
    trade_by_acct: IndexId,
    trade_history: TableId,
    trade_history_pk: IndexId,
    holding: TableId,
    holding_pk: IndexId,
    watch_list: TableId,
    watch_pk: IndexId,
    next_trade: u64,
    /// Trades submitted by TradeOrder awaiting TradeResult: `(t, a, s)`.
    pending: VecDeque<(u64, u64, u64)>,
    mix: [(u32, XctTypeId); 10],
}

impl TpcE {
    /// Create the schema and populate (untraced).
    pub fn setup(cfg: TpcEConfig) -> (Engine, TpcE) {
        let mut e = Engine::new(EngineConfig::default());
        let customer = e.create_table("customer");
        let customer_pk = e.create_index(customer, "customer_pk").expect("exists");
        let account = e.create_table("account");
        let account_pk = e.create_index(account, "account_pk").expect("exists");
        let account_by_cust = e
            .create_index(account, "account_by_customer")
            .expect("exists");
        let broker = e.create_table("broker");
        let broker_pk = e.create_index(broker, "broker_pk").expect("exists");
        let security = e.create_table("security");
        let security_pk = e.create_index(security, "security_pk").expect("exists");
        let company = e.create_table("company");
        let company_pk = e.create_index(company, "company_pk").expect("exists");
        let last_trade = e.create_table("last_trade");
        let last_trade_pk = e.create_index(last_trade, "last_trade_pk").expect("exists");
        let trade = e.create_table("trade");
        let trade_pk = e.create_index(trade, "trade_pk").expect("exists");
        let trade_by_acct = e.create_index(trade, "trade_by_account").expect("exists");
        let trade_history = e.create_table("trade_history");
        let trade_history_pk = e
            .create_index(trade_history, "trade_history_pk")
            .expect("exists");
        let holding = e.create_table("holding");
        let holding_pk = e.create_index(holding, "holding_pk").expect("exists");
        let watch_list = e.create_table("watch_list");
        let watch_pk = e.create_index(watch_list, "watch_list_pk").expect("exists");

        let mut w = TpcE {
            cfg,
            customer,
            customer_pk,
            account,
            account_pk,
            account_by_cust,
            broker,
            broker_pk,
            security,
            security_pk,
            company,
            company_pk,
            last_trade,
            last_trade_pk,
            trade,
            trade_pk,
            trade_by_acct,
            trade_history,
            trade_history_pk,
            holding,
            holding_pk,
            watch_list,
            watch_pk,
            next_trade: 1,
            pending: VecDeque::new(),
            mix: [
                (5, BROKER_VOLUME),      // 4.9%
                (18, CUSTOMER_POSITION), // 13%
                (19, MARKET_FEED),       // 1%
                (37, MARKET_WATCH),      // 18%
                (51, SECURITY_DETAIL),   // 14%
                (59, TRADE_LOOKUP),      // 8%
                (69, TRADE_ORDER),       // 10.1%
                (79, TRADE_RESULT),      // 10%
                (98, TRADE_STATUS),      // 19%
                (100, TRADE_UPDATE),     // 2%
            ],
        };
        w.populate(&mut e);
        (e, w)
    }

    fn n_accounts(&self) -> u64 {
        self.cfg.customers * self.cfg.accounts_per_customer
    }

    fn populate(&mut self, e: &mut Engine) {
        e.set_tracing(false);
        let mut rng: StdRng = rand::SeedableRng::seed_from_u64(0xE);
        let x = e.begin(TRADE_STATUS);
        for co in 0..self.cfg.companies {
            e.insert_tuple(
                x,
                self.company,
                &[(self.company_pk, co)],
                &encode_row(COMPANY_ROW, &[co]),
            )
            .expect("populate company");
        }
        for s in 0..self.cfg.securities {
            let co = s % self.cfg.companies;
            e.insert_tuple(
                x,
                self.security,
                &[(self.security_pk, s)],
                &encode_row(SEC_ROW, &[s, co]),
            )
            .expect("populate security");
            e.insert_tuple(
                x,
                self.last_trade,
                &[(self.last_trade_pk, s)],
                &encode_row(LT_ROW, &[s, 1_000 + s % 500, 0]),
            )
            .expect("populate last_trade");
        }
        for b in 0..self.cfg.brokers {
            e.insert_tuple(
                x,
                self.broker,
                &[(self.broker_pk, b)],
                &encode_row(BROKER_ROW, &[b, 0, 0]),
            )
            .expect("populate broker");
        }
        for c in 0..self.cfg.customers {
            e.insert_tuple(
                x,
                self.customer,
                &[(self.customer_pk, c)],
                &encode_row(CUST_ROW, &[c, c % 3]),
            )
            .expect("populate customer");
            for seq in 0..self.cfg.watch_per_customer {
                let s = rng.gen_range(0..self.cfg.securities);
                e.insert_tuple(
                    x,
                    self.watch_list,
                    &[(self.watch_pk, k_watch(c, seq))],
                    &encode_row(WATCH_ROW, &[c, seq, s]),
                )
                .expect("populate watch list");
            }
            for a_local in 0..self.cfg.accounts_per_customer {
                let a = c * self.cfg.accounts_per_customer + a_local;
                let b = rng.gen_range(0..self.cfg.brokers);
                e.insert_tuple(
                    x,
                    self.account,
                    &[
                        (self.account_pk, a),
                        (self.account_by_cust, k_account_by_customer(c, a)),
                    ],
                    &encode_row(ACCT_ROW, &[a, c, b, 100_000]),
                )
                .expect("populate account");
                // Holdings over distinct securities.
                let mut held = Vec::new();
                while held.len() < self.cfg.holdings_per_account as usize {
                    let s = rng.gen_range(0..self.cfg.securities);
                    if !held.contains(&s) {
                        held.push(s);
                        e.insert_tuple(
                            x,
                            self.holding,
                            &[(self.holding_pk, k_holding(a, s))],
                            &encode_row(HOLD_ROW, &[a, s, rng.gen_range(10..500), 1_000]),
                        )
                        .expect("populate holding");
                    }
                }
                for _ in 0..self.cfg.trades_per_account {
                    let t = self.next_trade;
                    self.next_trade += 1;
                    let s = rng.gen_range(0..self.cfg.securities);
                    e.insert_tuple(
                        x,
                        self.trade,
                        &[
                            (self.trade_pk, t),
                            (self.trade_by_acct, k_trade_by_account(a, t)),
                        ],
                        &encode_row(TRADE_ROW, &[t, a, s, rng.gen_range(1..100), 1_000, 1]),
                    )
                    .expect("populate trade");
                    e.insert_tuple(
                        x,
                        self.trade_history,
                        &[(self.trade_history_pk, k_trade_history(t, 0))],
                        &encode_row(TH_ROW, &[t, 0, 1]),
                    )
                    .expect("populate trade history");
                }
            }
        }
        e.commit(x).expect("populate commit");
        e.set_tracing(true);
    }

    /// All trades of one account (helper used by several transactions).
    fn scan_account_trades(
        &self,
        e: &mut Engine,
        x: XctId,
        a: u64,
    ) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        let lo = k_trade_by_account(a, 0);
        let hi = k_trade_by_account(a, (1 << 28) - 1);
        e.index_scan(x, self.trade_by_acct, lo, true, hi, true)
    }

    /// TradeStatus: the most frequent type — account header + the last
    /// trades with their securities.
    pub fn trade_status(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let a = rng.gen_range(0..self.n_accounts());
        let x = e.begin(TRADE_STATUS);
        let acct = e
            .index_probe(x, self.account_pk, a)?
            .expect("account exists");
        let c = get_field(&acct, 1);
        let b = get_field(&acct, 2);
        e.index_probe(x, self.customer_pk, c)?
            .expect("customer exists");
        e.index_probe(x, self.broker_pk, b)?.expect("broker exists");
        let trades = self.scan_account_trades(e, x, a)?;
        for (_, t_row) in trades.iter().rev().take(10) {
            let s = get_field(t_row, TRADE_SEC);
            e.index_probe(x, self.security_pk, s)?
                .expect("security exists");
        }
        e.commit(x)
    }

    /// TradeOrder: submit a new trade.
    pub fn trade_order(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let a = rng.gen_range(0..self.n_accounts());
        let s = rng.gen_range(0..self.cfg.securities);
        let x = e.begin(TRADE_ORDER);
        let acct = e
            .index_probe(x, self.account_pk, a)?
            .expect("account exists");
        let c = get_field(&acct, 1);
        let b = get_field(&acct, 2);
        e.index_probe(x, self.customer_pk, c)?
            .expect("customer exists");
        e.index_probe(x, self.broker_pk, b)?.expect("broker exists");
        e.index_probe(x, self.security_pk, s)?
            .expect("security exists");
        let lt = e
            .index_probe(x, self.last_trade_pk, s)?
            .expect("last trade exists");
        let price = get_field(&lt, LT_PRICE);

        let t = self.next_trade;
        self.next_trade += 1;
        e.insert_tuple(
            x,
            self.trade,
            &[
                (self.trade_pk, t),
                (self.trade_by_acct, k_trade_by_account(a, t)),
            ],
            &encode_row(TRADE_ROW, &[t, a, s, rng.gen_range(1..100), price, 0]),
        )?;
        e.insert_tuple(
            x,
            self.trade_history,
            &[(self.trade_history_pk, k_trade_history(t, 0))],
            &encode_row(TH_ROW, &[t, 0, 0]),
        )?;
        self.pending.push_back((t, a, s));
        e.commit(x)
    }

    /// TradeResult: complete a pending trade.
    pub fn trade_result(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        // Complete a submitted trade if one exists, else re-settle a random
        // historical trade (keeps the mix runnable from a cold start).
        let (t, a, s) = match self.pending.pop_front() {
            Some(p) => p,
            None => {
                let a = rng.gen_range(0..self.n_accounts());
                let t = rng.gen_range(1..self.next_trade);
                let s = rng.gen_range(0..self.cfg.securities);
                (t, a, s)
            }
        };
        let x = e.begin(TRADE_RESULT);
        // Settle the trade row (it may not belong to `a` in the fallback
        // path; the row knows its own account).
        let Some(t_rid) = e.index_probe_rid(x, self.trade_pk, t)? else {
            return e.commit(x);
        };
        let mut t_row = e.peek(self.trade, t_rid)?;
        let a = if get_field(&t_row, TRADE_ACCT) != a {
            get_field(&t_row, TRADE_ACCT)
        } else {
            a
        };
        let s = if get_field(&t_row, TRADE_SEC) != s {
            get_field(&t_row, TRADE_SEC)
        } else {
            s
        };
        set_field(&mut t_row, TRADE_STATUS_F, 1);
        e.update_tuple(x, self.trade, t_rid, &t_row)?;
        e.insert_tuple(
            x,
            self.trade_history,
            &[(
                self.trade_history_pk,
                k_trade_history(t, rng.gen_range(1..16)),
            )],
            &encode_row(TH_ROW, &[t, 1, 1]),
        )?;
        // Adjust the holding (update if present, else create).
        let hold_key = k_holding(a, s);
        if let Some(h_rid) = e.index_probe_rid(x, self.holding_pk, hold_key)? {
            let mut h_row = e.peek(self.holding, h_rid)?;
            let new_val = get_field(&h_row, HOLD_QTY) + 10;
            set_field(&mut h_row, HOLD_QTY, new_val);
            e.update_tuple(x, self.holding, h_rid, &h_row)?;
        } else {
            e.insert_tuple(
                x,
                self.holding,
                &[(self.holding_pk, hold_key)],
                &encode_row(HOLD_ROW, &[a, s, 10, 1_000]),
            )?;
        }
        // Account balance and broker commission.
        let a_rid = e
            .index_probe_rid(x, self.account_pk, a)?
            .expect("account exists");
        let mut a_row = e.peek(self.account, a_rid)?;
        let new_val = get_field_i64(&a_row, ACCT_BALANCE) - 500;
        set_field_i64(&mut a_row, ACCT_BALANCE, new_val);
        let b = get_field(&a_row, 2);
        e.update_tuple(x, self.account, a_rid, &a_row)?;
        let b_rid = e
            .index_probe_rid(x, self.broker_pk, b)?
            .expect("broker exists");
        let mut b_row = e.peek(self.broker, b_rid)?;
        let new_val = get_field(&b_row, BROKER_TRADES) + 1;
        set_field(&mut b_row, BROKER_TRADES, new_val);
        let new_val = get_field(&b_row, BROKER_COMMISSION) + 5;
        set_field(&mut b_row, BROKER_COMMISSION, new_val);
        e.update_tuple(x, self.broker, b_rid, &b_row)?;
        e.commit(x)
    }

    /// MarketFeed: tick a handful of securities.
    pub fn market_feed(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let x = e.begin(MARKET_FEED);
        for _ in 0..5 {
            let s = rng.gen_range(0..self.cfg.securities);
            let rid = e
                .index_probe_rid(x, self.last_trade_pk, s)?
                .expect("last trade exists");
            let mut row = e.peek(self.last_trade, rid)?;
            let new_price = (get_field(&row, LT_PRICE) as i64 + rng.gen_range(-50i64..=50)).max(1);
            set_field(&mut row, LT_PRICE, new_price as u64);
            let new_val = get_field(&row, LT_VOLUME) + 100;
            set_field(&mut row, LT_VOLUME, new_val);
            e.update_tuple(x, self.last_trade, rid, &row)?;
        }
        e.commit(x)
    }

    /// MarketWatch: price-check a customer's watch list.
    pub fn market_watch(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let c = rng.gen_range(0..self.cfg.customers);
        let x = e.begin(MARKET_WATCH);
        let entries = e.index_scan(x, self.watch_pk, k_watch(c, 0), true, k_watch(c, 255), true)?;
        for (_, row) in entries.iter().take(10) {
            let s = get_field(row, WATCH_SEC);
            e.index_probe(x, self.last_trade_pk, s)?
                .expect("last trade exists");
        }
        e.commit(x)
    }

    /// SecurityDetail: a security, its company, its price, and peers.
    pub fn security_detail(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let s = rng.gen_range(0..self.cfg.securities);
        let x = e.begin(SECURITY_DETAIL);
        let sec = e
            .index_probe(x, self.security_pk, s)?
            .expect("security exists");
        let co = get_field(&sec, SEC_COMPANY);
        e.index_probe(x, self.company_pk, co)?
            .expect("company exists");
        e.index_probe(x, self.last_trade_pk, s)?
            .expect("last trade exists");
        for _ in 0..5 {
            let peer = rng.gen_range(0..self.cfg.securities);
            e.index_probe(x, self.last_trade_pk, peer)?
                .expect("last trade exists");
        }
        e.commit(x)
    }

    /// TradeLookup: history of a few trades of one account.
    pub fn trade_lookup(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let a = rng.gen_range(0..self.n_accounts());
        let x = e.begin(TRADE_LOOKUP);
        let trades = self.scan_account_trades(e, x, a)?;
        for (_, t_row) in trades.iter().take(3) {
            let t = get_field(t_row, 0);
            e.index_probe(x, self.trade_pk, t)?.expect("trade exists");
            e.index_scan(
                x,
                self.trade_history_pk,
                k_trade_history(t, 0),
                true,
                k_trade_history(t, 15),
                true,
            )?;
        }
        e.commit(x)
    }

    /// TradeUpdate: patch a few trades of one account.
    pub fn trade_update(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let a = rng.gen_range(0..self.n_accounts());
        let x = e.begin(TRADE_UPDATE);
        let trades = self.scan_account_trades(e, x, a)?;
        for (_, t_row) in trades.iter().take(3) {
            let t = get_field(t_row, 0);
            if let Some(rid) = e.index_probe_rid(x, self.trade_pk, t)? {
                let mut row = e.peek(self.trade, rid)?;
                set_field(&mut row, TRADE_STATUS_F, 2);
                e.update_tuple(x, self.trade, rid, &row)?;
            }
        }
        e.commit(x)
    }

    /// CustomerPosition: a customer's accounts, holdings, and prices.
    pub fn customer_position(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let c = rng.gen_range(0..self.cfg.customers);
        let x = e.begin(CUSTOMER_POSITION);
        e.index_probe(x, self.customer_pk, c)?
            .expect("customer exists");
        let accounts = e.index_scan(
            x,
            self.account_by_cust,
            k_account_by_customer(c, 0),
            true,
            k_account_by_customer(c, (1 << 20) - 1),
            true,
        )?;
        for (_, a_row) in accounts.iter().take(4) {
            let a = get_field(a_row, 0);
            let holdings = e.index_scan(
                x,
                self.holding_pk,
                k_holding(a, 0),
                true,
                k_holding(a, (1 << 16) - 1),
                true,
            )?;
            for (_, h_row) in holdings.iter().take(8) {
                let s = get_field(h_row, 1);
                e.index_probe(x, self.last_trade_pk, s)?
                    .expect("last trade exists");
            }
        }
        e.commit(x)
    }

    /// BrokerVolume: broker headers plus market prices.
    pub fn broker_volume(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let x = e.begin(BROKER_VOLUME);
        for _ in 0..5 {
            let b = rng.gen_range(0..self.cfg.brokers);
            e.index_probe(x, self.broker_pk, b)?.expect("broker exists");
            let s = rng.gen_range(0..self.cfg.securities);
            e.index_probe(x, self.last_trade_pk, s)?
                .expect("last trade exists");
        }
        e.commit(x)
    }

    /// The configured scale.
    pub fn config(&self) -> &TpcEConfig {
        &self.cfg
    }
}

impl WorkloadRunner for TpcE {
    fn name(&self) -> &'static str {
        "TPC-E"
    }

    fn xct_type_names(&self) -> Vec<String> {
        [
            "BrokerVolume",
            "CustomerPosition",
            "MarketFeed",
            "MarketWatch",
            "SecurityDetail",
            "TradeLookup",
            "TradeOrder",
            "TradeResult",
            "TradeStatus",
            "TradeUpdate",
        ]
        .map(str::to_owned)
        .to_vec()
    }

    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId> {
        let ty = pick_mix(rng, &self.mix);
        match ty {
            BROKER_VOLUME => self.broker_volume(engine, rng)?,
            CUSTOMER_POSITION => self.customer_position(engine, rng)?,
            MARKET_FEED => self.market_feed(engine, rng)?,
            MARKET_WATCH => self.market_watch(engine, rng)?,
            SECURITY_DETAIL => self.security_detail(engine, rng)?,
            TRADE_LOOKUP => self.trade_lookup(engine, rng)?,
            TRADE_ORDER => self.trade_order(engine, rng)?,
            TRADE_RESULT => self.trade_result(engine, rng)?,
            TRADE_STATUS => self.trade_status(engine, rng)?,
            _ => self.trade_update(engine, rng)?,
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::OpKind;
    use rand::SeedableRng;

    fn small() -> (Engine, TpcE) {
        TpcE::setup(TpcEConfig::small())
    }

    #[test]
    fn populate_counts() {
        let (e, w) = small();
        let c = e.catalog();
        let cfg = w.config();
        assert_eq!(
            c.table(w.customer).unwrap().heap.n_records() as u64,
            cfg.customers
        );
        assert_eq!(
            c.table(w.account).unwrap().heap.n_records() as u64,
            cfg.customers * cfg.accounts_per_customer
        );
        assert_eq!(
            c.table(w.security).unwrap().heap.n_records() as u64,
            cfg.securities
        );
        assert_eq!(
            c.table(w.trade).unwrap().heap.n_records() as u64,
            w.n_accounts() * cfg.trades_per_account
        );
    }

    #[test]
    fn trade_status_is_read_only_with_scan() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(1);
        w.trade_status(&mut e, &mut rng).unwrap();
        let traces = e.take_traces();
        let ops = traces[0].op_slices();
        assert!(ops
            .iter()
            .all(|(k, _)| matches!(k, OpKind::Probe | OpKind::Scan)));
        assert!(ops.iter().any(|(k, _)| *k == OpKind::Scan));
        assert!(ops.iter().filter(|(k, _)| *k == OpKind::Probe).count() >= 3);
    }

    #[test]
    fn trade_order_then_result_settles() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(2);
        let trades_before = e.catalog().table(w.trade).unwrap().heap.n_records();
        w.trade_order(&mut e, &mut rng).unwrap();
        assert_eq!(
            e.catalog().table(w.trade).unwrap().heap.n_records(),
            trades_before + 1
        );
        assert_eq!(w.pending.len(), 1);
        w.trade_result(&mut e, &mut rng).unwrap();
        assert!(w.pending.is_empty());
        // TradeResult with no pending trades still works (fallback path).
        w.trade_result(&mut e, &mut rng).unwrap();
    }

    #[test]
    fn market_feed_updates_prices() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(3);
        w.market_feed(&mut e, &mut rng).unwrap();
        let traces = e.take_traces();
        let updates = traces[0]
            .op_slices()
            .iter()
            .filter(|(k, _)| *k == OpKind::Update)
            .count();
        assert_eq!(updates, 5);
    }

    #[test]
    fn full_mix_runs_clean() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..500 {
            let ty = w.run_one(&mut e, &mut rng).unwrap();
            counts[ty.0 as usize] += 1;
        }
        let traces = e.take_traces();
        assert_eq!(traces.len(), 500);
        // TradeStatus (19%) clearly beats the rare types.
        assert!(counts[TRADE_STATUS.0 as usize] > 60, "{counts:?}");
        assert!(
            counts[TRADE_STATUS.0 as usize] > counts[MARKET_FEED.0 as usize],
            "{counts:?}"
        );
        // Read-only share roughly 77%.
        let ro = counts[0] + counts[1] + counts[3] + counts[4] + counts[5] + counts[8];
        assert!((330..460).contains(&ro), "read-only count {ro} of 500");
    }

    #[test]
    fn customer_position_scans_accounts_and_holdings() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(5);
        w.customer_position(&mut e, &mut rng).unwrap();
        let traces = e.take_traces();
        let scans = traces[0]
            .op_slices()
            .iter()
            .filter(|(k, _)| *k == OpKind::Scan)
            .count();
        assert!(scans >= 2, "accounts scan + at least one holdings scan");
    }
}
