//! TPC-C: the order-entry benchmark, five transaction types at the
//! standard mix (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%,
//! StockLevel 4% — the 45/43 split is the "88% of the mix" the paper
//! attributes to NewOrder + Payment).
//!
//! Faithful structure, scaled-down sizes:
//!
//! * nine tables; History has **no index** (why Payment's insert stream
//!   lacks `create index entry`, Section 2.2.1), Order has a secondary
//!   index by customer;
//! * NewOrder inserts into indexed tables (Order, NewOrder, OrderLine) —
//!   the `create index entry` + `structural modification` paths;
//! * Delivery consumes NewOrder rows with real `delete tuple` operations.
//!
//! Simplification (documented in DESIGN.md): Delivery reads order lines
//! and credits the customer but does not rewrite each order line's
//! delivery date; the per-line updates would quintuple the transaction
//! with no new code paths.

use std::collections::HashMap;

use addict_storage::{Engine, EngineConfig, IndexId, StorageResult, TableId, XctId};
use addict_trace::XctTypeId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::rows::{encode_row, get_field, get_field_i64, set_field, set_field_i64};
use crate::{pick_mix, WorkloadRunner};

/// Transaction type ids, in mix order.
pub const NEW_ORDER: XctTypeId = XctTypeId(0);
/// Payment.
pub const PAYMENT: XctTypeId = XctTypeId(1);
/// OrderStatus.
pub const ORDER_STATUS: XctTypeId = XctTypeId(2);
/// Delivery.
pub const DELIVERY: XctTypeId = XctTypeId(3);
/// StockLevel.
pub const STOCK_LEVEL: XctTypeId = XctTypeId(4);

/// TPC-C scale configuration.
#[derive(Debug, Clone)]
pub struct TpcCConfig {
    /// Warehouses (the TPC-C scale factor).
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts: u64,
    /// Customers per district (spec: 3000; scaled down).
    pub customers: u64,
    /// Item catalog size (spec: 100 000; scaled down).
    pub items: u64,
    /// Orders pre-loaded per district.
    pub initial_orders: u64,
}

impl Default for TpcCConfig {
    fn default() -> Self {
        TpcCConfig {
            warehouses: 4,
            districts: 10,
            customers: 600,
            items: 2_000,
            initial_orders: 120,
        }
    }
}

impl TpcCConfig {
    /// Tiny scale for unit tests.
    pub fn small() -> Self {
        TpcCConfig {
            warehouses: 1,
            districts: 2,
            customers: 30,
            items: 50,
            initial_orders: 10,
        }
    }
}

// --- key packing -------------------------------------------------------

/// District key: warehouse in the high bits.
fn k_district(w: u64, d: u64) -> u64 {
    (w << 8) | d
}

/// Customer key.
fn k_customer(w: u64, d: u64, c: u64) -> u64 {
    (w << 28) | (d << 20) | c
}

/// Stock key.
fn k_stock(w: u64, i: u64) -> u64 {
    (w << 24) | i
}

/// Order / NewOrder key.
fn k_order(w: u64, d: u64, o: u64) -> u64 {
    debug_assert!(o < 1 << 32);
    (w << 44) | (d << 36) | o
}

/// Order-by-customer secondary key.
fn k_order_by_customer(w: u64, d: u64, c: u64, o: u64) -> u64 {
    debug_assert!(c < 1 << 20 && o < 1 << 20);
    (w << 48) | (d << 40) | (c << 20) | o
}

/// OrderLine key.
fn k_orderline(w: u64, d: u64, o: u64, ol: u64) -> u64 {
    debug_assert!(o < 1 << 28 && ol < 1 << 8);
    (w << 44) | (d << 36) | (o << 8) | ol
}

// --- row layouts (field indexes) ---------------------------------------

const W_ROW: usize = 100;
const W_YTD: usize = 1;
const D_ROW: usize = 100;
const D_YTD: usize = 1;
const D_NEXT_O: usize = 2;
const C_ROW: usize = 250;
const C_BALANCE: usize = 1;
const C_YTD: usize = 2;
const C_PAYMENTS: usize = 3;
const H_ROW: usize = 50;
const O_ROW: usize = 60;
const O_CARRIER: usize = 3;
const O_OL_CNT: usize = 2;
const NO_ROW: usize = 16;
const OL_ROW: usize = 70;
const OL_ITEM: usize = 2;
const OL_AMOUNT: usize = 4;
const I_ROW: usize = 100;
const S_ROW: usize = 120;
const S_QTY: usize = 1;
const S_YTD: usize = 2;

/// Table/index handles plus run state.
#[derive(Debug)]
pub struct TpcC {
    cfg: TpcCConfig,
    warehouse: TableId,
    warehouse_pk: IndexId,
    district: TableId,
    district_pk: IndexId,
    customer: TableId,
    customer_pk: IndexId,
    history: TableId,
    order: TableId,
    order_pk: IndexId,
    order_by_cust: IndexId,
    new_order: TableId,
    new_order_pk: IndexId,
    order_line: TableId,
    order_line_pk: IndexId,
    item: TableId,
    item_pk: IndexId,
    stock: TableId,
    stock_pk: IndexId,
    /// Oldest possibly-undelivered order per (warehouse, district).
    delivery_cursor: HashMap<(u64, u64), u64>,
    mix: [(u32, XctTypeId); 5],
}

impl TpcC {
    /// Create the schema and populate (untraced).
    pub fn setup(cfg: TpcCConfig) -> (Engine, TpcC) {
        let mut e = Engine::new(EngineConfig::default());
        let warehouse = e.create_table("warehouse");
        let warehouse_pk = e.create_index(warehouse, "warehouse_pk").expect("exists");
        let district = e.create_table("district");
        let district_pk = e.create_index(district, "district_pk").expect("exists");
        let customer = e.create_table("customer");
        let customer_pk = e.create_index(customer, "customer_pk").expect("exists");
        let history = e.create_table("history"); // no index (spec)
        let order = e.create_table("order");
        let order_pk = e.create_index(order, "order_pk").expect("exists");
        let order_by_cust = e.create_index(order, "order_by_customer").expect("exists");
        let new_order = e.create_table("new_order");
        let new_order_pk = e.create_index(new_order, "new_order_pk").expect("exists");
        let order_line = e.create_table("order_line");
        let order_line_pk = e.create_index(order_line, "order_line_pk").expect("exists");
        let item = e.create_table("item");
        let item_pk = e.create_index(item, "item_pk").expect("exists");
        let stock = e.create_table("stock");
        let stock_pk = e.create_index(stock, "stock_pk").expect("exists");

        let mut w = TpcC {
            cfg,
            warehouse,
            warehouse_pk,
            district,
            district_pk,
            customer,
            customer_pk,
            history,
            order,
            order_pk,
            order_by_cust,
            new_order,
            new_order_pk,
            order_line,
            order_line_pk,
            item,
            item_pk,
            stock,
            stock_pk,
            delivery_cursor: HashMap::new(),
            mix: [
                (45, NEW_ORDER),
                (88, PAYMENT),
                (92, ORDER_STATUS),
                (96, DELIVERY),
                (100, STOCK_LEVEL),
            ],
        };
        w.populate(&mut e);
        (e, w)
    }

    fn populate(&mut self, e: &mut Engine) {
        e.set_tracing(false);
        let mut rng: StdRng = rand::SeedableRng::seed_from_u64(0xC0FFEE);
        let x = e.begin(NEW_ORDER);
        for i in 0..self.cfg.items {
            e.insert_tuple(
                x,
                self.item,
                &[(self.item_pk, i)],
                &encode_row(I_ROW, &[i, 100 + i % 900]),
            )
            .expect("populate item");
        }
        for w in 0..self.cfg.warehouses {
            e.insert_tuple(
                x,
                self.warehouse,
                &[(self.warehouse_pk, w)],
                &encode_row(W_ROW, &[w, 0]),
            )
            .expect("populate warehouse");
            for i in 0..self.cfg.items {
                e.insert_tuple(
                    x,
                    self.stock,
                    &[(self.stock_pk, k_stock(w, i))],
                    &encode_row(S_ROW, &[i, 50 + (i * 7) % 50, 0]),
                )
                .expect("populate stock");
            }
            for d in 0..self.cfg.districts {
                let next_o = self.cfg.initial_orders + 1;
                e.insert_tuple(
                    x,
                    self.district,
                    &[(self.district_pk, k_district(w, d))],
                    &encode_row(D_ROW, &[d, 0, next_o]),
                )
                .expect("populate district");
                for c in 0..self.cfg.customers {
                    e.insert_tuple(
                        x,
                        self.customer,
                        &[(self.customer_pk, k_customer(w, d, c))],
                        &encode_row(C_ROW, &[c, 0, 0, 0]),
                    )
                    .expect("populate customer");
                }
                // Pre-loaded orders; the newest third remain "new".
                for o in 1..=self.cfg.initial_orders {
                    let c = rng.gen_range(0..self.cfg.customers);
                    let ol_cnt = rng.gen_range(5..=15u64);
                    e.insert_tuple(
                        x,
                        self.order,
                        &[
                            (self.order_pk, k_order(w, d, o)),
                            (self.order_by_cust, k_order_by_customer(w, d, c, o)),
                        ],
                        &encode_row(O_ROW, &[o, c, ol_cnt, 0]),
                    )
                    .expect("populate order");
                    for ol in 0..ol_cnt {
                        let i = rng.gen_range(0..self.cfg.items);
                        e.insert_tuple(
                            x,
                            self.order_line,
                            &[(self.order_line_pk, k_orderline(w, d, o, ol))],
                            &encode_row(OL_ROW, &[o, ol, i, rng.gen_range(1..=10), 500]),
                        )
                        .expect("populate order line");
                    }
                    if o > self.cfg.initial_orders * 2 / 3 {
                        e.insert_tuple(
                            x,
                            self.new_order,
                            &[(self.new_order_pk, k_order(w, d, o))],
                            &encode_row(NO_ROW, &[o]),
                        )
                        .expect("populate new order");
                    }
                }
                self.delivery_cursor
                    .insert((w, d), self.cfg.initial_orders * 2 / 3 + 1);
            }
        }
        e.commit(x).expect("populate commit");
        e.set_tracing(true);
    }

    /// Probe by key, patch one i64 field by `delta`, write back. Returns
    /// the rid.
    fn adjust_field(
        &self,
        e: &mut Engine,
        x: XctId,
        index: IndexId,
        table: TableId,
        key: u64,
        field: usize,
        delta: i64,
    ) -> StorageResult<addict_storage::Rid> {
        let rid = e
            .index_probe_rid(x, index, key)?
            .unwrap_or_else(|| panic!("populated key {key:#x} missing"));
        let mut row = e.peek(table, rid)?;
        let new_val = get_field_i64(&row, field) + delta;
        set_field_i64(&mut row, field, new_val);
        e.update_tuple(x, table, rid, &row)?;
        Ok(rid)
    }

    /// The NewOrder transaction.
    pub fn new_order(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..self.cfg.districts);
        let c = rng.gen_range(0..self.cfg.customers);
        let ol_cnt = rng.gen_range(5..=15u64);

        let x = e.begin(NEW_ORDER);
        e.index_probe(x, self.warehouse_pk, w)?
            .expect("warehouse exists");

        // District: read and bump next_o_id.
        let d_key = k_district(w, d);
        let d_rid = e
            .index_probe_rid(x, self.district_pk, d_key)?
            .expect("district exists");
        let mut d_row = e.peek(self.district, d_rid)?;
        let o = get_field(&d_row, D_NEXT_O);
        set_field(&mut d_row, D_NEXT_O, o + 1);
        e.update_tuple(x, self.district, d_rid, &d_row)?;

        e.index_probe(x, self.customer_pk, k_customer(w, d, c))?
            .expect("customer exists");

        e.insert_tuple(
            x,
            self.order,
            &[
                (self.order_pk, k_order(w, d, o)),
                (self.order_by_cust, k_order_by_customer(w, d, c, o)),
            ],
            &encode_row(O_ROW, &[o, c, ol_cnt, 0]),
        )?;
        e.insert_tuple(
            x,
            self.new_order,
            &[(self.new_order_pk, k_order(w, d, o))],
            &encode_row(NO_ROW, &[o]),
        )?;

        for ol in 0..ol_cnt {
            let i = rng.gen_range(0..self.cfg.items);
            let qty = rng.gen_range(1..=10i64);
            e.index_probe(x, self.item_pk, i)?.expect("item exists");
            self.adjust_field(e, x, self.stock_pk, self.stock, k_stock(w, i), S_QTY, -qty)?;
            e.insert_tuple(
                x,
                self.order_line,
                &[(self.order_line_pk, k_orderline(w, d, o, ol))],
                &encode_row(OL_ROW, &[o, ol, i, qty as u64, 500]),
            )?;
        }
        e.commit(x)
    }

    /// The Payment transaction.
    pub fn payment(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..self.cfg.districts);
        let c = rng.gen_range(0..self.cfg.customers);
        let amount = rng.gen_range(100..=500_000i64);

        let x = e.begin(PAYMENT);
        self.adjust_field(e, x, self.warehouse_pk, self.warehouse, w, W_YTD, amount)?;
        self.adjust_field(
            e,
            x,
            self.district_pk,
            self.district,
            k_district(w, d),
            D_YTD,
            amount,
        )?;
        let c_key = k_customer(w, d, c);
        let c_rid = e
            .index_probe_rid(x, self.customer_pk, c_key)?
            .expect("customer exists");
        let mut c_row = e.peek(self.customer, c_rid)?;
        let new_val = get_field_i64(&c_row, C_BALANCE) - amount;
        set_field_i64(&mut c_row, C_BALANCE, new_val);
        let new_val = get_field_i64(&c_row, C_YTD) + amount;
        set_field_i64(&mut c_row, C_YTD, new_val);
        let new_val = get_field(&c_row, C_PAYMENTS) + 1;
        set_field(&mut c_row, C_PAYMENTS, new_val);
        e.update_tuple(x, self.customer, c_rid, &c_row)?;
        // History has no index: the paper's index-less insert.
        e.insert_tuple(
            x,
            self.history,
            &[],
            &encode_row(H_ROW, &[w, d, c, amount as u64]),
        )?;
        e.commit(x)
    }

    /// The OrderStatus transaction (read-only).
    pub fn order_status(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..self.cfg.districts);
        let c = rng.gen_range(0..self.cfg.customers);

        let x = e.begin(ORDER_STATUS);
        e.index_probe(x, self.customer_pk, k_customer(w, d, c))?
            .expect("customer exists");
        // Most recent order of this customer.
        let lo = k_order_by_customer(w, d, c, 0);
        let hi = k_order_by_customer(w, d, c, (1 << 20) - 1);
        let orders = e.index_scan(x, self.order_by_cust, lo, true, hi, true)?;
        if let Some((_, o_row)) = orders.last() {
            let o = get_field(o_row, 0);
            let ol_cnt = get_field(o_row, O_OL_CNT);
            let lo = k_orderline(w, d, o, 0);
            let hi = k_orderline(w, d, o, ol_cnt.max(1) - 1);
            e.index_scan(x, self.order_line_pk, lo, true, hi, true)?;
        }
        e.commit(x)
    }

    /// The Delivery transaction: per district, deliver the oldest new
    /// order (a real `delete tuple` on NewOrder).
    pub fn delivery(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let x = e.begin(DELIVERY);
        for d in 0..self.cfg.districts {
            let cursor = *self.delivery_cursor.get(&(w, d)).expect("cursor populated");
            // Find the oldest undelivered order in a bounded window.
            let lo = k_order(w, d, cursor);
            let hi = k_order(w, d, cursor + 32);
            let pending = e.index_scan(x, self.new_order_pk, lo, true, hi, true)?;
            let Some((no_key, _)) = pending.first() else {
                continue;
            };
            let no_key = *no_key;
            let o = no_key & 0xF_FFFF_FFFF; // low 36 bits: the order number
                                            // Consume the NewOrder row.
            e.delete_tuple(x, self.new_order, &[(self.new_order_pk, no_key)])?;
            self.delivery_cursor.insert((w, d), o + 1);
            // Mark the order delivered.
            let o_rid = e
                .index_probe_rid(x, self.order_pk, k_order(w, d, o))?
                .expect("order exists");
            let mut o_row = e.peek(self.order, o_rid)?;
            set_field(&mut o_row, O_CARRIER, rng.gen_range(1..=10));
            e.update_tuple(x, self.order, o_rid, &o_row)?;
            // Total the order lines and credit the customer.
            let ol_cnt = get_field(&o_row, O_OL_CNT);
            let lines = e.index_scan(
                x,
                self.order_line_pk,
                k_orderline(w, d, o, 0),
                true,
                k_orderline(w, d, o, ol_cnt.max(1) - 1),
                true,
            )?;
            let total: i64 = lines.iter().map(|(_, r)| get_field_i64(r, OL_AMOUNT)).sum();
            let c = get_field(&o_row, 1);
            self.adjust_field(
                e,
                x,
                self.customer_pk,
                self.customer,
                k_customer(w, d, c),
                C_BALANCE,
                total,
            )?;
        }
        e.commit(x)
    }

    /// The StockLevel transaction (read-only).
    pub fn stock_level(&mut self, e: &mut Engine, rng: &mut StdRng) -> StorageResult<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..self.cfg.districts);
        let threshold = rng.gen_range(10..=20i64);

        let x = e.begin(STOCK_LEVEL);
        let d_rid = e
            .index_probe_rid(x, self.district_pk, k_district(w, d))?
            .expect("district exists");
        let next_o = get_field(&e.peek(self.district, d_rid)?, D_NEXT_O);
        let first = next_o.saturating_sub(10).max(1);
        let lines = e.index_scan(
            x,
            self.order_line_pk,
            k_orderline(w, d, first, 0),
            true,
            k_orderline(w, d, next_o.max(1) - 1, 255),
            true,
        )?;
        // Distinct items, bounded.
        let mut items: Vec<u64> = lines.iter().map(|(_, r)| get_field(r, OL_ITEM)).collect();
        items.sort_unstable();
        items.dedup();
        let mut low_stock = 0;
        for &i in items.iter().take(20) {
            if let Some(s_row) = e.index_probe(x, self.stock_pk, k_stock(w, i))? {
                if get_field_i64(&s_row, S_QTY) < threshold {
                    low_stock += 1;
                }
            }
        }
        let _ = low_stock;
        e.commit(x)
    }

    /// The configured scale.
    pub fn config(&self) -> &TpcCConfig {
        &self.cfg
    }

    /// Stock YTD field index (tests).
    pub fn stock_ytd_field() -> usize {
        S_YTD
    }
}

impl WorkloadRunner for TpcC {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn xct_type_names(&self) -> Vec<String> {
        [
            "NewOrder",
            "Payment",
            "OrderStatus",
            "Delivery",
            "StockLevel",
        ]
        .map(str::to_owned)
        .to_vec()
    }

    fn run_one(&mut self, engine: &mut Engine, rng: &mut StdRng) -> StorageResult<XctTypeId> {
        let ty = pick_mix(rng, &self.mix);
        match ty {
            NEW_ORDER => self.new_order(engine, rng)?,
            PAYMENT => self.payment(engine, rng)?,
            ORDER_STATUS => self.order_status(engine, rng)?,
            DELIVERY => self.delivery(engine, rng)?,
            _ => self.stock_level(engine, rng)?,
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::OpKind;
    use rand::SeedableRng;

    fn small() -> (Engine, TpcC) {
        TpcC::setup(TpcCConfig::small())
    }

    #[test]
    fn populate_counts() {
        let (e, w) = small();
        let c = e.catalog();
        let cfg = w.config();
        assert_eq!(
            c.table(w.warehouse).unwrap().heap.n_records() as u64,
            cfg.warehouses
        );
        assert_eq!(
            c.table(w.district).unwrap().heap.n_records() as u64,
            cfg.warehouses * cfg.districts
        );
        assert_eq!(
            c.table(w.customer).unwrap().heap.n_records() as u64,
            cfg.warehouses * cfg.districts * cfg.customers
        );
        assert_eq!(c.table(w.item).unwrap().heap.n_records() as u64, cfg.items);
        assert_eq!(
            c.table(w.stock).unwrap().heap.n_records() as u64,
            cfg.warehouses * cfg.items
        );
        assert_eq!(
            c.table(w.order).unwrap().heap.n_records() as u64,
            cfg.warehouses * cfg.districts * cfg.initial_orders
        );
        // A third of the orders are new.
        let new_orders = c.table(w.new_order).unwrap().heap.n_records() as u64;
        assert!(new_orders > 0);
        assert!(new_orders < cfg.warehouses * cfg.districts * cfg.initial_orders / 2);
    }

    #[test]
    fn new_order_creates_rows_and_ops() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(1);
        let orders_before = e.catalog().table(w.order).unwrap().heap.n_records();
        w.new_order(&mut e, &mut rng).unwrap();
        let orders_after = e.catalog().table(w.order).unwrap().heap.n_records();
        assert_eq!(orders_after, orders_before + 1);
        let traces = e.take_traces();
        let ops = traces[0].op_slices();
        let probes = ops.iter().filter(|(k, _)| *k == OpKind::Probe).count();
        let updates = ops.iter().filter(|(k, _)| *k == OpKind::Update).count();
        let inserts = ops.iter().filter(|(k, _)| *k == OpKind::Insert).count();
        // warehouse + district + customer + per-line item & stock probes.
        assert!(probes >= 3 + 2 * 5, "probes = {probes}");
        assert!((1 + 5..=1 + 15).contains(&updates), "updates = {updates}");
        assert!((2 + 5..=2 + 15).contains(&inserts), "inserts = {inserts}");
    }

    #[test]
    fn payment_is_insert_into_indexless_history() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(2);
        let hist_before = e.catalog().table(w.history).unwrap().heap.n_records();
        w.payment(&mut e, &mut rng).unwrap();
        assert_eq!(
            e.catalog().table(w.history).unwrap().heap.n_records(),
            hist_before + 1
        );
        let traces = e.take_traces();
        let ops = traces[0].op_slices();
        assert_eq!(ops.iter().filter(|(k, _)| *k == OpKind::Insert).count(), 1);
        assert_eq!(ops.iter().filter(|(k, _)| *k == OpKind::Update).count(), 3);
    }

    #[test]
    fn delivery_deletes_new_orders() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(3);
        let no_before = e.catalog().table(w.new_order).unwrap().heap.n_records();
        w.delivery(&mut e, &mut rng).unwrap();
        let no_after = e.catalog().table(w.new_order).unwrap().heap.n_records();
        assert!(no_after < no_before, "delivery must consume new orders");
        let traces = e.take_traces();
        let deletes = traces[0]
            .op_slices()
            .iter()
            .filter(|(k, _)| *k == OpKind::Delete)
            .count();
        assert_eq!(deletes, no_before - no_after);
    }

    #[test]
    fn order_status_and_stock_level_are_read_only() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(4);
        w.order_status(&mut e, &mut rng).unwrap();
        w.stock_level(&mut e, &mut rng).unwrap();
        let traces = e.take_traces();
        for t in &traces {
            for (op, _) in t.op_slices() {
                assert!(
                    matches!(op, OpKind::Probe | OpKind::Scan),
                    "read-only transaction ran {op:?}"
                );
            }
        }
        // Both exercised the scan operation.
        assert!(traces
            .iter()
            .any(|t| t.op_slices().iter().any(|(k, _)| *k == OpKind::Scan)));
    }

    #[test]
    fn mix_run_is_stable_and_complete() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 5];
        for _ in 0..60 {
            let ty = w.run_one(&mut e, &mut rng).unwrap();
            counts[ty.0 as usize] += 1;
        }
        let traces = e.take_traces();
        assert_eq!(traces.len(), 60);
        // NewOrder and Payment dominate.
        assert!(counts[0] + counts[1] > 40, "{counts:?}");
    }

    #[test]
    fn district_next_o_id_monotone() {
        let (mut e, mut w) = small();
        let mut rng = StdRng::seed_from_u64(6);
        let key = k_district(0, 0);
        let rid = e.peek_index(w.district_pk, key).unwrap().unwrap();
        let before = get_field(&e.peek(w.district, rid).unwrap(), D_NEXT_O);
        for _ in 0..30 {
            w.new_order(&mut e, &mut rng).unwrap();
        }
        let after = get_field(&e.peek(w.district, rid).unwrap(), D_NEXT_O);
        assert!(after >= before);
        assert!(after <= before + 30);
    }
}
