//! Differential property test for the run-granular data path:
//! `Machine::access_data_run` must be *bit-identical* to issuing the same
//! accesses through per-block `Machine::access_data` calls — per-core
//! clocks, every per-level counter (L1-D/L2p/LLC/memory), invalidation and
//! cache-to-cache counts, writebacks, and the coherence-directory state —
//! on arbitrary interleaved per-core access sequences.
//!
//! The sequences deliberately concentrate blocks on a few cache sets
//! (evictions), reuse blocks across cores (sharing, invalidations,
//! upgrades, C2C transfers), and mix loads with stores, so every exit
//! condition of the private fast lane is crossed mid-run.

use addict_sim::{BlockAddr, CoreId, DataAccess, Machine, SimConfig};
use proptest::prelude::*;

const N_CORES: usize = 4;

/// Blocks collide heavily: few sets (the L1-D has 64 sets, so tags stride
/// by 64) and more tags per set than the 8 ways, forcing evictions.
fn arb_access() -> impl Strategy<Value = (usize, DataAccess)> {
    (0usize..N_CORES, 0u64..3, 0u64..12, any::<bool>()).prop_map(|(core, set, tag, write)| {
        (
            core,
            DataAccess {
                block: BlockAddr(set + tag * 64),
                write,
            },
        )
    })
}

/// Split an interleaved sequence into maximal consecutive same-core runs —
/// exactly the coalescing the replay engine performs (a thread's data
/// events execute back-to-back on its current core).
fn same_core_runs(ops: &[(usize, DataAccess)]) -> Vec<(usize, Vec<DataAccess>)> {
    let mut runs: Vec<(usize, Vec<DataAccess>)> = Vec::new();
    for &(core, access) in ops {
        match runs.last_mut() {
            Some((c, run)) if *c == core => run.push(access),
            _ => runs.push((core, vec![access])),
        }
    }
    runs
}

/// Snapshot of the directory state over the block universe.
fn directory_state(m: &Machine) -> Vec<(u64, Vec<bool>, Option<usize>)> {
    let dir = m.hierarchy().directory();
    (0u64..(3 + 11 * 64 + 1))
        .map(|b| {
            let block = BlockAddr(b);
            (
                b,
                (0..N_CORES).map(|c| dir.is_sharer(c, block)).collect(),
                dir.owner(block),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Headline property: run-path replay of arbitrary interleavings is
    /// bit-identical to block-at-a-time replay — clocks, counters,
    /// invalidations, directory.
    #[test]
    fn data_run_path_matches_per_block_path(
        ops in prop::collection::vec(arb_access(), 1..300),
        deep in any::<bool>(),
    ) {
        let cfg = if deep {
            SimConfig::paper_deep().with_cores(N_CORES)
        } else {
            SimConfig::paper_default().with_cores(N_CORES)
        };
        let mut run_m = Machine::new(&cfg);
        let mut blk_m = Machine::new(&cfg);
        // Independent per-core clocks, like the replay engine's.
        let mut run_now = [0.5f64; N_CORES];
        let mut blk_now = [0.5f64; N_CORES];
        for (core, run) in same_core_runs(&ops) {
            run_now[core] = run_m.access_data_run(CoreId(core), &run, run_now[core]);
            for a in &run {
                blk_now[core] += blk_m.access_data(CoreId(core), a.block, a.write);
            }
        }
        for c in 0..N_CORES {
            prop_assert_eq!(
                run_now[c].to_bits(),
                blk_now[c].to_bits(),
                "core {} clock diverged ({} vs {})",
                c,
                run_now[c],
                blk_now[c]
            );
        }
        // Every counter — l1d accesses/misses, l2p, llc, memory,
        // invalidations_received, c2c_supplied, writebacks, noc hops,
        // data_stall_cycles — compared per core via Debug (which renders
        // f64 shortest-roundtrip, so byte equality is bit equality).
        prop_assert_eq!(
            format!("{:?}", run_m.stats()),
            format!("{:?}", blk_m.stats())
        );
        prop_assert_eq!(
            run_m.stats().invalidations_received(),
            blk_m.stats().invalidations_received()
        );
        // The coherence directory ends in the identical state.
        prop_assert_eq!(directory_state(&run_m), directory_state(&blk_m));
        prop_assert_eq!(
            run_m.hierarchy().directory().tombstone_count(),
            blk_m.hierarchy().directory().tombstone_count()
        );
        // Both machines did the same number of data accesses — the stats
        // single-source guard at machine level.
        prop_assert_eq!(run_m.stats().data_accesses(), ops.len() as u64);
        prop_assert_eq!(blk_m.stats().data_accesses(), ops.len() as u64);
    }

    /// Splitting one logical run into arbitrary sub-runs cannot change the
    /// outcome either (the engine re-gathers a run's remainder after any
    /// partial consumption).
    #[test]
    fn run_splitting_is_invisible(
        accesses in prop::collection::vec(
            (0u64..2, 0u64..10, any::<bool>())
                .prop_map(|(s, t, w)| DataAccess { block: BlockAddr(s + t * 64), write: w }),
            1..80,
        ),
        split in 1usize..8,
    ) {
        let cfg = SimConfig::paper_default().with_cores(2);
        let mut whole_m = Machine::new(&cfg);
        let mut split_m = Machine::new(&cfg);
        let whole_now = whole_m.access_data_run(CoreId(1), &accesses, 0.25);
        let mut split_now = 0.25f64;
        for chunk in accesses.chunks(split) {
            split_now = split_m.access_data_run(CoreId(1), chunk, split_now);
        }
        prop_assert_eq!(whole_now.to_bits(), split_now.to_bits());
        prop_assert_eq!(
            format!("{:?}", whole_m.stats()),
            format!("{:?}", split_m.stats())
        );
    }
}

/// Deterministic smoke: the fast lane really consumes private hits (the
/// proptests would pass even if everything took the coherent path).
#[test]
fn fast_lane_engages_on_private_reuse() {
    let cfg = SimConfig::paper_default().with_cores(2);
    let mut m = Machine::new(&cfg);
    let run: Vec<DataAccess> = (0..8u64)
        .map(|i| DataAccess {
            block: BlockAddr(0x500 + i),
            write: i % 2 == 0,
        })
        .collect();
    // Cold pass: nothing is private yet.
    m.access_data_run(CoreId(0), &run, 0.0);
    let after_cold = m.data_run_fast_hits();
    // Warm pass: every access is a hit, writes land on dirty lines.
    m.access_data_run(CoreId(0), &run, 0.0);
    assert_eq!(
        m.data_run_fast_hits() - after_cold,
        run.len() as u64,
        "warm private run must be consumed entirely by the fast lane"
    );
}
