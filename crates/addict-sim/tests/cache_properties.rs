//! Property-based tests for the set-associative cache and the coherence
//! directory: LRU behaviour, occupancy bounds, and directory/cache
//! consistency under random access sequences.

use addict_sim::cache::SetAssocCache;
use addict_sim::coherence::Directory;
use addict_sim::config::CacheGeometry;
use addict_sim::BlockAddr;
use proptest::prelude::*;

fn small_cache() -> SetAssocCache {
    // 4 sets x 4 ways = 16 blocks.
    SetAssocCache::new(CacheGeometry::new(16 * 64, 4))
}

proptest! {
    /// Occupancy never exceeds capacity, and every evicted block was
    /// previously resident.
    #[test]
    fn occupancy_bounded_and_evictions_valid(addrs in prop::collection::vec(0u64..64, 1..300)) {
        let mut c = small_cache();
        let mut resident = std::collections::HashSet::new();
        for a in addrs {
            let b = BlockAddr(a);
            let out = c.access(b);
            if let Some(v) = out.evicted {
                prop_assert!(resident.remove(&v), "evicted non-resident block {v:?}");
            }
            prop_assert_eq!(out.hit, !resident.insert(b) || out.hit);
            resident.insert(b);
            prop_assert!(c.occupancy() <= c.capacity_blocks());
            prop_assert_eq!(c.occupancy(), resident.len());
        }
        // The cache's own view agrees with the model.
        for &b in &resident {
            prop_assert!(c.contains(b));
        }
    }

    /// An access immediately followed by the same access always hits
    /// (temporal locality is never lost instantly).
    #[test]
    fn immediate_reaccess_hits(addrs in prop::collection::vec(0u64..1024, 1..200)) {
        let mut c = small_cache();
        for a in addrs {
            c.access(BlockAddr(a));
            prop_assert!(c.access(BlockAddr(a)).hit);
        }
    }

    /// Within one set, the most recently used `ways` distinct blocks are
    /// always resident (true-LRU property).
    #[test]
    fn lru_keeps_most_recent_ways(addrs in prop::collection::vec(0u64..40, 1..300)) {
        let ways = 4usize;
        let n_sets = 4u64;
        let mut c = small_cache();
        let mut per_set_recency: Vec<Vec<BlockAddr>> = vec![Vec::new(); n_sets as usize];
        for a in addrs {
            let b = BlockAddr(a);
            c.access(b);
            let set = (a % n_sets) as usize;
            per_set_recency[set].retain(|&x| x != b);
            per_set_recency[set].push(b);
            let recent: Vec<_> = per_set_recency[set].iter().rev().take(ways).collect();
            for &&r in &recent {
                prop_assert!(c.contains(r), "recently used {r:?} evicted too early");
            }
        }
    }

    /// Flush always empties the cache, regardless of prior history.
    #[test]
    fn flush_resets(addrs in prop::collection::vec(0u64..256, 0..100)) {
        let mut c = small_cache();
        for a in addrs {
            c.access(BlockAddr(a));
        }
        c.flush();
        prop_assert_eq!(c.occupancy(), 0);
    }

    /// Directory invariant: after any interleaving of reads/writes/evicts,
    /// a block has at most one modified owner, and the owner is a sharer.
    #[test]
    fn directory_single_owner(ops in prop::collection::vec((0usize..4, 0u64..8, 0u8..3), 1..200)) {
        let mut d = Directory::new();
        for (core, addr, kind) in ops {
            let b = BlockAddr(addr);
            match kind {
                0 => { d.on_read(core, b); }
                1 => { d.on_write(core, b); }
                _ => { d.on_evict(core, b); }
            }
            if let Some(owner) = d.owner(b) {
                prop_assert!(d.is_sharer(owner, b), "owner not a sharer");
                // A write by anyone else would have cleared this owner, so
                // at most one core can believe it owns the block.
                for other in 0..4 {
                    if other != owner {
                        prop_assert_ne!(d.owner(b), Some(other));
                    }
                }
            }
        }
    }
}
