//! Model-based property tests for the open-addressed coherence directory:
//! random interleavings of insert (read/write), remove (evict), and lookup
//! are checked op-by-op against a `HashMap` reference model, together with
//! the table's tombstone-accounting invariants (the load-factor rebuild
//! resets tombstones; removal tombstones a block exactly once).
//!
//! The second proptest lifts the model to the hierarchy level and drives
//! the **run-granular data path**: interleaved per-core access sequences
//! execute in batches through `Hierarchy::access_data_run`, and after
//! every batch the directory's sharer masks, modified owners, tracked
//! count, and tombstone count must match (a) a `HashMap` + shadow-L1-D
//! model that re-implements the MESI protocol of `access_data`, and (b) a
//! hierarchy replaying the same sequence block-at-a-time — proving the
//! batched fast lane never lets the directory skip (or double-apply) a
//! coherence transaction.

use std::collections::HashMap;

use addict_sim::coherence::Directory;
use addict_sim::{BlockAddr, CoreId, DataAccess, Machine, SetAssocCache, SimConfig};
use proptest::prelude::*;

/// Reference model: block -> (sharer bitmask, modified owner).
#[derive(Default)]
struct Model {
    blocks: HashMap<u64, (u64, Option<usize>)>,
}

impl Model {
    /// Mirrors `Directory::on_read`, returning the expected supplier.
    fn on_read(&mut self, core: usize, block: u64) -> Option<usize> {
        let entry = self.blocks.entry(block).or_insert((0, None));
        let supplier = match entry.1 {
            Some(o) if o != core => {
                entry.1 = None;
                Some(o)
            }
            _ => None,
        };
        entry.0 |= 1 << core;
        supplier
    }

    /// Mirrors `Directory::on_write`, returning (supplier, invalidate mask).
    fn on_write(&mut self, core: usize, block: u64) -> (Option<usize>, u64) {
        let entry = self.blocks.entry(block).or_insert((0, None));
        let supplier = entry.1.filter(|&o| o != core);
        let invalidate = entry.0 & !(1 << core);
        *entry = (1 << core, Some(core));
        (supplier, invalidate)
    }

    /// Mirrors `Directory::on_evict`.
    fn on_evict(&mut self, core: usize, block: u64) {
        if let Some(entry) = self.blocks.get_mut(&block) {
            entry.0 &= !(1 << core);
            if entry.1 == Some(core) {
                entry.1 = None;
            }
            if entry.0 == 0 {
                self.blocks.remove(&block);
            }
        }
    }
}

/// Hierarchy-level reference model: the `HashMap` directory model plus one
/// shadow L1-D per core, mirroring exactly the coherence-relevant state
/// machine of `Hierarchy::access_data` — directory transaction first
/// (invalidating remote shadow copies, cleaning a downgraded supplier),
/// then the local lookup, then `on_evict` for the victim.
struct HierModel {
    dir: Model,
    l1d: Vec<SetAssocCache>,
}

impl HierModel {
    fn new(cfg: &SimConfig) -> Self {
        HierModel {
            dir: Model::default(),
            l1d: (0..cfg.n_cores)
                .map(|_| SetAssocCache::new(cfg.l1d))
                .collect(),
        }
    }

    fn access(&mut self, core: usize, a: DataAccess) {
        let block = a.block;
        let (supplier, invalidate) = if a.write {
            self.dir.on_write(core, block.0)
        } else {
            let s = self.dir.on_read(core, block.0);
            (s, 0u64)
        };
        for victim in 0..self.l1d.len() {
            if invalidate & (1 << victim) != 0 {
                self.l1d[victim].invalidate(block);
            }
        }
        if let Some(s) = supplier {
            if !a.write {
                self.l1d[s].clean(block);
            }
        }
        let out = if a.write {
            self.l1d[core].access_write(block)
        } else {
            self.l1d[core].access(block)
        };
        if let Some(victim) = out.evicted {
            self.dir.on_evict(core, victim.0);
        }
    }
}

/// Blocks collide on few sets so shadow caches evict (tag stride 64 = the
/// L1-D set count at the paper geometry).
fn arb_batch() -> impl Strategy<Value = (usize, Vec<DataAccess>)> {
    (
        0usize..4,
        prop::collection::vec(
            (0u64..3, 0u64..11, any::<bool>()).prop_map(|(s, t, w)| DataAccess {
                block: BlockAddr(s + t * 64),
                write: w,
            }),
            1..12,
        ),
    )
}

proptest! {
    /// After every batched `access_data_run`, the directory matches both
    /// the protocol model and a block-at-a-time hierarchy, sharer masks
    /// and tombstones included.
    #[test]
    fn batched_data_runs_keep_directory_in_model_state(
        batches in prop::collection::vec(arb_batch(), 1..60),
    ) {
        let cfg = SimConfig::paper_default().with_cores(4);
        let mut run_m = Machine::new(&cfg);
        let mut blk_m = Machine::new(&cfg);
        let mut model = HierModel::new(&cfg);
        for (core, batch) in batches {
            run_m.access_data_run(CoreId(core), &batch, 0.0);
            for a in &batch {
                blk_m.access_data(CoreId(core), a.block, a.write);
                model.access(core, *a);
            }
            let run_dir = run_m.hierarchy().directory();
            let blk_dir = blk_m.hierarchy().directory();
            // Sharer mask and owner of every universe block agree with
            // the protocol model...
            for b in 0u64..(3 + 10 * 64 + 1) {
                let block = BlockAddr(b);
                let expected = model.dir.blocks.get(&b).copied();
                for c in 0..4 {
                    prop_assert_eq!(
                        run_dir.is_sharer(c, block),
                        expected.is_some_and(|(s, _)| s & (1 << c) != 0),
                        "core {} block {}", c, b
                    );
                }
                prop_assert_eq!(run_dir.owner(block), expected.and_then(|(_, o)| o));
            }
            // ...and the table's aggregate shape matches the per-block
            // hierarchy exactly: same live count, same tombstones (the
            // batched path must trigger the identical insert/remove
            // sequence), same load-factor invariant.
            prop_assert_eq!(run_dir.tracked_blocks(), model.dir.blocks.len());
            prop_assert_eq!(run_dir.tracked_blocks(), blk_dir.tracked_blocks());
            prop_assert_eq!(run_dir.tombstone_count(), blk_dir.tombstone_count());
            prop_assert!(
                (run_dir.tracked_blocks() + run_dir.tombstone_count()) * 8
                    <= run_dir.capacity() * 7
            );
        }
    }
}

proptest! {
    /// The directory agrees with the model after every operation, action
    /// payloads included, and the open-addressed table's load/tombstone
    /// invariant holds throughout arbitrary churn.
    #[test]
    fn directory_matches_hashmap_model(
        ops in prop::collection::vec((0usize..4, 0usize..6, 0u64..24), 1..500)
    ) {
        let mut dir = Directory::new();
        let mut model = Model::default();
        for (op, core, block) in ops {
            let b = BlockAddr(block);
            match op {
                0 => {
                    let action = dir.on_read(core, b);
                    let supplier = model.on_read(core, block);
                    prop_assert_eq!(action.supplier, supplier);
                    prop_assert!(action.invalidate.is_empty(), "reads never invalidate");
                }
                1 => {
                    let action = dir.on_write(core, b);
                    let (supplier, invalidate) = model.on_write(core, block);
                    prop_assert_eq!(action.supplier, supplier);
                    prop_assert_eq!(action.invalidate.0, invalidate);
                }
                2 => {
                    dir.on_evict(core, b);
                    model.on_evict(core, block);
                }
                _ => {
                    // Pure lookup round; state checked below like every op.
                }
            }
            // Full-state agreement on the touched block...
            let expected = model.blocks.get(&block).copied();
            prop_assert_eq!(
                dir.is_sharer(core, b),
                expected.is_some_and(|(s, _)| s & (1 << core) != 0)
            );
            prop_assert_eq!(dir.owner(b), expected.and_then(|(_, o)| o));
            // ...and aggregate agreement plus table invariants: live and
            // dead slots together never exceed the 7/8 load factor, so a
            // double-removal (which would double-count a tombstone) or a
            // rebuild that failed to reset the count breaks here.
            prop_assert_eq!(dir.tracked_blocks(), model.blocks.len());
            prop_assert!(
                (dir.tracked_blocks() + dir.tombstone_count()) * 8 <= dir.capacity() * 7,
                "load/tombstone invariant violated: len={} tombstones={} cap={}",
                dir.tracked_blocks(),
                dir.tombstone_count(),
                dir.capacity()
            );
        }
        // Terminal sweep: every block the model knows is visible with the
        // right sharers and owner; every block it dropped is gone.
        for b in 0u64..24 {
            let expected = model.blocks.get(&b).copied();
            for core in 0..6 {
                prop_assert_eq!(
                    dir.is_sharer(core, BlockAddr(b)),
                    expected.is_some_and(|(s, _)| s & (1 << core) != 0)
                );
            }
            prop_assert_eq!(dir.owner(BlockAddr(b)), expected.and_then(|(_, o)| o));
        }
    }
}
