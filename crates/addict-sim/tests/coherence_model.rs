//! Model-based property test for the open-addressed coherence directory:
//! random interleavings of insert (read/write), remove (evict), and lookup
//! are checked op-by-op against a `HashMap` reference model, together with
//! the table's tombstone-accounting invariants (the load-factor rebuild
//! resets tombstones; removal tombstones a block exactly once).

use std::collections::HashMap;

use addict_sim::coherence::Directory;
use addict_sim::BlockAddr;
use proptest::prelude::*;

/// Reference model: block -> (sharer bitmask, modified owner).
#[derive(Default)]
struct Model {
    blocks: HashMap<u64, (u64, Option<usize>)>,
}

impl Model {
    /// Mirrors `Directory::on_read`, returning the expected supplier.
    fn on_read(&mut self, core: usize, block: u64) -> Option<usize> {
        let entry = self.blocks.entry(block).or_insert((0, None));
        let supplier = match entry.1 {
            Some(o) if o != core => {
                entry.1 = None;
                Some(o)
            }
            _ => None,
        };
        entry.0 |= 1 << core;
        supplier
    }

    /// Mirrors `Directory::on_write`, returning (supplier, invalidate mask).
    fn on_write(&mut self, core: usize, block: u64) -> (Option<usize>, u64) {
        let entry = self.blocks.entry(block).or_insert((0, None));
        let supplier = entry.1.filter(|&o| o != core);
        let invalidate = entry.0 & !(1 << core);
        *entry = (1 << core, Some(core));
        (supplier, invalidate)
    }

    /// Mirrors `Directory::on_evict`.
    fn on_evict(&mut self, core: usize, block: u64) {
        if let Some(entry) = self.blocks.get_mut(&block) {
            entry.0 &= !(1 << core);
            if entry.1 == Some(core) {
                entry.1 = None;
            }
            if entry.0 == 0 {
                self.blocks.remove(&block);
            }
        }
    }
}

proptest! {
    /// The directory agrees with the model after every operation, action
    /// payloads included, and the open-addressed table's load/tombstone
    /// invariant holds throughout arbitrary churn.
    #[test]
    fn directory_matches_hashmap_model(
        ops in prop::collection::vec((0usize..4, 0usize..6, 0u64..24), 1..500)
    ) {
        let mut dir = Directory::new();
        let mut model = Model::default();
        for (op, core, block) in ops {
            let b = BlockAddr(block);
            match op {
                0 => {
                    let action = dir.on_read(core, b);
                    let supplier = model.on_read(core, block);
                    prop_assert_eq!(action.supplier, supplier);
                    prop_assert!(action.invalidate.is_empty(), "reads never invalidate");
                }
                1 => {
                    let action = dir.on_write(core, b);
                    let (supplier, invalidate) = model.on_write(core, block);
                    prop_assert_eq!(action.supplier, supplier);
                    prop_assert_eq!(action.invalidate.0, invalidate);
                }
                2 => {
                    dir.on_evict(core, b);
                    model.on_evict(core, block);
                }
                _ => {
                    // Pure lookup round; state checked below like every op.
                }
            }
            // Full-state agreement on the touched block...
            let expected = model.blocks.get(&block).copied();
            prop_assert_eq!(
                dir.is_sharer(core, b),
                expected.is_some_and(|(s, _)| s & (1 << core) != 0)
            );
            prop_assert_eq!(dir.owner(b), expected.and_then(|(_, o)| o));
            // ...and aggregate agreement plus table invariants: live and
            // dead slots together never exceed the 7/8 load factor, so a
            // double-removal (which would double-count a tombstone) or a
            // rebuild that failed to reset the count breaks here.
            prop_assert_eq!(dir.tracked_blocks(), model.blocks.len());
            prop_assert!(
                (dir.tracked_blocks() + dir.tombstone_count()) * 8 <= dir.capacity() * 7,
                "load/tombstone invariant violated: len={} tombstones={} cap={}",
                dir.tracked_blocks(),
                dir.tombstone_count(),
                dir.capacity()
            );
        }
        // Terminal sweep: every block the model knows is visible with the
        // right sharers and owner; every block it dropped is gone.
        for b in 0u64..24 {
            let expected = model.blocks.get(&b).copied();
            for core in 0..6 {
                prop_assert_eq!(
                    dir.is_sharer(core, BlockAddr(b)),
                    expected.is_some_and(|(s, _)| s & (1 << core) != 0)
                );
            }
            prop_assert_eq!(dir.owner(BlockAddr(b)), expected.and_then(|(_, o)| o));
        }
    }
}
