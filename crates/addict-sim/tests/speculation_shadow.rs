//! Model-based property tests for the speculation subsystem: arbitrary
//! interleavings of begin / speculative access / commit / abort / evict
//! across four cores drive a real [`Speculation`] + [`Directory`] pair
//! against a naive `HashSet`/`HashMap` shadow model, asserting after
//! **every** operation:
//!
//! * read/write-set membership, tracked-line counts, and active/doomed
//!   flags per core (the fixed-width bitmask windows vs naive sets);
//! * capacity-abort results of `record_access` (`Ok` vs `Err(Capacity)`);
//! * the peeked [`CoherenceAction`] against a protocol model of the
//!   directory (supplier and invalidate mask, byte-for-byte);
//! * holder-side dooming (`observe_action`) and requester-side
//!   time-overlap conflicts (`conflicts`) against the shadow's archive
//!   of closed windows;
//! * directory sharer/owner state over the whole block universe (the
//!   speculative protocol must leave the directory exactly as the plain
//!   block path would);
//! * the aggregate [`SpecStats`] ledger.
//!
//! Evictions deliberately touch only the directory: the model pins down
//! that speculation windows survive them (the documented
//! directory-as-sole-conflict-authority semantics).

use std::collections::{HashMap, HashSet};

use addict_sim::coherence::Directory;
use addict_sim::{
    AbortCause, BlockAddr, CoherenceAction, SpecConfig, SpecStats, Speculation, ARCHIVE_DEPTH,
};
use proptest::prelude::*;

const CORES: usize = 4;
const CAPACITY: usize = 6;

/// Protocol model of the directory: block -> (sharer mask, owner).
#[derive(Default)]
struct DirModel {
    blocks: HashMap<u64, (u64, Option<usize>)>,
}

impl DirModel {
    /// The action a read/write by `core` produces (pure, like the peeks).
    fn peek(&self, core: usize, block: u64, write: bool) -> (Option<usize>, u64) {
        let Some(&(sharers, owner)) = self.blocks.get(&block) else {
            return (None, 0);
        };
        let supplier = owner.filter(|&o| o != core);
        let invalidate = if write { sharers & !(1 << core) } else { 0 };
        (supplier, invalidate)
    }

    fn apply(&mut self, core: usize, block: u64, write: bool) {
        let entry = self.blocks.entry(block).or_insert((0, None));
        if write {
            *entry = (1 << core, Some(core));
        } else {
            if entry.1.is_some_and(|o| o != core) {
                entry.1 = None;
            }
            entry.0 |= 1 << core;
        }
    }

    fn evict(&mut self, core: usize, block: u64) {
        if let Some(entry) = self.blocks.get_mut(&block) {
            entry.0 &= !(1 << core);
            if entry.1 == Some(core) {
                entry.1 = None;
            }
            if entry.0 == 0 {
                self.blocks.remove(&block);
            }
        }
    }
}

/// Shadow of one closed window: its sets plus lifetime interval.
struct ShadowClosed {
    reads: HashSet<u64>,
    writes: HashSet<u64>,
    start: f64,
    end: f64,
}

/// Naive shadow of the whole speculation subsystem.
struct Shadow {
    dir: DirModel,
    active: Vec<bool>,
    doomed: Vec<bool>,
    since: Vec<f64>,
    reads: Vec<HashSet<u64>>,
    writes: Vec<HashSet<u64>>,
    archive: Vec<Vec<ShadowClosed>>,
    stats: SpecStats,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            dir: DirModel::default(),
            active: vec![false; CORES],
            doomed: vec![false; CORES],
            since: vec![0.0; CORES],
            reads: vec![HashSet::new(); CORES],
            writes: vec![HashSet::new(); CORES],
            archive: (0..CORES).map(|_| Vec::new()).collect(),
            stats: SpecStats::default(),
        }
    }

    fn begin(&mut self, core: usize, now: f64) {
        self.active[core] = true;
        self.doomed[core] = false;
        self.since[core] = now;
        self.reads[core].clear();
        self.writes[core].clear();
        self.stats.begins += 1;
    }

    fn close(&mut self, core: usize, end: f64) {
        let ring = &mut self.archive[core];
        if ring.len() == ARCHIVE_DEPTH {
            ring.remove(0);
        }
        ring.push(ShadowClosed {
            reads: std::mem::take(&mut self.reads[core]),
            writes: std::mem::take(&mut self.writes[core]),
            start: self.since[core],
            end,
        });
        self.active[core] = false;
        self.doomed[core] = false;
    }

    /// Mirrors `Speculation::record_access` (no-op when inactive).
    fn record(&mut self, core: usize, block: u64, write: bool) -> Result<(), AbortCause> {
        if !self.active[core] {
            return Ok(());
        }
        let tracked: HashSet<&u64> = self.reads[core].union(&self.writes[core]).collect();
        if !tracked.contains(&block) && tracked.len() >= CAPACITY {
            return Err(AbortCause::Capacity);
        }
        if write {
            self.writes[core].insert(block);
        } else {
            self.reads[core].insert(block);
        }
        Ok(())
    }

    /// Mirrors `Speculation::observe_action` over the model's action.
    fn observe(&mut self, actor: usize, block: u64, supplier: Option<usize>, invalidate: u64) {
        for victim in 0..CORES {
            if victim != actor
                && invalidate & (1 << victim) != 0
                && self.active[victim]
                && (self.reads[victim].contains(&block) || self.writes[victim].contains(&block))
            {
                self.doomed[victim] = true;
            }
        }
        if let Some(s) = supplier {
            if s != actor && self.active[s] && self.writes[s].contains(&block) {
                self.doomed[s] = true;
            }
        }
    }

    /// Mirrors `Speculation::conflicts` over the model's action.
    fn conflicts(
        &self,
        core: usize,
        block: u64,
        write: bool,
        now: f64,
        supplier: Option<usize>,
        invalidate: u64,
    ) -> bool {
        if !self.active[core] {
            return false;
        }
        let since = self.since[core];
        let check = |victim: usize| {
            victim != core
                && self.archive[victim].iter().any(|cw| {
                    cw.end >= since
                        && cw.start <= now
                        && (cw.writes.contains(&block) || (write && cw.reads.contains(&block)))
                })
        };
        (0..CORES).any(|v| invalidate & (1 << v) != 0 && check(v)) || supplier.is_some_and(check)
    }
}

/// One generated operation; `b` encodes a block from a small colliding
/// universe, `dt` advances the logical clock.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin,
    Access { write: bool },
    Commit,
    AbortConflict,
    Evict,
}

fn arb_op() -> impl Strategy<Value = (Op, usize, u64, u32)> {
    (
        prop_oneof![
            1 => Just(Op::Begin),
            5 => any::<bool>().prop_map(|write| Op::Access { write }),
            2 => Just(Op::Commit),
            1 => Just(Op::AbortConflict),
            1 => Just(Op::Evict),
        ],
        0usize..CORES,
        // 12 distinct lines: small enough to conflict and overflow the
        // 6-line capacity, large enough to form disjoint windows.
        0u64..12,
        1u32..50,
    )
}

proptest! {
    /// The real bitmask/archive implementation agrees with the naive
    /// set-based shadow after every operation, peeked actions, conflict
    /// verdicts, stats ledger, directory state, and all.
    #[test]
    fn speculation_matches_shadow_model(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut spec = Speculation::new(CORES, SpecConfig {
            capacity: CAPACITY,
            max_retries: 3,
        });
        let mut dir = Directory::new();
        let mut shadow = Shadow::new();
        let mut now = 0.0f64;

        for (op, core, block, dt) in ops {
            now += f64::from(dt);
            let b = BlockAddr(block);
            match op {
                Op::Begin => {
                    spec.begin(core, now);
                    shadow.begin(core, now);
                }
                Op::Access { write } => {
                    // Peek: the real action must match the protocol model.
                    let action: CoherenceAction = if write {
                        dir.peek_write(core, b)
                    } else {
                        dir.peek_read(core, b)
                    };
                    let (m_supplier, m_invalidate) = shadow.dir.peek(core, block, write);
                    prop_assert_eq!(action.supplier, m_supplier);
                    prop_assert_eq!(action.invalidate.0, m_invalidate);

                    // Requester-side conflict verdicts agree...
                    prop_assert_eq!(
                        spec.conflicts(core, b, write, now, &action),
                        shadow.conflicts(core, block, write, now, m_supplier, m_invalidate),
                        "conflict verdict diverged: core {} block {} write {}", core, block, write
                    );
                    // ...then holder-side dooming applies identically.
                    spec.observe_action(core, b, &action);
                    shadow.observe(core, block, m_supplier, m_invalidate);

                    // Recording the access aborts (capacity) identically.
                    let real = spec.record_access(core, b, write);
                    let model = shadow.record(core, block, write);
                    prop_assert_eq!(real, model, "record diverged on core {}", core);
                    if let Err(cause) = real {
                        spec.abort(core, cause, now);
                        shadow.close(core, now);
                        shadow.stats.aborts_capacity += 1;
                    }

                    // The access executes: both directories advance.
                    if write {
                        dir.on_write(core, b);
                    } else {
                        dir.on_read(core, b);
                    }
                    shadow.dir.apply(core, block, write);
                }
                Op::Commit => {
                    if spec.is_active(core) {
                        spec.commit(core, now);
                        shadow.close(core, now);
                        shadow.stats.commits += 1;
                    }
                }
                Op::AbortConflict => {
                    if spec.is_active(core) {
                        spec.abort(core, AbortCause::Conflict, now);
                        shadow.close(core, now);
                        shadow.stats.aborts_conflict += 1;
                    }
                }
                Op::Evict => {
                    // Evictions touch only the directory; windows survive.
                    dir.on_evict(core, b);
                    shadow.dir.evict(core, block);
                }
            }

            // Per-core window state agrees over the whole block universe.
            for c in 0..CORES {
                prop_assert_eq!(spec.is_active(c), shadow.active[c], "active flag, core {}", c);
                prop_assert_eq!(spec.is_doomed(c), shadow.doomed[c], "doomed flag, core {}", c);
                if shadow.active[c] {
                    let tracked: HashSet<&u64> =
                        shadow.reads[c].union(&shadow.writes[c]).collect();
                    prop_assert_eq!(spec.tracked_lines(c), tracked.len(), "tracked, core {}", c);
                }
                for probe in 0u64..12 {
                    let pb = BlockAddr(probe);
                    prop_assert_eq!(
                        spec.reads_contain(c, pb),
                        shadow.active[c] && shadow.reads[c].contains(&probe),
                        "read set, core {} block {}", c, probe
                    );
                    prop_assert_eq!(
                        spec.writes_contain(c, pb),
                        shadow.active[c] && shadow.writes[c].contains(&probe),
                        "write set, core {} block {}", c, probe
                    );
                }
            }
            // Directory state matches the protocol model: speculation
            // peeks must have left no trace.
            for probe in 0u64..12 {
                let pb = BlockAddr(probe);
                let expected = shadow.dir.blocks.get(&probe).copied();
                for c in 0..CORES {
                    prop_assert_eq!(
                        dir.is_sharer(c, pb),
                        expected.is_some_and(|(s, _)| s & (1 << c) != 0)
                    );
                }
                prop_assert_eq!(dir.owner(pb), expected.and_then(|(_, o)| o));
            }
            prop_assert_eq!(dir.tracked_blocks(), shadow.dir.blocks.len());
            // The stats ledger never drifts.
            prop_assert_eq!(spec.stats(), &shadow.stats);
        }
    }
}
