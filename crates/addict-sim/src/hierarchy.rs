//! The multi-level memory hierarchy: private L1s (plus an optional private
//! L2 in the deep configuration), a shared banked NUCA LLC, directory
//! coherence for L1-D, and main memory.
//!
//! Simplifications, applied equally to every scheduler (documented here and
//! in DESIGN.md):
//!
//! * the LLC is non-inclusive; LLC evictions do not back-invalidate L1s,
//! * LLC bank conflicts and NoC contention are not modeled,
//! * the directory tracks L1-D copies only; in the deep hierarchy a stale
//!   private-L2 copy may be re-read after its L1 line was invalidated, which
//!   slightly undercounts coherence traffic (timing-only effect, no values
//!   are stored).

use crate::block::{BlockAddr, DataAccess};
use crate::cache::SetAssocCache;
use crate::coherence::Directory;
use crate::config::{HierarchyKind, SimConfig};
use crate::interconnect::Torus;

/// Which level of the hierarchy serviced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Private L1 (I or D) hit.
    L1,
    /// Private L2 hit (deep hierarchy only).
    L2Private,
    /// Shared NUCA LLC hit.
    Llc,
    /// Dirty block supplied by another core's L1-D (cache-to-cache).
    RemoteL1,
    /// Off-chip main memory.
    Memory,
}

/// Everything the machine needs to account for one access.
#[derive(Debug, Clone, Copy)]
pub struct MemAccessResult {
    /// Level that serviced the request.
    pub level: ServiceLevel,
    /// Torus hops (one way) between the requesting core and the LLC bank,
    /// if LLC/NoC traffic occurred.
    pub hops: u32,
    /// Whether the private L2 was looked up / hit (deep hierarchy).
    pub l2p_accessed: bool,
    /// Private L2 hit.
    pub l2p_hit: bool,
    /// Whether an LLC bank was looked up.
    pub llc_accessed: bool,
    /// LLC lookup hit (or was satisfied on-chip by a remote L1).
    pub llc_hit: bool,
    /// Remote L1-D lines invalidated by this access (writes).
    pub invalidated_cores: u32,
    /// A remote L1-D supplied the block.
    pub c2c: bool,
    /// A dirty L1-D victim was written back.
    pub writeback: bool,
    /// Core that supplied / was downgraded, for stats attribution.
    pub supplier: Option<usize>,
}

impl MemAccessResult {
    fn l1_hit() -> Self {
        MemAccessResult {
            level: ServiceLevel::L1,
            hops: 0,
            l2p_accessed: false,
            l2p_hit: false,
            llc_accessed: false,
            llc_hit: false,
            invalidated_cores: 0,
            c2c: false,
            writeback: false,
            supplier: None,
        }
    }
}

/// Private caches of one core.
#[derive(Debug)]
struct CoreCaches {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2p: Option<SetAssocCache>,
}

/// The full memory hierarchy shared by all cores.
#[derive(Debug)]
pub struct Hierarchy {
    cores: Vec<CoreCaches>,
    llc_banks: Vec<SetAssocCache>,
    directory: Directory,
    /// Precomputed torus hop distances, indexed `core * n_banks + bank`.
    /// Every LLC access needs one, and the torus arithmetic (divs plus
    /// wrap-around min chains) is pure — resolve it once at build time.
    hops: Vec<u32>,
    /// `log2(n_banks)` when the bank count is a power of two (the paper
    /// machine: 16 cores, one bank each): [`Hierarchy::bank_of`] becomes
    /// mask/shift instead of mod/div.
    bank_shift: Option<u32>,
    next_line_prefetch: bool,
    prefetches_issued: u64,
    data_run_fast_hits: u64,
}

impl Hierarchy {
    /// Build the hierarchy described by `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        let cores = (0..cfg.n_cores)
            .map(|_| CoreCaches {
                l1i: SetAssocCache::new(cfg.l1i),
                l1d: SetAssocCache::new(cfg.l1d),
                l2p: matches!(cfg.hierarchy, HierarchyKind::Deep)
                    .then(|| SetAssocCache::new(cfg.l2_private)),
            })
            .collect();
        let llc_banks: Vec<SetAssocCache> = (0..cfg.n_cores)
            .map(|_| SetAssocCache::new(cfg.llc_per_core))
            .collect();
        let torus = Torus::for_nodes(cfg.n_cores);
        let n_banks = llc_banks.len();
        let hops = (0..cfg.n_cores)
            .flat_map(|c| (0..n_banks).map(move |b| torus.hops(c, b)))
            .collect();
        Hierarchy {
            cores,
            llc_banks,
            // One directory shard per core, mirroring the LLC bank layout
            // (per-block behavior is shard-count independent).
            directory: Directory::with_shards(cfg.n_cores),
            hops,
            bank_shift: n_banks.is_power_of_two().then(|| n_banks.trailing_zeros()),
            next_line_prefetch: cfg.l1i_next_line_prefetch,
            prefetches_issued: 0,
            data_run_fast_hits: 0,
        }
    }

    /// Next-line prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    #[inline]
    fn bank_of(&self, block: BlockAddr) -> (usize, BlockAddr) {
        // Low bits interleave blocks across banks; the remaining bits index
        // within the bank so bank sets are used uniformly. Mask/shift and
        // mod/div agree exactly for power-of-two bank counts.
        let n = self.llc_banks.len() as u64;
        match self.bank_shift {
            Some(s) => ((block.0 & (n - 1)) as usize, BlockAddr(block.0 >> s)),
            None => ((block.0 % n) as usize, BlockAddr(block.0 / n)),
        }
    }

    /// The LLC bank `block` maps to — pure, for callers that group a data
    /// run's coherent tail by bank before servicing it.
    #[inline]
    pub fn bank_of_block(&self, block: BlockAddr) -> usize {
        self.bank_of(block).0
    }

    /// Warm the host cache lines a coherent access to `block` will chase:
    /// the LLC bank set and the directory probe head (best-effort hints;
    /// nothing simulated is read or written, so behavior and results are
    /// bit-identical with or without the call). The per-core L1 tag
    /// arrays are small enough to stay host-resident on their own; the
    /// LLC tag arrays and directory tables are the structures that fall
    /// out of the host cache once the workload's footprint outgrows it.
    #[inline]
    pub fn prefetch_data(&self, block: BlockAddr) {
        let (bank, bank_block) = self.bank_of(block);
        self.llc_banks[bank].prefetch(bank_block);
        self.directory.prefetch(block);
    }

    /// Precomputed torus hop distance from `core` to `bank`.
    #[inline]
    fn hops_of(&self, core: usize, bank: usize) -> u32 {
        self.hops[core * self.llc_banks.len() + bank]
    }

    /// Look up the LLC, filling on miss. Returns (hit, hops).
    fn llc_access(&mut self, core: usize, block: BlockAddr) -> (bool, u32) {
        let (bank, bank_block) = self.bank_of(block);
        let hops = self.hops_of(core, bank);
        let out = self.llc_banks[bank].access(bank_block);
        (out.hit, hops)
    }

    /// Fill the LLC with `block` without classifying hit/miss (writebacks,
    /// M->S downgrades).
    fn llc_fill(&mut self, block: BlockAddr) {
        let (bank, bank_block) = self.bank_of(block);
        self.llc_banks[bank].access_write(bank_block);
    }

    /// Fetch one instruction block on `core`.
    pub fn fetch_instr(&mut self, core: usize, block: BlockAddr) -> MemAccessResult {
        let hit = self.cores[core].l1i.access(block).hit;
        if self.next_line_prefetch {
            // Pull the sequentially next block into the L1-I in the
            // background on every fetch (no demand latency charged; the
            // prefetch also warms the LLC, like a real next-line engine).
            let next = BlockAddr(block.0 + 1);
            if !self.cores[core].l1i.contains(next) {
                self.cores[core].l1i.access(next);
                let (bank, bank_block) = self.bank_of(next);
                self.llc_banks[bank].access(bank_block);
                self.prefetches_issued += 1;
            }
        }
        if hit {
            return MemAccessResult::l1_hit();
        }
        self.instr_miss_tail(core, block)
    }

    /// Fetch an instruction block whose L1-I lookup is *known* to miss
    /// (a [`Hierarchy::l1i_run_hits`] walk stopped at it): fills the line
    /// without re-scanning for a hit, then services the lower levels. Only
    /// valid with the next-line prefetcher off (the segment walker's
    /// precondition).
    pub fn fetch_instr_after_l1i_miss(&mut self, core: usize, block: BlockAddr) -> MemAccessResult {
        debug_assert!(
            !self.next_line_prefetch,
            "walker path excludes the prefetcher"
        );
        self.cores[core].l1i.fill_miss(block);
        self.instr_miss_tail(core, block)
    }

    /// The below-L1 portion of an instruction fetch (private L2 if any,
    /// then LLC, then memory).
    fn instr_miss_tail(&mut self, core: usize, block: BlockAddr) -> MemAccessResult {
        let mut res = MemAccessResult::l1_hit();
        if let Some(l2p) = self.cores[core].l2p.as_mut() {
            res.l2p_accessed = true;
            if l2p.access(block).hit {
                res.level = ServiceLevel::L2Private;
                res.l2p_hit = true;
                return res;
            }
        }
        res.llc_accessed = true;
        let (hit, hops) = self.llc_access(core, block);
        res.hops = hops;
        res.llc_hit = hit;
        res.level = if hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Memory
        };
        res
    }

    /// Access one data block on `core`.
    pub fn access_data(&mut self, core: usize, block: BlockAddr, write: bool) -> MemAccessResult {
        let mut res = MemAccessResult::l1_hit();

        // Coherence: establish ownership / sharing before the local lookup.
        let action = if write {
            self.directory.on_write(core, block)
        } else {
            self.directory.on_read(core, block)
        };
        for victim_core in action.invalidate.iter() {
            if self.cores[victim_core].l1d.invalidate(block).is_some() {
                res.invalidated_cores += 1;
            }
        }
        if let Some(supplier) = action.supplier {
            // Dirty remote copy: on a read it downgrades and writes back to
            // the LLC; on a write it was invalidated above. Either way the
            // LLC now holds the block and the data travels cache-to-cache.
            if !write {
                self.cores[supplier].l1d.clean(block);
            }
            self.llc_fill(block);
            res.c2c = true;
            res.supplier = Some(supplier);
        }

        // Local L1-D lookup.
        let l1_out = if write {
            self.cores[core].l1d.access_write(block)
        } else {
            self.cores[core].l1d.access(block)
        };
        if let Some(victim) = l1_out.evicted {
            let dirty = self.directory.owner(victim) == Some(core);
            self.directory.on_evict(core, victim);
            if dirty {
                self.llc_fill(victim);
                res.writeback = true;
            }
        }
        if l1_out.hit {
            // Still an L1 hit for timing even if remote copies were
            // invalidated (upgrade latency not modeled).
            return res;
        }

        if res.c2c {
            // The block is being supplied by a remote L1 through the LLC.
            res.level = ServiceLevel::RemoteL1;
            res.llc_accessed = true;
            res.llc_hit = true;
            let (bank, _) = self.bank_of(block);
            res.hops = self.hops_of(core, bank);
            if let Some(l2p) = self.cores[core].l2p.as_mut() {
                l2p.access(block);
            }
            return res;
        }

        if let Some(l2p) = self.cores[core].l2p.as_mut() {
            res.l2p_accessed = true;
            if l2p.access(block).hit {
                res.level = ServiceLevel::L2Private;
                res.l2p_hit = true;
                return res;
            }
        }

        res.llc_accessed = true;
        let (hit, hops) = self.llc_access(core, block);
        res.hops = hops;
        res.llc_hit = hit;
        res.level = if hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Memory
        };
        res
    }

    /// Consume the leading *private* accesses of `run` on `core`'s L1-D:
    /// read hits, and write hits on already-dirty lines. The directory is
    /// **never consulted** — an L1-D hit proves the coherence transaction
    /// the per-block path would run is a no-op:
    ///
    /// * a block enters an L1-D only through [`Hierarchy::access_data`],
    ///   which records the core in the directory first, and leaves it only
    ///   through eviction (`on_evict`) or remote invalidation — so a
    ///   resident block always has its core recorded as a sharer, making
    ///   `on_read` idempotent (a remote modified owner is impossible: the
    ///   owner's write would have invalidated this copy);
    /// * a *dirty* resident line exists only while the directory records
    ///   this core as the modified owner (writes set both; downgrades and
    ///   invalidations clear both), making `on_write` idempotent too.
    ///
    /// The walk stops before the first miss, or before a write to a clean
    /// line (an S→M upgrade the directory must see) — the caller services
    /// that access through the ordinary [`Hierarchy::access_data`] path.
    /// Returns the accesses consumed; each is an L1 hit charging zero
    /// stall cycles.
    #[inline]
    pub fn l1d_run_hits(&mut self, core: usize, run: &[DataAccess]) -> usize {
        let n = self.cores[core].l1d.data_run_hits(run);
        self.data_run_fast_hits += n as u64;
        n
    }

    /// Data accesses consumed by the [`Hierarchy::l1d_run_hits`] fast lane
    /// so far (diagnostic, like [`Hierarchy::prefetches_issued`]: proves
    /// the run path engaged without perturbing [`MemAccessResult`]-derived
    /// statistics).
    pub fn data_run_fast_hits(&self) -> u64 {
        self.data_run_fast_hits
    }

    /// Read-only view of the coherence directory (diagnostics and the
    /// model-based coherence tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Consume up to `max` consecutive instruction-block *hits* in `core`'s
    /// L1-I, refreshing recency exactly like per-block [`Hierarchy::fetch_instr`]
    /// calls would. Stops before the first miss (the caller services it
    /// through the ordinary miss path). Only valid when the next-line
    /// prefetcher is off — the prefetcher mutates per-fetch state that this
    /// fast walk does not model.
    #[inline]
    pub fn l1i_run_hits(&mut self, core: usize, start: BlockAddr, max: u16) -> u16 {
        debug_assert!(
            !self.next_line_prefetch,
            "l1i_run_hits bypasses the next-line prefetcher"
        );
        self.cores[core].l1i.run_hits(start, max)
    }

    /// Is the next-line L1-I prefetcher enabled? (Drivers pick the
    /// per-block path when it is, since prefetch issue is per-fetch state.)
    pub fn has_next_line_prefetch(&self) -> bool {
        self.next_line_prefetch
    }

    /// Does `core`'s L1-I currently hold `block`? (SLICC's remote-presence
    /// heuristic probes this; probing does not disturb recency.)
    pub fn l1i_contains(&self, core: usize, block: BlockAddr) -> bool {
        self.cores[core].l1i.contains(block)
    }

    /// Valid lines currently in `core`'s L1-I.
    pub fn l1i_occupancy(&self, core: usize) -> usize {
        self.cores[core].l1i.occupancy()
    }

    /// Drop all lines of `core`'s L1-I.
    pub fn flush_l1i(&mut self, core: usize) {
        self.cores[core].l1i.flush();
    }

    /// Directory diagnostics: number of tracked data blocks.
    pub fn tracked_data_blocks(&self) -> usize {
        self.directory.tracked_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shallow() -> Hierarchy {
        Hierarchy::new(&SimConfig::paper_default().with_cores(4))
    }

    fn deep() -> Hierarchy {
        Hierarchy::new(&SimConfig::paper_deep().with_cores(4))
    }

    #[test]
    fn instr_first_touch_goes_to_memory_then_llc_then_l1() {
        let mut h = shallow();
        let b = BlockAddr(0x1000);
        assert_eq!(h.fetch_instr(0, b).level, ServiceLevel::Memory);
        // Second fetch on the same core: L1 hit.
        assert_eq!(h.fetch_instr(0, b).level, ServiceLevel::L1);
        // Same block on another core: LLC hit (constructive sharing).
        assert_eq!(h.fetch_instr(1, b).level, ServiceLevel::Llc);
    }

    #[test]
    fn deep_hierarchy_inserts_private_l2() {
        let mut h = deep();
        let b = BlockAddr(0x2000);
        assert_eq!(h.fetch_instr(0, b).level, ServiceLevel::Memory);
        // Evict it from L1-I by filling the set; 32KB 8-way, 64 sets: blocks
        // congruent mod 64 collide.
        for i in 1..=8u64 {
            h.fetch_instr(0, BlockAddr(0x2000 + i * 64));
        }
        // L1 misses now, but the private L2 still holds it.
        let res = h.fetch_instr(0, b);
        assert_eq!(res.level, ServiceLevel::L2Private);
        assert!(res.l2p_accessed && res.l2p_hit);
    }

    #[test]
    fn data_write_invalidates_remote_copies() {
        let mut h = shallow();
        let b = BlockAddr(0x3000);
        h.access_data(0, b, false);
        h.access_data(1, b, false);
        let res = h.access_data(2, b, true);
        assert_eq!(res.invalidated_cores, 2);
        // Core 0 re-reads: its copy is gone, but the LLC has it.
        let res = h.access_data(0, b, false);
        assert_ne!(res.level, ServiceLevel::L1);
    }

    #[test]
    fn dirty_remote_block_supplied_cache_to_cache() {
        let mut h = shallow();
        let b = BlockAddr(0x4000);
        h.access_data(0, b, true); // core 0 dirties it
        let res = h.access_data(1, b, false);
        assert_eq!(res.level, ServiceLevel::RemoteL1);
        assert!(res.c2c);
        assert_eq!(res.supplier, Some(0));
        // After the downgrade both cores share it cleanly; core 1 hits.
        assert_eq!(h.access_data(1, b, false).level, ServiceLevel::L1);
    }

    #[test]
    fn migration_leaves_data_behind() {
        // The Section 4.3 effect: a thread moving cores misses on data it
        // already touched.
        let mut h = shallow();
        let b = BlockAddr(0x5000);
        h.access_data(0, b, false);
        assert_eq!(h.access_data(0, b, false).level, ServiceLevel::L1);
        // "Migrate" to core 3: the first access there is not an L1 hit.
        let res = h.access_data(3, b, false);
        assert_eq!(res.level, ServiceLevel::Llc);
    }

    #[test]
    fn l1i_probe_and_flush() {
        let mut h = shallow();
        let b = BlockAddr(0x6000);
        h.fetch_instr(2, b);
        assert!(h.l1i_contains(2, b));
        assert!(!h.l1i_contains(0, b));
        assert_eq!(h.l1i_occupancy(2), 1);
        h.flush_l1i(2);
        assert!(!h.l1i_contains(2, b));
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut h = shallow();
        // Dirty a block, then evict it by filling its L1-D set (8 ways,
        // 64 sets -> blocks congruent mod 64).
        let b = BlockAddr(0x7000);
        h.access_data(0, b, true);
        let mut saw_writeback = false;
        for i in 1..=8u64 {
            let r = h.access_data(0, BlockAddr(0x7000 + i * 64), false);
            saw_writeback |= r.writeback;
        }
        assert!(saw_writeback, "dirty victim should have been written back");
        // The written-back block is now an LLC hit from any core.
        assert_eq!(h.access_data(1, b, false).level, ServiceLevel::Llc);
    }

    #[test]
    fn next_line_prefetch_hides_sequential_misses() {
        let mut cfg = SimConfig::paper_default().with_cores(2);
        cfg.l1i_next_line_prefetch = true;
        let mut h = Hierarchy::new(&cfg);
        // Sequential fetch: every second block was prefetched.
        let mut misses = 0;
        for i in 0..64u64 {
            if h.fetch_instr(0, BlockAddr(0x4000 + i)).level != ServiceLevel::L1 {
                misses += 1;
            }
        }
        assert!(
            misses <= 2,
            "sequential stream should be nearly all hits, got {misses}"
        );
        assert!(h.prefetches_issued() >= 32);

        // Without the prefetcher every cold block misses.
        let mut h = Hierarchy::new(&SimConfig::paper_default().with_cores(2));
        let mut misses = 0;
        for i in 0..64u64 {
            if h.fetch_instr(0, BlockAddr(0x4000 + i)).level != ServiceLevel::L1 {
                misses += 1;
            }
        }
        assert_eq!(misses, 64);
        assert_eq!(h.prefetches_issued(), 0);
    }

    #[test]
    fn l1d_run_hits_never_touches_the_directory() {
        let mut h = shallow();
        let blocks = [0x8000u64, 0x8001, 0x8002];
        for &b in &blocks {
            h.access_data(0, BlockAddr(b), false);
        }
        h.access_data(0, BlockAddr(0x8003), true);
        let tracked = h.tracked_data_blocks();
        let run: Vec<DataAccess> = [
            (0x8000u64, false),
            (0x8001, false),
            (0x8003, true), // dirty write hit: still private
            (0x8002, false),
            (0x9999, false), // cold: stops the walk
        ]
        .iter()
        .map(|&(b, write)| DataAccess {
            block: BlockAddr(b),
            write,
        })
        .collect();
        assert_eq!(h.l1d_run_hits(0, &run), 4);
        assert_eq!(h.data_run_fast_hits(), 4);
        // No directory entry appeared or changed shape.
        assert_eq!(h.tracked_data_blocks(), tracked);
        assert!(!h.directory().is_sharer(0, BlockAddr(0x9999)));
        assert_eq!(h.directory().owner(BlockAddr(0x8003)), Some(0));
    }

    #[test]
    fn l1d_run_hits_stops_at_shared_write() {
        let mut h = shallow();
        let b = BlockAddr(0xa000);
        h.access_data(0, b, false);
        h.access_data(1, b, false); // now shared by cores 0 and 1
        let run = [DataAccess {
            block: b,
            write: true,
        }];
        // Core 0 holds the block, but writing it must invalidate core 1:
        // the fast lane refuses (clean line), the coherent path handles it.
        assert_eq!(h.l1d_run_hits(0, &run), 0);
        let res = h.access_data(0, b, true);
        assert_eq!(res.invalidated_cores, 1);
    }

    #[test]
    fn llc_interleaves_across_banks() {
        let h = shallow();
        let (b0, _) = h.bank_of(BlockAddr(0));
        let (b1, _) = h.bank_of(BlockAddr(1));
        let (b4, _) = h.bank_of(BlockAddr(4));
        assert_ne!(b0, b1);
        assert_eq!(b0, b4); // 4 cores -> 4 banks, wraps around
    }

    #[test]
    fn pow2_bank_mapping_matches_mod_div() {
        // The mask/shift fast path must agree with the generic mod/div
        // mapping for every block, and the odd-bank-count config must
        // still take the generic path.
        let h = Hierarchy::new(&SimConfig::paper_default().with_cores(16));
        assert!(h.bank_shift.is_some());
        let g = Hierarchy::new(&SimConfig::paper_default().with_cores(6));
        assert!(g.bank_shift.is_none());
        for b in (0..4096u64).chain([u64::MAX - 17, 1 << 40, (1 << 52) + 3]) {
            let block = BlockAddr(b);
            assert_eq!(
                h.bank_of(block),
                (((b % 16) as usize), BlockAddr(b / 16)),
                "block {b}"
            );
            assert_eq!(h.bank_of_block(block), (b % 16) as usize);
            assert_eq!(g.bank_of(block), (((b % 6) as usize), BlockAddr(b / 6)));
        }
    }

    #[test]
    fn hops_table_matches_torus() {
        for n in [1usize, 4, 6, 16] {
            let h = Hierarchy::new(&SimConfig::paper_default().with_cores(n));
            let t = Torus::for_nodes(n);
            for core in 0..n {
                for bank in 0..n {
                    assert_eq!(
                        h.hops_of(core, bank),
                        t.hops(core, bank),
                        "{n} {core} {bank}"
                    );
                }
            }
        }
    }
}
