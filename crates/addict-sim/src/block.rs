//! Cache-block addressing.
//!
//! Everything in the simulator (and in the trace format of `addict-trace`)
//! operates at the granularity of 64-byte cache blocks, matching the block
//! size the paper measures footprints in ("the unique 64 byte cache blocks
//! requested by each operation", Section 2.1).

use serde::{Deserialize, Serialize};

/// Size of a cache block in bytes. Fixed at 64 B to match Table 1.
pub const BLOCK_BYTES: u64 = 64;

/// The address of one 64-byte cache block.
///
/// A `BlockAddr` is a *block number*, not a byte address: byte address
/// `0x8b5f40` lives in block `0x8b5f40 / 64`. Instruction and data blocks
/// share this type but live in disjoint synthetic address regions (see
/// `addict-trace::codemap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Block containing the given byte address.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> Self {
        BlockAddr(addr / BLOCK_BYTES)
    }

    /// First byte address covered by this block.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 * BLOCK_BYTES
    }
}

/// One data access at block granularity: the block touched and whether it
/// is a store. The unit of the run-granular data path: consecutive
/// same-core accesses coalesce into `&[DataAccess]` runs that
/// [`Machine::access_data_run`](crate::Machine::access_data_run) executes
/// without per-event dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataAccess {
    /// Data block touched.
    pub block: BlockAddr,
    /// Store (true) or load (false).
    pub write: bool,
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.byte_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_from_byte_addr_rounds_down() {
        assert_eq!(BlockAddr::from_byte_addr(0), BlockAddr(0));
        assert_eq!(BlockAddr::from_byte_addr(63), BlockAddr(0));
        assert_eq!(BlockAddr::from_byte_addr(64), BlockAddr(1));
        assert_eq!(BlockAddr::from_byte_addr(6400), BlockAddr(100));
    }

    #[test]
    fn byte_addr_is_block_start() {
        assert_eq!(BlockAddr(3).byte_addr(), 192);
        let b = BlockAddr::from_byte_addr(1000);
        assert!(b.byte_addr() <= 1000 && 1000 < b.byte_addr() + BLOCK_BYTES);
    }

    #[test]
    fn display_is_hex_byte_address() {
        assert_eq!(format!("{}", BlockAddr(1)), "0x40");
    }
}
