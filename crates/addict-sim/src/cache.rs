//! A set-associative cache with true-LRU replacement.
//!
//! This single structure backs every cache in the simulated machine (L1-I,
//! L1-D, private L2, shared LLC banks) and is also used standalone by
//! ADDICT's Algorithm 1, which tracks the eviction behaviour of an empty
//! L1-I over an instruction stream to pick migration points.

use crate::block::BlockAddr;
use crate::config::CacheGeometry;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Did the block hit?
    pub hit: bool,
    /// Block evicted to make room, if the access was a filling miss and the
    /// target set was full.
    pub evicted: Option<BlockAddr>,
}

impl AccessOutcome {
    /// A plain hit.
    pub const HIT: AccessOutcome = AccessOutcome {
        hit: true,
        evicted: None,
    };
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    valid: bool,
    dirty: bool,
}

const INVALID_LINE: Line = Line {
    block: BlockAddr(0),
    stamp: 0,
    valid: false,
    dirty: false,
};

/// Best-effort host prefetch of the cache line holding `*p`. A pure hint:
/// no architectural load happens, so it cannot change simulated state or
/// results — only when host memory traffic occurs. No-op off x86_64.
#[inline(always)]
pub(crate) fn prefetch_ptr<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// A set-associative cache with true-LRU replacement, operating on
/// [`BlockAddr`]s. Stores no payload bytes — only presence, recency, and a
/// dirty bit (enough for miss accounting and write-back modeling).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    /// `n_sets - 1`; set geometry is validated power-of-two, so indexing is
    /// a mask rather than a 64-bit modulo (the replay hot loop runs this on
    /// every instruction block).
    set_mask: u64,
    ways: usize,
    tick: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let n_sets = geom.n_sets();
        let ways = geom.ways as usize;
        SetAssocCache {
            lines: vec![INVALID_LINE; (n_sets as usize) * ways],
            set_mask: n_sets - 1,
            ways,
            tick: 0,
        }
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        (block.0 & self.set_mask) as usize
    }

    /// Warm the host cache lines holding `block`'s set (best-effort hint;
    /// issues no observable loads, so simulated state is untouched). The
    /// replay engine calls this for a data run's coherent tail before
    /// walking it: at scale the LLC tag arrays outgrow the host L2, and
    /// the serial walk otherwise eats one demand miss per set probe.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let start = self.set_index(block) * self.ways;
        let set = &self.lines[start..start + self.ways];
        let base = set.as_ptr() as *const u8;
        let bytes = std::mem::size_of_val(set);
        let mut off = 0;
        while off < bytes {
            // In-bounds: `off < bytes` and the slice owns `bytes` bytes.
            prefetch_ptr(unsafe { base.add(off) });
            off += 64;
        }
    }

    #[inline]
    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    /// Access `block`, filling it on a miss. Returns hit/miss and any victim.
    pub fn access(&mut self, block: BlockAddr) -> AccessOutcome {
        self.access_inner(block, false)
    }

    /// Access `block` as a write (marks the line dirty).
    pub fn access_write(&mut self, block: BlockAddr) -> AccessOutcome {
        self.access_inner(block, true)
    }

    fn access_inner(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);
        let lines = self.set_lines(set);

        // Hit path.
        for line in lines.iter_mut() {
            if line.valid && line.block == block {
                line.stamp = tick;
                line.dirty |= write;
                return AccessOutcome::HIT;
            }
        }

        let evicted = Self::install(lines, block, tick, write);
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Fill `block` into its set after a proven miss: fill an invalid way,
    /// else evict the LRU way. The single replacement policy shared by
    /// [`SetAssocCache::access`] and [`SetAssocCache::fill_miss`] — keeping
    /// it in one place is what keeps the segment-granular path's eviction
    /// choices identical to the per-block path's.
    #[inline]
    fn install(lines: &mut [Line], block: BlockAddr, tick: u64, dirty: bool) -> Option<BlockAddr> {
        let mut victim_idx = 0;
        let mut victim_stamp = u64::MAX;
        for (i, line) in lines.iter().enumerate() {
            if !line.valid {
                victim_idx = i;
                break;
            }
            if line.stamp < victim_stamp {
                victim_stamp = line.stamp;
                victim_idx = i;
            }
        }
        let victim = lines[victim_idx];
        let evicted = victim.valid.then_some(victim.block);
        lines[victim_idx] = Line {
            block,
            stamp: tick,
            valid: true,
            dirty,
        };
        evicted
    }

    /// Walk up to `max` *consecutive* blocks starting at `start`, consuming
    /// leading hits: each hit refreshes LRU recency exactly as
    /// [`SetAssocCache::access`] would, and the walk stops *before* the
    /// first miss (which the caller services through the ordinary miss
    /// path). Returns the number of hits consumed.
    ///
    /// This is the replay engine's segment-granular hot loop: consecutive
    /// blocks land in consecutive sets, so the set arithmetic is hoisted to
    /// one masked add per block and no [`AccessOutcome`] is materialized.
    pub fn run_hits(&mut self, start: BlockAddr, max: u16) -> u16 {
        let ways = self.ways;
        let mut n = 0u16;
        'walk: while n < max {
            let addr = start.0 + u64::from(n);
            let base = (addr & self.set_mask) as usize * ways;
            let lines = &mut self.lines[base..base + ways];
            for line in lines {
                if line.valid && line.block.0 == addr {
                    self.tick += 1;
                    line.stamp = self.tick;
                    n += 1;
                    continue 'walk;
                }
            }
            break;
        }
        n
    }

    /// Consume the longest prefix of `run` that stays in the *private fast
    /// lane*: every access hits, and writes only touch lines that are
    /// already dirty. Each consumed access refreshes LRU recency exactly as
    /// [`SetAssocCache::access`] / [`SetAssocCache::access_write`] would (a
    /// write hit on a dirty line leaves the dirty bit set, so no line state
    /// changes at all). The walk stops *before* the first miss or
    /// clean-line write — the caller services that access through the
    /// ordinary coherent path (for an L1-D, a clean-line write is an S→M
    /// upgrade the directory must see). Returns the accesses consumed.
    ///
    /// This is the data-side counterpart of [`SetAssocCache::run_hits`]:
    /// one tight loop with the set mask and way count hoisted into
    /// registers, no per-access dispatch, and no [`AccessOutcome`]
    /// materialized.
    pub fn data_run_hits(&mut self, run: &[crate::block::DataAccess]) -> usize {
        let ways = self.ways;
        let mut n = 0usize;
        'walk: while n < run.len() {
            let crate::block::DataAccess { block, write } = run[n];
            let base = (block.0 & self.set_mask) as usize * ways;
            let lines = &mut self.lines[base..base + ways];
            for line in lines {
                if line.valid && line.block == block {
                    if write && !line.dirty {
                        // Upgrade: leave it to the coherent path.
                        break 'walk;
                    }
                    self.tick += 1;
                    line.stamp = self.tick;
                    n += 1;
                    continue 'walk;
                }
            }
            break;
        }
        n
    }

    /// Fill `block` after the caller has already proven it absent (e.g. a
    /// [`SetAssocCache::run_hits`] walk stopped here): skips the hit scan
    /// and goes straight to victim selection. Tick, stamp, and eviction
    /// choice are identical to [`SetAssocCache::access`] on a miss.
    pub fn fill_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        debug_assert!(!self.contains(block), "fill_miss of a resident block");
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);
        let lines = self.set_lines(set);
        Self::install(lines, block, tick, false)
    }

    /// Probe without updating recency or filling (used by SLICC's
    /// remote-presence check and by coherence).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let set = self.set_index(block);
        let start = set * self.ways;
        self.lines[start..start + self.ways]
            .iter()
            .any(|l| l.valid && l.block == block)
    }

    /// Invalidate `block` if present; returns whether the line was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let set = self.set_index(block);
        for line in self.set_lines(set) {
            if line.valid && line.block == block {
                let dirty = line.dirty;
                line.valid = false;
                line.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Clear the dirty bit of `block` (coherence downgrade M→S).
    pub fn clean(&mut self, block: BlockAddr) {
        let set = self.set_index(block);
        for line in self.set_lines(set) {
            if line.valid && line.block == block {
                line.dirty = false;
                return;
            }
        }
    }

    /// Drop every line (Algorithm 1 resets the L1-I at transaction/operation
    /// boundaries and on every eviction-causing access).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = INVALID_LINE;
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Total capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.lines.len()
    }

    /// Iterate over all resident blocks (diagnostics, tests).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| l.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(4 * 64, 2))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(BlockAddr(0)).hit);
        assert!(c.access(BlockAddr(0)).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.access(BlockAddr(0));
        c.access(BlockAddr(2));
        // Touch 0 so 2 becomes LRU.
        c.access(BlockAddr(0));
        let out = c.access(BlockAddr(4));
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(BlockAddr(2)));
        assert!(c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(4)));
        assert!(!c.contains(BlockAddr(2)));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(BlockAddr(0)); // set 0
        c.access(BlockAddr(1)); // set 1
        c.access(BlockAddr(2)); // set 0
        c.access(BlockAddr(3)); // set 1
        assert_eq!(c.occupancy(), 4);
        assert!(c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(1)));
    }

    #[test]
    fn eviction_only_when_set_full() {
        let mut c = tiny();
        assert_eq!(c.access(BlockAddr(0)).evicted, None);
        assert_eq!(c.access(BlockAddr(2)).evicted, None);
        assert!(c.access(BlockAddr(4)).evicted.is_some());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access_write(BlockAddr(0));
        c.access(BlockAddr(1));
        assert_eq!(c.invalidate(BlockAddr(0)), Some(true));
        assert_eq!(c.invalidate(BlockAddr(1)), Some(false));
        assert_eq!(c.invalidate(BlockAddr(7)), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn clean_downgrades_dirty_line() {
        let mut c = tiny();
        c.access_write(BlockAddr(0));
        c.clean(BlockAddr(0));
        assert_eq!(c.invalidate(BlockAddr(0)), Some(false));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for i in 0..4 {
            c.access(BlockAddr(i));
        }
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(BlockAddr(0)));
        // After a flush the next access misses again.
        assert!(!c.access(BlockAddr(0)).hit);
    }

    #[test]
    fn contains_does_not_perturb_lru() {
        let mut c = tiny();
        c.access(BlockAddr(0));
        c.access(BlockAddr(2));
        // Probing 0 must NOT refresh it...
        assert!(c.contains(BlockAddr(0)));
        // ...so 0 is still the LRU victim.
        let out = c.access(BlockAddr(4));
        assert_eq!(out.evicted, Some(BlockAddr(0)));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(BlockAddr(0));
        c.access_write(BlockAddr(0));
        assert_eq!(c.invalidate(BlockAddr(0)), Some(true));
    }

    #[test]
    fn run_hits_consumes_resident_prefix() {
        let mut c = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8));
        for i in 0..6u64 {
            c.access(BlockAddr(0x100 + i));
        }
        // Blocks 0x100..0x106 resident, 0x106 cold: 6 hits, stop at miss.
        assert_eq!(c.run_hits(BlockAddr(0x100), 16), 6);
        // The miss block was not filled by the walk.
        assert!(!c.contains(BlockAddr(0x106)));
        // Bounded by max.
        assert_eq!(c.run_hits(BlockAddr(0x100), 4), 4);
        // Cold start: zero hits.
        assert_eq!(c.run_hits(BlockAddr(0x9000), 8), 0);
    }

    #[test]
    fn run_hits_refreshes_lru_like_access() {
        // Two identical caches; one touched via access(), one via
        // run_hits(). Their subsequent eviction choices must agree.
        let mut a = tiny();
        let mut b = tiny();
        for c in [&mut a, &mut b] {
            c.access(BlockAddr(0));
            c.access(BlockAddr(2)); // set 0 now holds 0 (LRU) and 2 (MRU)
        }
        a.access(BlockAddr(0)); // refresh 0 -> 2 becomes LRU
        assert_eq!(b.run_hits(BlockAddr(0), 1), 1); // same refresh, fast path
        assert_eq!(a.access(BlockAddr(4)).evicted, Some(BlockAddr(2)));
        assert_eq!(b.access(BlockAddr(4)).evicted, Some(BlockAddr(2)));
    }

    fn da(block: u64, write: bool) -> crate::block::DataAccess {
        crate::block::DataAccess {
            block: BlockAddr(block),
            write,
        }
    }

    #[test]
    fn data_run_hits_consumes_resident_private_prefix() {
        let mut c = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8));
        c.access(BlockAddr(10));
        c.access_write(BlockAddr(11));
        c.access(BlockAddr(12));
        // read hit, dirty-write hit, read hit, then a cold miss stops it.
        let run = [da(10, false), da(11, true), da(12, false), da(13, false)];
        assert_eq!(c.data_run_hits(&run), 3);
        // The miss block was not filled by the walk.
        assert!(!c.contains(BlockAddr(13)));
        // A clean-line write (upgrade) stops the walk even though it hits.
        let run = [da(10, false), da(12, true)];
        assert_eq!(c.data_run_hits(&run), 1);
        assert_eq!(c.invalidate(BlockAddr(12)), Some(false), "stayed clean");
        // Empty run consumes nothing.
        assert_eq!(c.data_run_hits(&[]), 0);
    }

    #[test]
    fn data_run_hits_refreshes_lru_like_access() {
        // Two identical caches; one touched via access()/access_write(),
        // one via data_run_hits(). Subsequent eviction choices must agree.
        let mut a = tiny();
        let mut b = tiny();
        for c in [&mut a, &mut b] {
            c.access(BlockAddr(0));
            c.access_write(BlockAddr(2)); // set 0: 0 (LRU, clean), 2 (MRU, dirty)
        }
        a.access(BlockAddr(0));
        a.access_write(BlockAddr(2));
        assert_eq!(b.data_run_hits(&[da(0, false), da(2, true)]), 2);
        assert_eq!(a.access(BlockAddr(4)).evicted, Some(BlockAddr(0)));
        assert_eq!(b.access(BlockAddr(4)).evicted, Some(BlockAddr(0)));
        // The dirty bit survived the fast-lane write.
        assert_eq!(b.invalidate(BlockAddr(2)), Some(true));
    }

    #[test]
    fn capacity_and_occupancy() {
        let c = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8));
        assert_eq!(c.capacity_blocks(), 512);
        assert_eq!(c.occupancy(), 0);
    }
}
