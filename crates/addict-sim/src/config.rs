//! Simulation configuration mirroring Table 1 of the paper.

use serde::{Deserialize, Serialize};

use crate::block::BLOCK_BYTES;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Construct a geometry, validating that it divides into whole sets.
    ///
    /// # Panics
    /// Panics if the capacity is not an exact multiple of `ways * 64 B`, or
    /// if the resulting set count is not a power of two (set indexing is a
    /// mask in the simulator's hot loop, as in real hardware).
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            size_bytes.is_multiple_of(u64::from(ways) * BLOCK_BYTES),
            "cache size {size_bytes} not divisible into {ways}-way sets of 64 B blocks"
        );
        let geom = CacheGeometry { size_bytes, ways };
        assert!(
            geom.n_sets().is_power_of_two(),
            "cache must have a power-of-two set count, got {}",
            geom.n_sets()
        );
        geom
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * BLOCK_BYTES)
    }

    /// Total number of blocks the cache can hold.
    pub fn n_blocks(&self) -> u64 {
        self.size_bytes / BLOCK_BYTES
    }
}

/// Shape of the on-chip memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HierarchyKind {
    /// Table 1 baseline: private L1s, shared NUCA L2 as the last-level cache.
    Shallow,
    /// Section 4.6: an extra 256 KB private L2 per core; the shared NUCA
    /// cache becomes an L3.
    Deep,
}

/// All simulator parameters. `paper_default()` reproduces Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (Table 1: 16 OoO cores).
    pub n_cores: usize,
    /// Core clock in GHz (Table 1: 2.5 GHz).
    pub clock_ghz: f64,
    /// Shallow (Table 1) or deep (Section 4.6) hierarchy.
    pub hierarchy: HierarchyKind,
    /// Private L1-I geometry (Table 1: 32 KB, 8-way).
    pub l1i: CacheGeometry,
    /// Private L1-D geometry (Table 1: 32 KB, 8-way).
    pub l1d: CacheGeometry,
    /// Private L2 geometry, used only when `hierarchy == Deep`
    /// (Section 4.6: 256 KB per core).
    pub l2_private: CacheGeometry,
    /// Shared NUCA last-level cache: capacity *per core* (Table 1: 1 MB/core,
    /// 16-way, one bank per core).
    pub llc_per_core: CacheGeometry,
    /// L1 hit (load-to-use) latency in cycles (Table 1: 3).
    pub l1_hit_cycles: f64,
    /// Private-L2 hit latency in cycles (Section 4.6: 7).
    pub l2_private_hit_cycles: f64,
    /// Shared-LLC bank hit latency in cycles, before torus hops (Table 1: 16).
    pub llc_hit_cycles: f64,
    /// Torus hop latency in cycles (Table 1: 1).
    pub hop_cycles: f64,
    /// Main-memory access latency in nanoseconds (Table 1: 42 ns).
    pub mem_latency_ns: f64,
    /// Base cycles-per-instruction of the core with no memory stalls.
    /// The modeled core is 6-wide with a 4-IPC practical peak; OLTP code has
    /// enough branches and dependencies that we default to 0.4 CPI (2.5 IPC)
    /// for the non-stalled portion.
    pub base_cpi: f64,
    /// Fraction of an *on-chip* L1-D miss penalty hidden by the OoO core
    /// (Section 4.3: "modern OoO cores are capable of hiding the latency of a
    /// few additional L1 data misses that end up being serviced by the
    /// on-chip memory hierarchy").
    pub ooo_hide_onchip: f64,
    /// Fraction of an off-chip (memory) data-miss penalty hidden.
    pub ooo_hide_offchip: f64,
    /// Cycles to migrate a thread between cores (Section 3.2.4: ~90 cycles;
    /// six cache lines of register state through the LLC).
    pub migration_cycles: f64,
    /// Extra latency charged to the requester when a dirty block must be
    /// fetched from a remote L1-D (cache-to-cache transfer).
    pub coherence_transfer_cycles: f64,
    /// Next-line L1-I prefetcher: on an instruction miss, the following
    /// block is pulled into the L1-I in the background. The paper's related
    /// work notes commodity servers ship exactly this low-cost prefetcher;
    /// it is orthogonal to (and combinable with) ADDICT.
    pub l1i_next_line_prefetch: bool,
}

impl SimConfig {
    /// The Table 1 configuration: 16 cores, shallow hierarchy.
    pub fn paper_default() -> Self {
        SimConfig {
            n_cores: 16,
            clock_ghz: 2.5,
            hierarchy: HierarchyKind::Shallow,
            l1i: CacheGeometry::new(32 * 1024, 8),
            l1d: CacheGeometry::new(32 * 1024, 8),
            l2_private: CacheGeometry::new(256 * 1024, 8),
            llc_per_core: CacheGeometry::new(1024 * 1024, 16),
            l1_hit_cycles: 3.0,
            l2_private_hit_cycles: 7.0,
            llc_hit_cycles: 16.0,
            hop_cycles: 1.0,
            mem_latency_ns: 42.0,
            base_cpi: 0.4,
            ooo_hide_onchip: 0.70,
            ooo_hide_offchip: 0.15,
            migration_cycles: 90.0,
            coherence_transfer_cycles: 20.0,
            l1i_next_line_prefetch: false,
        }
    }

    /// The Section 4.6 configuration: adds a 256 KB private L2 per core and
    /// demotes the shared NUCA cache to an L3.
    pub fn paper_deep() -> Self {
        SimConfig {
            hierarchy: HierarchyKind::Deep,
            ..Self::paper_default()
        }
    }

    /// Same machine with a different core count (used by load-balancing tests
    /// and the batch-size sweep of Section 4.5).
    pub fn with_cores(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        self.n_cores = n;
        self
    }

    /// Main-memory latency in core cycles.
    pub fn mem_latency_cycles(&self) -> f64 {
        self.mem_latency_ns * self.clock_ghz
    }

    /// Total shared-LLC capacity in bytes (1 MB per core by default).
    pub fn llc_total_bytes(&self) -> u64 {
        self.llc_per_core.size_bytes * self.n_cores as u64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

// Thread-safety audit: parallel sweeps (addict-bench) share configs across
// worker threads by reference.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<SimConfig>();
    shared::<CacheGeometry>();
    shared::<HierarchyKind>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = SimConfig::paper_default();
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 8);
        assert_eq!(c.l1i.n_sets(), 64);
        assert_eq!(c.llc_per_core.size_bytes, 1024 * 1024);
        assert_eq!(c.llc_per_core.ways, 16);
        assert_eq!(c.llc_total_bytes(), 16 * 1024 * 1024);
        assert_eq!(c.hierarchy, HierarchyKind::Shallow);
        // 42 ns at 2.5 GHz = 105 cycles.
        assert!((c.mem_latency_cycles() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn deep_config_only_changes_hierarchy() {
        let c = SimConfig::paper_deep();
        assert_eq!(c.hierarchy, HierarchyKind::Deep);
        assert_eq!(c.l2_private.size_bytes, 256 * 1024);
        assert_eq!(c.n_cores, 16);
    }

    #[test]
    fn geometry_counts() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.n_blocks(), 512);
        assert_eq!(g.n_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn geometry_rejects_ragged_sizes() {
        let _ = CacheGeometry::new(1000, 3);
    }

    #[test]
    fn with_cores_scales_llc() {
        let c = SimConfig::paper_default().with_cores(4);
        assert_eq!(c.n_cores, 4);
        assert_eq!(c.llc_total_bytes(), 4 * 1024 * 1024);
    }
}
