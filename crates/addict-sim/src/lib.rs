//! # addict-sim
//!
//! A multicore cache-hierarchy, timing, and power simulator — the substrate
//! the ADDICT reproduction replays transaction traces on. It stands in for
//! the Zesto cycle-level x86 simulator and the McPAT power model used by the
//! paper (Tözün et al., *ADDICT: Advanced Instruction Chasing for
//! Transactions*, VLDB 2014).
//!
//! The simulator models, per Table 1 of the paper:
//!
//! * 16 cores (configurable) at 2.5 GHz,
//! * private 32 KB / 64 B-block / 8-way L1 instruction and data caches with a
//!   3-cycle load-to-use latency,
//! * a shared NUCA L2 of 1 MB per core, 16-way, 16 banks, 16-cycle hit
//!   latency, reached over a 2D torus with 1-cycle hop latency,
//! * optionally (for the paper's Section 4.6 "deeper hierarchy" experiments)
//!   an additional 256 KB private L2 with 7-cycle latency, which turns the
//!   shared cache into an L3,
//! * DDR3-like main memory with a 42 ns access latency,
//! * MESI-style invalidation coherence for the L1-D caches,
//! * a ~90-cycle thread-migration cost (six cache lines of architectural
//!   state through the LLC, Section 3.2.4 of the paper).
//!
//! Timing is block-granular rather than cycle-accurate: every instruction
//! block fetch and every data access is charged a latency derived from the
//! level of the hierarchy that services it, with an out-of-order *hiding
//! factor* applied to data misses serviced on-chip (modern OoO cores overlap
//! short data-miss stalls far better than instruction-fetch stalls — the
//! asymmetry Section 4.3 of the paper leans on).
//!
//! The crate is deliberately free of any scheduling policy: schedulers live
//! in `addict-core` and drive a [`Machine`] through its public API.

pub mod block;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod hierarchy;
pub mod interconnect;
pub mod machine;
pub mod power;
pub mod speculation;
pub mod stats;
pub mod timing;

pub use block::{BlockAddr, DataAccess};
pub use cache::{AccessOutcome, SetAssocCache};
pub use coherence::{CoherenceAction, SharerMask};
pub use config::{CacheGeometry, HierarchyKind, SimConfig};
pub use hierarchy::ServiceLevel;
pub use machine::{CoreId, Machine, RunOutcome};
pub use power::{PowerModel, PowerReport};
pub use speculation::{
    AbortCause, SpecConfig, SpecStats, Speculation, ARCHIVE_DEPTH, MAX_SPEC_LINES,
};
pub use stats::{CoreStats, MachineStats};
