//! Event counters collected while a [`crate::Machine`] executes, and the
//! MPKI arithmetic (misses per 1000 instructions) used throughout the
//! paper's evaluation (Figures 5, 7, 9).

use serde::{Deserialize, Serialize};

/// Counters for a single core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Dynamic instructions executed on this core.
    pub instructions: u64,
    /// L1-I block lookups.
    pub l1i_accesses: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// L1-D lookups.
    pub l1d_accesses: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Private-L2 lookups (deep hierarchy only).
    pub l2p_accesses: u64,
    /// Private-L2 misses (deep hierarchy only).
    pub l2p_misses: u64,
    /// Shared-LLC lookups attributed to this core.
    pub llc_accesses: u64,
    /// Shared-LLC misses attributed to this core (these go to memory).
    pub llc_misses: u64,
    /// Main-memory accesses (demand).
    pub mem_accesses: u64,
    /// Threads migrated *onto* this core.
    pub migrations_in: u64,
    /// Same-core context switches (STREX-style time multiplexing).
    pub context_switches: u64,
    /// Cycles spent on migration / context-switch overhead.
    pub overhead_cycles: f64,
    /// Base execution cycles (instructions x base CPI).
    pub base_cycles: f64,
    /// Cycles stalled on instruction fetch misses.
    pub instr_stall_cycles: f64,
    /// Cycles charged for data accesses (after OoO hiding).
    pub data_stall_cycles: f64,
    /// L1-D lines invalidated here by remote writes.
    pub invalidations_received: u64,
    /// Dirty blocks supplied to another core (cache-to-cache transfers).
    pub c2c_supplied: u64,
    /// Dirty L1-D evictions written back.
    pub writebacks: u64,
    /// Interconnect hops traversed by this core's LLC traffic (round trips).
    pub noc_hops: u64,
}

/// Whole-machine statistics: per-core counters plus aggregation helpers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineStats {
    /// One entry per core.
    pub cores: Vec<CoreStats>,
}

// Thread-safety audit: sweep results carrying these cross thread
// boundaries back to the collecting thread.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<CoreStats>();
    shared::<MachineStats>();
};

macro_rules! sum_field {
    ($name:ident) => {
        /// Sum of the per-core field of the same name.
        pub fn $name(&self) -> u64 {
            self.cores.iter().map(|c| c.$name).sum()
        }
    };
}

impl MachineStats {
    /// Zeroed stats for `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        MachineStats {
            cores: vec![CoreStats::default(); n_cores],
        }
    }

    sum_field!(instructions);
    sum_field!(l1i_accesses);
    sum_field!(l1i_misses);
    sum_field!(l1d_accesses);
    sum_field!(l1d_misses);
    sum_field!(l2p_accesses);
    sum_field!(l2p_misses);
    sum_field!(llc_accesses);
    sum_field!(llc_misses);
    sum_field!(mem_accesses);
    sum_field!(migrations_in);
    sum_field!(context_switches);
    sum_field!(invalidations_received);
    sum_field!(c2c_supplied);
    sum_field!(writebacks);
    sum_field!(noc_hops);

    /// Data accesses executed. Defined as the L1-D lookup count: **every**
    /// data event performs exactly one L1-D lookup, on the per-block path
    /// (one `access_data` per event) and on the run-granular path alike
    /// (fast-lane hits and coherent-path accesses each count once) — the
    /// single-source guarantee that keeps `l1d_mpki` honest. Tested against
    /// `XctTrace::data_accesses()` per workload in
    /// `addict-core/tests/segment_equivalence.rs`.
    pub fn data_accesses(&self) -> u64 {
        self.l1d_accesses()
    }

    /// Total migration / context-switch overhead cycles across cores.
    pub fn overhead_cycles(&self) -> f64 {
        self.cores.iter().map(|c| c.overhead_cycles).sum()
    }

    /// Total base execution cycles across cores.
    pub fn base_cycles(&self) -> f64 {
        self.cores.iter().map(|c| c.base_cycles).sum()
    }

    /// Total instruction-fetch stall cycles across cores.
    pub fn instr_stall_cycles(&self) -> f64 {
        self.cores.iter().map(|c| c.instr_stall_cycles).sum()
    }

    /// Total data-access stall cycles across cores.
    pub fn data_stall_cycles(&self) -> f64 {
        self.cores.iter().map(|c| c.data_stall_cycles).sum()
    }

    /// Busy-cycle breakdown shares `(base, instr stall, data stall,
    /// overhead)`, summing to 1 for a non-empty run — the Figure 9
    /// right-hand bars, with the paper's "Rest" split into its parts.
    pub fn cycle_breakdown(&self) -> (f64, f64, f64, f64) {
        let base = self.base_cycles();
        let instr = self.instr_stall_cycles();
        let data = self.data_stall_cycles();
        let ovh = self.overhead_cycles();
        let total = base + instr + data + ovh;
        if total == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (base / total, instr / total, data / total, ovh / total)
        }
    }

    /// Misses per 1000 instructions, defined as 0 for a zero-instruction
    /// run (empty trace sets and 0-xct replays are legitimate sweep
    /// points; figures must print `0.00`, never `NaN`).
    fn mpki(misses: u64, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// L1 instruction misses per 1000 instructions.
    pub fn l1i_mpki(&self) -> f64 {
        Self::mpki(self.l1i_misses(), self.instructions())
    }

    /// L1 data misses per 1000 instructions.
    pub fn l1d_mpki(&self) -> f64 {
        Self::mpki(self.l1d_misses(), self.instructions())
    }

    /// Shared-LLC (the paper's "L2" on the shallow hierarchy) misses per
    /// 1000 instructions.
    pub fn llc_mpki(&self) -> f64 {
        Self::mpki(self.llc_misses(), self.instructions())
    }

    /// Private-L2 misses per 1000 instructions (deep hierarchy).
    pub fn l2p_mpki(&self) -> f64 {
        Self::mpki(self.l2p_misses(), self.instructions())
    }

    /// Migrations + context switches per 1000 instructions (Figure 9, left).
    pub fn switches_per_ki(&self) -> f64 {
        Self::mpki(
            self.migrations_in() + self.context_switches(),
            self.instructions(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_construction() {
        let s = MachineStats::new(4);
        assert_eq!(s.cores.len(), 4);
        assert_eq!(s.instructions(), 0);
        assert_eq!(s.l1i_mpki(), 0.0);
    }

    #[test]
    fn aggregation_sums_cores() {
        let mut s = MachineStats::new(2);
        s.cores[0].instructions = 1000;
        s.cores[1].instructions = 3000;
        s.cores[0].l1i_misses = 10;
        s.cores[1].l1i_misses = 30;
        assert_eq!(s.instructions(), 4000);
        assert_eq!(s.l1i_misses(), 40);
        assert!((s.l1i_mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_guards_division_by_zero() {
        // Every ratio helper must report a clean 0.0 (not NaN) for a
        // zero-instruction run, even with non-zero event counters.
        let mut s = MachineStats::new(1);
        s.cores[0].l1d_misses = 5;
        s.cores[0].l1i_misses = 3;
        s.cores[0].llc_misses = 2;
        s.cores[0].l2p_misses = 1;
        s.cores[0].migrations_in = 4;
        s.cores[0].context_switches = 2;
        assert_eq!(s.instructions(), 0);
        for v in [
            s.l1i_mpki(),
            s.l1d_mpki(),
            s.llc_mpki(),
            s.l2p_mpki(),
            s.switches_per_ki(),
        ] {
            assert_eq!(v, 0.0);
            assert!(v.is_finite());
        }
        assert_eq!(s.cycle_breakdown(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn switches_counts_both_kinds() {
        let mut s = MachineStats::new(2);
        s.cores[0].instructions = 2000;
        s.cores[0].migrations_in = 3;
        s.cores[1].context_switches = 1;
        assert!((s.switches_per_ki() - 2.0).abs() < 1e-12);
    }
}
