//! Activity-based power model (the McPAT substitute).
//!
//! Figure 8(b) of the paper reports *average per-core power of ADDICT
//! normalized to Baseline* (~1.1x). That ratio is driven by a simple
//! mechanism: static (leakage + clock) power is constant per unit time,
//! while dynamic energy tracks activity. A scheduler that finishes the same
//! work in fewer cycles raises the *rate* of dynamic activity, so its power
//! rises even as its total energy falls.
//!
//! The default constants are calibrated so that a heavily stalled OLTP
//! baseline (CPI ~2 from memory stalls, Section 1 of the paper) spends
//! ~85% of its power on the static component, which matches the
//! McPAT-reported breakdowns for low-IPC server workloads the paper builds
//! on. With that share, a 45% execution-time reduction with mildly increased
//! miss/migration activity lands near the paper's ~10% per-core power
//! increase.

use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::stats::MachineStats;

/// Per-event energies (picojoules) and static power (watts per core).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Core-pipeline energy per executed instruction.
    pub pj_per_instruction: f64,
    /// Energy per L1 (I or D) lookup.
    pub pj_per_l1_access: f64,
    /// Energy per private-L2 lookup.
    pub pj_per_l2p_access: f64,
    /// Energy per shared-LLC bank lookup.
    pub pj_per_llc_access: f64,
    /// Energy per main-memory access.
    pub pj_per_mem_access: f64,
    /// Energy per NoC hop traversed by a block transfer.
    pub pj_per_hop: f64,
    /// Energy per thread migration or context switch (state movement).
    pub pj_per_migration: f64,
    /// Static (leakage + clock tree) power per core, in watts.
    pub static_w_per_core: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            pj_per_instruction: 100.0,
            pj_per_l1_access: 20.0,
            pj_per_l2p_access: 80.0,
            pj_per_llc_access: 250.0,
            pj_per_mem_access: 12_000.0,
            pj_per_hop: 50.0,
            pj_per_migration: 2_000.0,
            static_w_per_core: 1.0,
        }
    }
}

/// Energy/power accounting for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Total dynamic energy in joules.
    pub dynamic_energy_j: f64,
    /// Total static energy in joules.
    pub static_energy_j: f64,
    /// Wall-clock duration of the run in seconds.
    pub duration_s: f64,
    /// Average power over the whole chip, in watts.
    pub total_power_w: f64,
    /// Average power per core, in watts (the Figure 8(b) metric).
    pub per_core_power_w: f64,
}

impl PowerModel {
    /// Compute the power report for a finished run.
    ///
    /// `makespan_cycles` is the longest per-core clock at completion (the
    /// run's wall-clock duration in cycles).
    pub fn report(
        &self,
        stats: &MachineStats,
        makespan_cycles: f64,
        cfg: &SimConfig,
    ) -> PowerReport {
        let pj = self.pj_per_instruction * stats.instructions() as f64
            + self.pj_per_l1_access * (stats.l1i_accesses() + stats.l1d_accesses()) as f64
            + self.pj_per_l2p_access * stats.l2p_accesses() as f64
            + self.pj_per_llc_access * stats.llc_accesses() as f64
            + self.pj_per_mem_access * stats.mem_accesses() as f64
            + self.pj_per_hop * stats.noc_hops() as f64
            + self.pj_per_migration * (stats.migrations_in() + stats.context_switches()) as f64;
        let dynamic_energy_j = pj * 1e-12;

        let duration_s = makespan_cycles / (cfg.clock_ghz * 1e9);
        let static_energy_j = self.static_w_per_core * cfg.n_cores as f64 * duration_s;

        let total = dynamic_energy_j + static_energy_j;
        let total_power_w = if duration_s > 0.0 {
            total / duration_s
        } else {
            0.0
        };
        PowerReport {
            dynamic_energy_j,
            static_energy_j,
            duration_s,
            total_power_w,
            per_core_power_w: total_power_w / cfg.n_cores as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(instr: u64, mem: u64) -> MachineStats {
        let mut s = MachineStats::new(16);
        s.cores[0].instructions = instr;
        s.cores[0].l1i_accesses = instr / 10;
        s.cores[0].l1d_accesses = instr / 3;
        s.cores[0].mem_accesses = mem;
        s
    }

    #[test]
    fn zero_duration_yields_zero_power() {
        let m = PowerModel::default();
        let r = m.report(&MachineStats::new(16), 0.0, &SimConfig::paper_default());
        assert_eq!(r.total_power_w, 0.0);
    }

    #[test]
    fn static_power_dominates_stalled_baseline() {
        let m = PowerModel::default();
        let cfg = SimConfig::paper_default();
        // 1M instructions over 2M cycles (CPI 2, heavily stalled).
        let r = m.report(&stats_with(1_000_000, 2_000), 2_000_000.0, &cfg);
        assert!(r.static_energy_j > 4.0 * r.dynamic_energy_j);
    }

    #[test]
    fn faster_run_same_work_draws_more_power() {
        let m = PowerModel::default();
        let cfg = SimConfig::paper_default();
        let slow = m.report(&stats_with(1_000_000, 2_000), 2_000_000.0, &cfg);
        let fast = m.report(&stats_with(1_000_000, 2_000), 1_100_000.0, &cfg);
        assert!(fast.per_core_power_w > slow.per_core_power_w);
        // ...but consumes less total energy.
        assert!(
            fast.dynamic_energy_j + fast.static_energy_j
                < slow.dynamic_energy_j + slow.static_energy_j
        );
        // The ratio is modest (shape of Figure 8(b)): under ~1.5x.
        let ratio = fast.per_core_power_w / slow.per_core_power_w;
        assert!(ratio > 1.0 && ratio < 1.5, "ratio = {ratio}");
    }

    #[test]
    fn per_core_power_is_total_over_cores() {
        let m = PowerModel::default();
        let cfg = SimConfig::paper_default();
        let r = m.report(&stats_with(10_000, 5), 10_000.0, &cfg);
        assert!((r.per_core_power_w * 16.0 - r.total_power_w).abs() < 1e-12);
    }

    #[test]
    fn migrations_add_dynamic_energy() {
        let m = PowerModel::default();
        let cfg = SimConfig::paper_default();
        let base = stats_with(10_000, 5);
        let mut migr = base.clone();
        migr.cores[4].migrations_in = 1_000;
        let r0 = m.report(&base, 10_000.0, &cfg);
        let r1 = m.report(&migr, 10_000.0, &cfg);
        assert!(r1.dynamic_energy_j > r0.dynamic_energy_j);
    }
}
