//! MESI-style directory coherence for the private L1-D caches.
//!
//! Table 1 lists "MESI-coherence for L1-D". The simulator needs coherence
//! for two observable effects:
//!
//! 1. when a migrated transaction writes data it dirtied on its previous
//!    core, the stale copy must be invalidated (SLICC/ADDICT "leave their
//!    data behind", Section 4.3), and
//! 2. dirty blocks fetched from a remote L1-D cost a cache-to-cache
//!    transfer rather than a memory round trip.
//!
//! We model a full-map directory: per block, a sharer bitmask and an
//! optional modified owner. The instruction stream is read-only so L1-I
//! needs no coherence.
//!
//! The directory sits on the replay hot path (every data access consults
//! it), so it is built for zero steady-state allocation: entries live in an
//! open-addressed hash table (linear probing, tombstone deletion, amortized
//! growth), and [`CoherenceAction`] reports the cores to invalidate as a
//! [`SharerMask`] bitmask rather than a heap-allocated list — the directory
//! assumes at most 64 cores, so one `u64` covers every sharer vector.

use crate::block::BlockAddr;

/// A set of cores encoded as a 64-bit mask (bit `i` = core `i`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharerMask(pub u64);

impl SharerMask {
    /// The empty set.
    pub const EMPTY: SharerMask = SharerMask(0);

    /// A singleton set.
    #[inline]
    pub fn only(core: usize) -> Self {
        debug_assert!(core < 64);
        SharerMask(1 << core)
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Does the set contain `core`?
    #[inline]
    pub fn contains(self, core: usize) -> bool {
        debug_assert!(core < 64);
        self.0 & (1 << core) != 0
    }

    /// Insert `core`.
    #[inline]
    pub fn insert(&mut self, core: usize) {
        debug_assert!(core < 64);
        self.0 |= 1 << core;
    }

    /// Remove `core`.
    #[inline]
    pub fn remove(&mut self, core: usize) {
        debug_assert!(core < 64);
        self.0 &= !(1 << core);
    }

    /// Iterate the member cores in ascending order (allocation-free).
    #[inline]
    pub fn iter(self) -> SharerIter {
        SharerIter(self.0)
    }
}

impl IntoIterator for SharerMask {
    type Item = usize;
    type IntoIter = SharerIter;

    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

impl FromIterator<usize> for SharerMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut m = SharerMask::EMPTY;
        for c in iter {
            m.insert(c);
        }
        m
    }
}

/// Iterator over the cores of a [`SharerMask`], ascending.
#[derive(Debug, Clone)]
pub struct SharerIter(u64);

impl Iterator for SharerIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let core = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(core)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter {}

/// Cores that must act for a coherence transaction to complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceAction {
    /// Cores whose L1-D copy must be invalidated.
    pub invalidate: SharerMask,
    /// Core that holds the block modified and must supply it / downgrade
    /// (charged as a cache-to-cache transfer).
    pub supplier: Option<usize>,
}

impl CoherenceAction {
    /// True when no remote cache needs to do anything.
    pub fn is_silent(&self) -> bool {
        self.invalidate.is_empty() && self.supplier.is_none()
    }
}

const NO_OWNER: u8 = u8::MAX;

/// One open-addressed table slot. `state` distinguishes never-used slots
/// (probe chains stop there) from tombstones left by deletion (probe chains
/// continue through them).
#[derive(Debug, Clone, Copy)]
struct Slot {
    block: u64,
    sharers: u64,
    owner: u8,
    state: SlotState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Full,
    Tombstone,
}

const EMPTY_SLOT: Slot = Slot {
    block: 0,
    sharers: 0,
    owner: NO_OWNER,
    state: SlotState::Empty,
};

/// One address shard of the directory: an open-addressed hash table
/// (linear probing, tombstone deletion, amortized growth). A block's
/// entry lives in exactly one shard, so per-block observable behavior is
/// identical to a single flat table.
#[derive(Debug)]
struct Table {
    slots: Vec<Slot>,
    /// Live entries.
    len: usize,
    /// Dead (tombstoned) slots still occupying probe chains.
    tombstones: usize,
}

/// Full-map directory for up to 64 cores, partitioned by block address
/// into independent [`Table`] shards the way LLC banks partition blocks:
/// each shard owns a disjoint address slice, so `on_read` / `on_write` /
/// `on_evict` on different shards touch disjoint state (the sharded
/// replay engine's merge layer exploits this), and none of them allocate
/// except for amortized per-shard table growth.
#[derive(Debug)]
pub struct Directory {
    tables: Vec<Table>,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

/// Finalizer of splitmix64: a full-avalanche multiply-shift hash, plenty
/// for block addresses that arrive nearly sequential.
#[inline]
fn hash_block(block: u64) -> u64 {
    let mut z = block.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard index for a hashed block. Uses the *high* hash bits so the
/// shard choice is independent of the slot index (low bits) inside the
/// shard's table — correlating the two would cluster probe chains.
#[inline]
fn shard_of(h: u64, n: usize) -> usize {
    if n == 1 {
        0
    } else {
        ((h >> 32) as usize) % n
    }
}

const INITIAL_CAPACITY: usize = 1024;

impl Table {
    fn new() -> Self {
        Table {
            slots: vec![EMPTY_SLOT; INITIAL_CAPACITY],
            len: 0,
            tombstones: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of the slot holding `block` (pre-hashed as `h`), if present.
    #[inline]
    fn find(&self, block: u64, h: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = h as usize & mask;
        loop {
            let slot = &self.slots[i];
            match slot.state {
                SlotState::Empty => return None,
                SlotState::Full if slot.block == block => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Index of the slot for `block` (pre-hashed as `h`), inserting an
    /// empty entry if absent.
    fn find_or_insert(&mut self, block: u64, h: u64) -> usize {
        // Grow before the probe so the insert below always finds room and
        // chains stay short (max load 7/8 including tombstones).
        if (self.len + self.tombstones + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = h as usize & mask;
        let mut first_tombstone = None;
        loop {
            let slot = &self.slots[i];
            match slot.state {
                SlotState::Full if slot.block == block => return i,
                SlotState::Full => {}
                SlotState::Tombstone => {
                    first_tombstone.get_or_insert(i);
                }
                SlotState::Empty => {
                    let target = match first_tombstone {
                        Some(t) => {
                            self.tombstones -= 1;
                            t
                        }
                        None => i,
                    };
                    self.slots[target] = Slot {
                        block,
                        sharers: 0,
                        owner: NO_OWNER,
                        state: SlotState::Full,
                    };
                    self.len += 1;
                    return target;
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Rehash into a table sized for the live entries (doubles capacity
    /// when genuinely full; reclaims tombstones either way).
    fn grow(&mut self) {
        let new_cap = if (self.len + 1) * 2 > self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.tombstones = 0;
        let mask = self.mask();
        for slot in old {
            if slot.state != SlotState::Full {
                continue;
            }
            let mut i = hash_block(slot.block) as usize & mask;
            while self.slots[i].state == SlotState::Full {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }

    #[inline]
    fn remove_at(&mut self, i: usize) {
        // Tombstone accounting invariant: only a Full slot may be removed,
        // so a block's removal increments `tombstones` exactly once — a
        // second `on_evict` for the same (core, block) finds no slot (the
        // probe passes through the tombstone to an Empty) and is a no-op.
        debug_assert_eq!(self.slots[i].state, SlotState::Full);
        self.slots[i] = Slot {
            block: 0,
            sharers: 0,
            owner: NO_OWNER,
            state: SlotState::Tombstone,
        };
        self.len -= 1;
        self.tombstones += 1;
    }

    /// The remote work a read by `core` requires, as a pure function of
    /// one entry's state — shared by [`Directory::on_read`] (which then
    /// mutates) and [`Directory::peek_read`] (which does not), so the two
    /// cannot drift.
    #[inline]
    fn read_action(core: usize, owner: u8) -> CoherenceAction {
        let mut action = CoherenceAction::default();
        if owner != NO_OWNER && owner as usize != core {
            // M -> S at the owner; it supplies the data.
            action.supplier = Some(owner as usize);
        }
        action
    }

    /// The remote work a write by `core` requires (see
    /// [`Directory::read_action`]).
    #[inline]
    fn write_action(core: usize, sharers: u64, owner: u8) -> CoherenceAction {
        let mut action = CoherenceAction::default();
        if owner != NO_OWNER && owner as usize != core {
            action.supplier = Some(owner as usize);
        }
        // Every remote copy is invalidated, the (remote) supplier included.
        action.invalidate = SharerMask(sharers & !(1 << core));
        action
    }

    fn on_read(&mut self, core: usize, block: u64, h: u64) -> CoherenceAction {
        let i = self.find_or_insert(block, h);
        let entry = &mut self.slots[i];
        let action = Self::read_action(core, entry.owner);
        if action.supplier.is_some() {
            entry.owner = NO_OWNER;
        }
        entry.sharers |= 1 << core;
        action
    }

    fn on_write(&mut self, core: usize, block: u64, h: u64) -> CoherenceAction {
        let i = self.find_or_insert(block, h);
        let entry = &mut self.slots[i];
        let action = Self::write_action(core, entry.sharers, entry.owner);
        entry.sharers = 1 << core;
        entry.owner = core as u8;
        action
    }

    fn peek_read(&self, core: usize, block: u64, h: u64) -> CoherenceAction {
        match self.find(block, h) {
            Some(i) => Self::read_action(core, self.slots[i].owner),
            None => CoherenceAction::default(),
        }
    }

    fn peek_write(&self, core: usize, block: u64, h: u64) -> CoherenceAction {
        match self.find(block, h) {
            Some(i) => {
                let entry = &self.slots[i];
                Self::write_action(core, entry.sharers, entry.owner)
            }
            None => CoherenceAction::default(),
        }
    }

    fn on_evict(&mut self, core: usize, block: u64, h: u64) {
        if let Some(i) = self.find(block, h) {
            let entry = &mut self.slots[i];
            entry.sharers &= !(1 << core);
            if entry.owner as usize == core {
                entry.owner = NO_OWNER;
            }
            if entry.sharers == 0 {
                self.remove_at(i);
            }
        }
    }
}

impl Directory {
    /// Empty directory in a single shard (tests and small configs).
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Empty directory partitioned into `shards` independent address
    /// shards (clamped to at least one). The machine passes its core
    /// count, mirroring the LLC's one-bank-per-core layout.
    pub fn with_shards(shards: usize) -> Self {
        Directory {
            tables: (0..shards.max(1)).map(|_| Table::new()).collect(),
        }
    }

    /// Number of address shards.
    pub fn shards(&self) -> usize {
        self.tables.len()
    }

    /// The shard owning `block`, plus the block's hash (shared with the
    /// shard's slot probe so it is computed once per access).
    #[inline]
    fn shard_for(&self, block: BlockAddr) -> (usize, u64) {
        let h = hash_block(block.0);
        (shard_of(h, self.tables.len()), h)
    }

    /// Warm the host cache line at the head of `block`'s probe chain
    /// (best-effort hint; no simulated state is read or written). The
    /// directory's tables grow to the machine's cached-block high-water
    /// mark, which leaves the host L2 long before the big scaling rungs —
    /// callers that know a batch of upcoming accesses (a data run's
    /// coherent tail) hide those demand misses by prefetching the batch
    /// before the serial walk.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let (s, h) = self.shard_for(block);
        let t = &self.tables[s];
        crate::cache::prefetch_ptr(&t.slots[h as usize & t.mask()]);
    }

    /// Core `core` reads `block`. Returns the remote work required.
    /// After this call the directory records `core` as a sharer.
    pub fn on_read(&mut self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let (s, h) = self.shard_for(block);
        self.tables[s].on_read(core, block.0, h)
    }

    /// Core `core` writes `block`. All other copies are invalidated and
    /// `core` becomes the modified owner.
    pub fn on_write(&mut self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let (s, h) = self.shard_for(block);
        self.tables[s].on_write(core, block.0, h)
    }

    /// The exact [`CoherenceAction`] [`Directory::on_read`] would return
    /// for this access, **without** performing it. An untracked block is
    /// silent. This is the speculation subsystem's conflict oracle: a
    /// policy peeks the action of the access it is about to execute and
    /// dooms any speculative window the action's victims hold open.
    pub fn peek_read(&self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let (s, h) = self.shard_for(block);
        self.tables[s].peek_read(core, block.0, h)
    }

    /// The exact [`CoherenceAction`] [`Directory::on_write`] would return
    /// for this access, without performing it (see
    /// [`Directory::peek_read`]).
    pub fn peek_write(&self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let (s, h) = self.shard_for(block);
        self.tables[s].peek_write(core, block.0, h)
    }

    /// Core `core` evicted `block` from its L1-D (silently for clean lines,
    /// with a writeback for dirty ones — the caller models the writeback).
    pub fn on_evict(&mut self, core: usize, block: BlockAddr) {
        let (s, h) = self.shard_for(block);
        self.tables[s].on_evict(core, block.0, h)
    }

    /// Is `core` recorded as holding `block`?
    pub fn is_sharer(&self, core: usize, block: BlockAddr) -> bool {
        let (s, h) = self.shard_for(block);
        self.tables[s]
            .find(block.0, h)
            .is_some_and(|i| self.tables[s].slots[i].sharers & (1 << core) != 0)
    }

    /// The modified owner of `block`, if any.
    pub fn owner(&self, block: BlockAddr) -> Option<usize> {
        let (s, h) = self.shard_for(block);
        let t = &self.tables[s];
        let i = t.find(block.0, h)?;
        let owner = t.slots[i].owner;
        (owner != NO_OWNER).then_some(owner as usize)
    }

    /// Number of blocks with at least one sharer, summed over shards
    /// (diagnostics).
    pub fn tracked_blocks(&self) -> usize {
        self.tables.iter().map(|t| t.len).sum()
    }

    /// Dead slots still occupying probe chains, summed over shards
    /// (diagnostics; each shard's 7/8 load-factor rebuild reclaims its
    /// own, so a fully rebuilt directory reads 0).
    pub fn tombstone_count(&self) -> usize {
        self.tables.iter().map(|t| t.tombstones).sum()
    }

    /// Total capacity in slots, summed over shards (diagnostics).
    pub fn capacity(&self) -> usize {
        self.tables.iter().map(|t| t.slots.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(42);

    #[test]
    fn first_read_is_silent() {
        let mut d = Directory::new();
        let a = d.on_read(0, B);
        assert!(a.is_silent());
        assert!(d.is_sharer(0, B));
    }

    #[test]
    fn read_after_remote_write_downgrades_owner() {
        let mut d = Directory::new();
        assert!(d.on_write(1, B).is_silent());
        assert_eq!(d.owner(B), Some(1));
        let a = d.on_read(0, B);
        assert_eq!(a.supplier, Some(1));
        assert!(a.invalidate.is_empty());
        assert_eq!(d.owner(B), None);
        assert!(d.is_sharer(0, B) && d.is_sharer(1, B));
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new();
        d.on_read(0, B);
        d.on_read(1, B);
        d.on_read(2, B);
        let a = d.on_write(3, B);
        assert_eq!(a.invalidate.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(d.owner(B), Some(3));
        assert!(!d.is_sharer(0, B));
        assert!(d.is_sharer(3, B));
    }

    #[test]
    fn write_after_remote_write_transfers_and_invalidates() {
        let mut d = Directory::new();
        d.on_write(5, B);
        let a = d.on_write(6, B);
        assert_eq!(a.supplier, Some(5));
        assert_eq!(a.invalidate, SharerMask::only(5));
        assert_eq!(d.owner(B), Some(6));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.on_write(2, B);
        assert!(d.on_write(2, B).is_silent());
        assert_eq!(d.owner(B), Some(2));
    }

    #[test]
    fn evict_clears_state() {
        let mut d = Directory::new();
        d.on_write(0, B);
        d.on_evict(0, B);
        assert_eq!(d.owner(B), None);
        assert!(!d.is_sharer(0, B));
        assert_eq!(d.tracked_blocks(), 0);
        // Fresh write afterwards is silent again.
        assert!(d.on_write(1, B).is_silent());
    }

    #[test]
    fn evict_of_one_sharer_keeps_others() {
        let mut d = Directory::new();
        d.on_read(0, B);
        d.on_read(1, B);
        d.on_evict(0, B);
        assert!(d.is_sharer(1, B));
        assert_eq!(d.tracked_blocks(), 1);
    }

    #[test]
    fn peek_predicts_mutating_calls_and_leaves_no_trace() {
        let mut d = Directory::new();
        d.on_read(0, B);
        d.on_read(1, B);
        d.on_write(2, B);
        // Peeks agree with the action the mutating call then returns, for
        // reads and writes, local and remote cores alike.
        for core in 0..4 {
            let mut replay = Directory::new();
            replay.on_read(0, B);
            replay.on_read(1, B);
            replay.on_write(2, B);
            assert_eq!(d.peek_read(core, B), replay.on_read(core, B));
            let mut replay = Directory::new();
            replay.on_read(0, B);
            replay.on_read(1, B);
            replay.on_write(2, B);
            assert_eq!(d.peek_write(core, B), replay.on_write(core, B));
        }
        // Peeking mutated nothing: owner, sharers, and size are as set up.
        assert_eq!(d.owner(B), Some(2));
        assert!(d.is_sharer(2, B) && !d.is_sharer(0, B));
        assert_eq!(d.tracked_blocks(), 1);
        // An untracked block peeks silent without inserting an entry.
        let far = BlockAddr(999);
        assert!(d.peek_read(3, far).is_silent());
        assert!(d.peek_write(3, far).is_silent());
        assert_eq!(d.tracked_blocks(), 1);
    }

    #[test]
    fn sharer_mask_iterates_ascending() {
        let m: SharerMask = [63usize, 0, 17].into_iter().collect();
        assert_eq!(m.count(), 3);
        assert!(m.contains(17) && !m.contains(16));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 17, 63]);
        assert_eq!(m.iter().len(), 3);
    }

    #[test]
    fn table_survives_growth_and_heavy_churn() {
        let mut d = Directory::new();
        // Far more live blocks than the initial capacity.
        for b in 0..10_000u64 {
            d.on_read((b % 8) as usize, BlockAddr(b));
        }
        assert_eq!(d.tracked_blocks(), 10_000);
        for b in 0..10_000u64 {
            assert!(
                d.is_sharer((b % 8) as usize, BlockAddr(b)),
                "lost block {b}"
            );
        }
        // Evict every other block, then reinsert with a different core.
        for b in (0..10_000u64).step_by(2) {
            d.on_evict((b % 8) as usize, BlockAddr(b));
        }
        assert_eq!(d.tracked_blocks(), 5_000);
        for b in (0..10_000u64).step_by(2) {
            assert!(d.on_write(9, BlockAddr(b)).is_silent());
        }
        assert_eq!(d.tracked_blocks(), 10_000);
        for b in (0..10_000u64).step_by(2) {
            assert_eq!(d.owner(BlockAddr(b)), Some(9));
        }
    }

    #[test]
    fn double_evict_tombstones_exactly_once() {
        let mut d = Directory::new();
        d.on_read(0, B);
        assert_eq!(d.tombstone_count(), 0);
        d.on_evict(0, B);
        assert_eq!(d.tombstone_count(), 1);
        assert_eq!(d.tracked_blocks(), 0);
        // A duplicate evict — from either the same or another core — must
        // be a no-op, not a second tombstone / len underflow.
        d.on_evict(0, B);
        d.on_evict(3, B);
        assert_eq!(d.tombstone_count(), 1);
        assert_eq!(d.tracked_blocks(), 0);
        // Reinsertion reuses the tombstoned chain slot.
        d.on_read(2, B);
        assert_eq!(d.tombstone_count(), 0);
        assert_eq!(d.tracked_blocks(), 1);
    }

    #[test]
    fn load_factor_rebuild_resets_tombstones() {
        let mut d = Directory::new();
        let cap = d.capacity();
        // Accumulate tombstones with insert/evict churn over distinct
        // blocks (each evict leaves a dead slot; reinsertions of *new*
        // blocks land on empties until the chain forces reuse). Then the
        // 7/8 load-factor trigger must rebuild and zero the count.
        let mut max_seen = 0;
        for b in 0..(cap as u64 * 3) {
            d.on_read(1, BlockAddr(b));
            d.on_evict(1, BlockAddr(b));
            max_seen = max_seen.max(d.tombstone_count());
            assert!(
                (d.tracked_blocks() + d.tombstone_count()) * 8 <= d.capacity() * 7,
                "load factor exceeded: len={} tombstones={} cap={}",
                d.tracked_blocks(),
                d.tombstone_count(),
                d.capacity()
            );
        }
        // The churn really did accumulate tombstones and hit the rebuild.
        assert!(max_seen * 8 > cap * 6, "churn never stressed the table");
        assert!(d.tombstone_count() < max_seen);
        // A rebuild with only dead entries must not have grown the table.
        assert_eq!(d.capacity(), cap);
    }

    #[test]
    fn tombstone_reuse_keeps_probe_chains_intact() {
        let mut d = Directory::new();
        // Insert enough colliding-ish keys to build probe chains, delete
        // some in the middle, and verify lookups still find everything.
        let keys: Vec<u64> = (0..512).map(|i| i * 1024 + 7).collect();
        for &k in &keys {
            d.on_read(1, BlockAddr(k));
        }
        for &k in keys.iter().step_by(3) {
            d.on_evict(1, BlockAddr(k));
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(d.is_sharer(1, BlockAddr(k)), i % 3 != 0, "key {k}");
        }
    }

    #[test]
    fn sharded_directory_matches_single_shard() {
        // A block's entry lives in exactly one shard, so every action and
        // every observable query of a sharded directory must agree with
        // the flat table under any interleaving. Drive a deterministic
        // mixed workload (reads, writes, evicts, peeks) with contended
        // blocks through 1, 2, 4, and 16 shards in lockstep.
        let mut dirs = [
            Directory::new(),
            Directory::with_shards(2),
            Directory::with_shards(4),
            Directory::with_shards(16),
        ];
        assert_eq!(dirs[0].shards(), 1);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..20_000 {
            let r = next();
            let block = BlockAddr(r % 768); // few enough blocks to contend
            let core = (r >> 32) as usize % 8;
            let (flat, rest) = dirs.split_first_mut().unwrap();
            match (r >> 40) % 5 {
                0 | 1 => {
                    let a = flat.on_read(core, block);
                    for d in rest.iter_mut() {
                        assert_eq!(d.on_read(core, block), a, "read @{step}");
                    }
                }
                2 => {
                    let a = flat.on_write(core, block);
                    for d in rest.iter_mut() {
                        assert_eq!(d.on_write(core, block), a, "write @{step}");
                    }
                }
                3 => {
                    flat.on_evict(core, block);
                    for d in rest.iter_mut() {
                        d.on_evict(core, block);
                    }
                }
                _ => {
                    for d in rest.iter() {
                        assert_eq!(d.peek_read(core, block), flat.peek_read(core, block));
                        assert_eq!(d.peek_write(core, block), flat.peek_write(core, block));
                    }
                }
            }
            let (flat, rest) = dirs.split_first().unwrap();
            for d in rest {
                assert_eq!(d.is_sharer(core, block), flat.is_sharer(core, block));
                assert_eq!(d.owner(block), flat.owner(block));
                assert_eq!(d.tracked_blocks(), flat.tracked_blocks(), "len @{step}");
            }
        }
        // Enough churn ran to exercise tombstoning in every shard count.
        assert!(dirs[0].tracked_blocks() > 0);
    }
}
