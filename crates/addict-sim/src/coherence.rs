//! MESI-style directory coherence for the private L1-D caches.
//!
//! Table 1 lists "MESI-coherence for L1-D". The simulator needs coherence
//! for two observable effects:
//!
//! 1. when a migrated transaction writes data it dirtied on its previous
//!    core, the stale copy must be invalidated (SLICC/ADDICT "leave their
//!    data behind", Section 4.3), and
//! 2. dirty blocks fetched from a remote L1-D cost a cache-to-cache
//!    transfer rather than a memory round trip.
//!
//! We model a full-map directory: per block, a sharer bitmask and an optional
//! modified owner. The instruction stream is read-only so L1-I needs no
//! coherence.

use std::collections::HashMap;

use crate::block::BlockAddr;

/// Cores that must act for a coherence transaction to complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoherenceAction {
    /// Cores whose L1-D copy must be invalidated.
    pub invalidate: Vec<usize>,
    /// Core that holds the block modified and must supply it / downgrade
    /// (charged as a cache-to-cache transfer).
    pub supplier: Option<usize>,
}

impl CoherenceAction {
    /// True when no remote cache needs to do anything.
    pub fn is_silent(&self) -> bool {
        self.invalidate.is_empty() && self.supplier.is_none()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of cores holding the block (shared or modified).
    sharers: u64,
    /// Core holding the block in Modified state, if any.
    owner: Option<usize>,
}

/// Full-map directory for up to 64 cores.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<BlockAddr, DirEntry>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Core `core` reads `block`. Returns the remote work required.
    /// After this call the directory records `core` as a sharer.
    pub fn on_read(&mut self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let entry = self.entries.entry(block).or_default();
        let mut action = CoherenceAction::default();
        if let Some(owner) = entry.owner {
            if owner != core {
                // M -> S at the owner; it supplies the data.
                action.supplier = Some(owner);
                entry.owner = None;
            }
        }
        entry.sharers |= 1 << core;
        action
    }

    /// Core `core` writes `block`. All other copies are invalidated and
    /// `core` becomes the modified owner.
    pub fn on_write(&mut self, core: usize, block: BlockAddr) -> CoherenceAction {
        debug_assert!(core < 64);
        let entry = self.entries.entry(block).or_default();
        let mut action = CoherenceAction::default();
        if let Some(owner) = entry.owner {
            if owner != core {
                action.supplier = Some(owner);
            }
        }
        let others = entry.sharers & !(1 << core);
        for c in 0..64 {
            if others & (1 << c) != 0 && Some(c) != action.supplier {
                action.invalidate.push(c);
            }
        }
        if let Some(s) = action.supplier {
            // The supplier's copy is also invalidated on a write miss.
            action.invalidate.push(s);
        }
        entry.sharers = 1 << core;
        entry.owner = Some(core);
        action
    }

    /// Core `core` evicted `block` from its L1-D (silently for clean lines,
    /// with a writeback for dirty ones — the caller models the writeback).
    pub fn on_evict(&mut self, core: usize, block: BlockAddr) {
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.sharers &= !(1 << core);
            if entry.owner == Some(core) {
                entry.owner = None;
            }
            if entry.sharers == 0 {
                self.entries.remove(&block);
            }
        }
    }

    /// Is `core` recorded as holding `block`?
    pub fn is_sharer(&self, core: usize, block: BlockAddr) -> bool {
        self.entries
            .get(&block)
            .is_some_and(|e| e.sharers & (1 << core) != 0)
    }

    /// The modified owner of `block`, if any.
    pub fn owner(&self, block: BlockAddr) -> Option<usize> {
        self.entries.get(&block).and_then(|e| e.owner)
    }

    /// Number of blocks with at least one sharer (diagnostics).
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(42);

    #[test]
    fn first_read_is_silent() {
        let mut d = Directory::new();
        let a = d.on_read(0, B);
        assert!(a.is_silent());
        assert!(d.is_sharer(0, B));
    }

    #[test]
    fn read_after_remote_write_downgrades_owner() {
        let mut d = Directory::new();
        assert!(d.on_write(1, B).is_silent());
        assert_eq!(d.owner(B), Some(1));
        let a = d.on_read(0, B);
        assert_eq!(a.supplier, Some(1));
        assert!(a.invalidate.is_empty());
        assert_eq!(d.owner(B), None);
        assert!(d.is_sharer(0, B) && d.is_sharer(1, B));
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new();
        d.on_read(0, B);
        d.on_read(1, B);
        d.on_read(2, B);
        let a = d.on_write(3, B);
        let mut inv = a.invalidate.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 1, 2]);
        assert_eq!(d.owner(B), Some(3));
        assert!(!d.is_sharer(0, B));
        assert!(d.is_sharer(3, B));
    }

    #[test]
    fn write_after_remote_write_transfers_and_invalidates() {
        let mut d = Directory::new();
        d.on_write(5, B);
        let a = d.on_write(6, B);
        assert_eq!(a.supplier, Some(5));
        assert_eq!(a.invalidate, vec![5]);
        assert_eq!(d.owner(B), Some(6));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.on_write(2, B);
        assert!(d.on_write(2, B).is_silent());
        assert_eq!(d.owner(B), Some(2));
    }

    #[test]
    fn evict_clears_state() {
        let mut d = Directory::new();
        d.on_write(0, B);
        d.on_evict(0, B);
        assert_eq!(d.owner(B), None);
        assert!(!d.is_sharer(0, B));
        assert_eq!(d.tracked_blocks(), 0);
        // Fresh write afterwards is silent again.
        assert!(d.on_write(1, B).is_silent());
    }

    #[test]
    fn evict_of_one_sharer_keeps_others() {
        let mut d = Directory::new();
        d.on_read(0, B);
        d.on_read(1, B);
        d.on_evict(0, B);
        assert!(d.is_sharer(1, B));
        assert_eq!(d.tracked_blocks(), 1);
    }
}
