//! Latency model.
//!
//! The simulator charges cycles per event rather than simulating a pipeline:
//!
//! * executing `n` instructions costs `n * base_cpi` cycles (this folds in
//!   the 3-cycle L1 load-to-use latency of hits, which a 128-entry-ROB OoO
//!   core hides completely),
//! * an L1-I miss stalls the front end and is charged in full — superscalar
//!   OoO cores cannot hide instruction-fetch stalls (Section 4.3),
//! * an L1-D miss is charged with an out-of-order *hiding factor*: misses
//!   serviced on-chip are mostly overlapped with useful work, off-chip
//!   misses mostly are not.
//!
//! All latencies are `f64` cycles; drivers keep per-core `f64` clocks and
//! round only for reporting.

use crate::config::SimConfig;
use crate::hierarchy::ServiceLevel;

/// Computes charged latencies from the configuration.
#[derive(Debug, Clone)]
pub struct TimingModel {
    cfg: SimConfig,
}

impl TimingModel {
    /// Build a timing model over a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        TimingModel { cfg }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cycles to execute `n_instr` instructions, excluding miss stalls.
    #[inline]
    pub fn execute(&self, n_instr: u64) -> f64 {
        n_instr as f64 * self.cfg.base_cpi
    }

    /// Raw (unhidden) service latency for a request resolved at `level`,
    /// having traversed `hops` torus hops each way for any LLC traffic.
    pub fn raw_service_latency(&self, level: ServiceLevel, hops: u32) -> f64 {
        let llc_round = self.cfg.llc_hit_cycles + 2.0 * f64::from(hops) * self.cfg.hop_cycles;
        match level {
            ServiceLevel::L1 => 0.0,
            ServiceLevel::L2Private => self.cfg.l2_private_hit_cycles,
            ServiceLevel::Llc => llc_round,
            ServiceLevel::RemoteL1 => llc_round + self.cfg.coherence_transfer_cycles,
            ServiceLevel::Memory => llc_round + self.cfg.mem_latency_cycles(),
        }
    }

    /// Charged latency of an instruction-fetch miss resolved at `level`
    /// (full penalty: the front end stalls).
    pub fn instr_miss(&self, level: ServiceLevel, hops: u32) -> f64 {
        self.raw_service_latency(level, hops)
    }

    /// Charged latency of a data access resolved at `level`, after OoO
    /// hiding.
    ///
    /// An L1 hit charges exactly `0.0` in every configuration (the
    /// load-to-use latency is folded into `base_cpi`). The run-granular
    /// data path relies on this: accesses its private fast lane consumes
    /// are L1 hits, so skipping the charge keeps clocks bit-identical to
    /// the per-block path.
    pub fn data_access(&self, level: ServiceLevel, hops: u32) -> f64 {
        let raw = self.raw_service_latency(level, hops);
        let hide = match level {
            ServiceLevel::L1 => 0.0,
            ServiceLevel::L2Private | ServiceLevel::Llc | ServiceLevel::RemoteL1 => {
                self.cfg.ooo_hide_onchip
            }
            ServiceLevel::Memory => self.cfg.ooo_hide_offchip,
        };
        raw * (1.0 - hide)
    }

    /// Cycles charged for migrating a thread between cores.
    pub fn migration(&self) -> f64 {
        self.cfg.migration_cycles
    }

    /// Cycles charged for a same-core context switch (STREX-style). Modeled
    /// at the same ~6-cache-line state save/restore cost as a migration.
    pub fn context_switch(&self) -> f64 {
        self.cfg.migration_cycles
    }

    /// Cycles to open a speculative (HTM) region: checkpoint the register
    /// state and arm the read/write-set trackers. A handful of cycles on
    /// real hardware (e.g. Intel RTM's XBEGIN); modeled as a small constant.
    pub fn htm_begin(&self) -> f64 {
        3.0
    }

    /// Cycles to commit a speculative region: atomically clear the set
    /// trackers and retire the buffered stores.
    pub fn htm_commit(&self) -> f64 {
        5.0
    }

    /// Cycles to abort a speculative region: discard buffered stores and
    /// restore the checkpoint. Modeled at roughly half a migration — the
    /// checkpoint restore moves architectural state like a context switch
    /// but stays core-local.
    pub fn htm_abort(&self) -> f64 {
        self.cfg.migration_cycles * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(SimConfig::paper_default())
    }

    #[test]
    fn execute_uses_base_cpi() {
        let t = model();
        assert!((t.execute(1000) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn l1_hits_are_free_beyond_base_cpi() {
        let t = model();
        assert_eq!(t.data_access(ServiceLevel::L1, 0), 0.0);
        assert_eq!(t.instr_miss(ServiceLevel::L1, 0), 0.0);
        // The data-run fast lane's invariant: an L1-D hit charges a bitwise
        // +0.0 whatever the configuration or hop count.
        for t in [model(), TimingModel::new(SimConfig::paper_deep())] {
            for hops in 0..4 {
                assert_eq!(
                    t.data_access(ServiceLevel::L1, hops).to_bits(),
                    0.0f64.to_bits()
                );
            }
        }
    }

    #[test]
    fn instruction_misses_charged_in_full() {
        let t = model();
        // LLC at 2 hops: 16 + 2*2*1 = 20 cycles.
        assert!((t.instr_miss(ServiceLevel::Llc, 2) - 20.0).abs() < 1e-9);
        // Memory: 16 + 105 = 121 at zero hops.
        assert!((t.instr_miss(ServiceLevel::Memory, 0) - 121.0).abs() < 1e-9);
    }

    #[test]
    fn onchip_data_misses_mostly_hidden() {
        let t = model();
        let llc = t.data_access(ServiceLevel::Llc, 0);
        // 16 cycles * (1 - 0.7) = 4.8.
        assert!((llc - 4.8).abs() < 1e-9);
        // Data miss charged less than the equivalent instruction miss.
        assert!(llc < t.instr_miss(ServiceLevel::Llc, 0));
    }

    #[test]
    fn offchip_data_misses_mostly_exposed() {
        let t = model();
        let mem = t.data_access(ServiceLevel::Memory, 0);
        let raw = 16.0 + 105.0;
        assert!((mem - raw * 0.85).abs() < 1e-9);
        // Off-chip dominates on-chip even after hiding.
        assert!(mem > t.data_access(ServiceLevel::Llc, 4));
    }

    #[test]
    fn remote_l1_costs_more_than_llc() {
        let t = model();
        assert!(
            t.raw_service_latency(ServiceLevel::RemoteL1, 1)
                > t.raw_service_latency(ServiceLevel::Llc, 1)
        );
    }

    #[test]
    fn migration_cost_matches_paper() {
        let t = model();
        assert!((t.migration() - 90.0).abs() < 1e-9);
        assert_eq!(t.migration(), t.context_switch());
    }

    #[test]
    fn htm_costs_are_ordered() {
        let t = model();
        // Begin is cheaper than commit, both far cheaper than an abort,
        // and an abort stays under a full migration (core-local restore).
        assert!(t.htm_begin() < t.htm_commit());
        assert!(t.htm_commit() < t.htm_abort());
        assert!(t.htm_abort() < t.migration());
        assert!((t.htm_abort() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn deep_hierarchy_private_l2_latency() {
        let t = TimingModel::new(SimConfig::paper_deep());
        assert!((t.instr_miss(ServiceLevel::L2Private, 0) - 7.0).abs() < 1e-9);
        // Private L2 far cheaper than the shared LLC.
        assert!(t.instr_miss(ServiceLevel::L2Private, 0) < t.instr_miss(ServiceLevel::Llc, 0));
    }
}
