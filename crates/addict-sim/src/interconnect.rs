//! 2D-torus interconnect model (Table 1: "2D Torus, 1-cycle hop latency").
//!
//! Cores and shared-cache banks are co-located on a `k x k` torus (16 cores
//! -> 4x4). The only thing the timing model needs from the interconnect is
//! the hop count between a requesting core and the NUCA bank (or remote core)
//! that services the request; contention within the network is not modeled,
//! which is conservative for every scheduler equally.

/// A `width x height` torus.
#[derive(Debug, Clone, Copy)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Build the smallest near-square torus with at least `n` nodes.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "torus needs at least one node");
        let mut width = (n as f64).sqrt().floor() as usize;
        while width > 1 && !n.is_multiple_of(width) {
            width -= 1;
        }
        let width = width.max(1);
        Torus {
            width,
            height: n / width,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Torus (wrap-around Manhattan) hop distance between two node ids.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        let (ax, ay) = (a % self.width, a / self.width);
        let (bx, by) = (b % self.width, b / self.width);
        let dx = ax.abs_diff(bx).min(self.width - ax.abs_diff(bx));
        let dy = ay.abs_diff(by).min(self.height - ay.abs_diff(by));
        (dx + dy) as u32
    }

    /// Average hop distance from `a` to every node (including itself).
    /// Useful for sanity checks and the power model's NoC activity estimate.
    pub fn mean_hops_from(&self, a: usize) -> f64 {
        let total: u32 = (0..self.nodes()).map(|b| self.hops(a, b)).sum();
        f64::from(total) / self.nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_nodes_is_4x4() {
        let t = Torus::for_nodes(16);
        assert_eq!(t.nodes(), 16);
        assert_eq!((t.width, t.height), (4, 4));
    }

    #[test]
    fn self_distance_is_zero() {
        let t = Torus::for_nodes(16);
        for n in 0..16 {
            assert_eq!(t.hops(n, n), 0);
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let t = Torus::for_nodes(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus::for_nodes(16); // 4x4
                                      // Node 0 (0,0) to node 3 (3,0): wrap gives 1 hop, not 3.
        assert_eq!(t.hops(0, 3), 1);
        // Corner to far corner (3,3): 1+1 via wrap.
        assert_eq!(t.hops(0, 15), 2);
    }

    #[test]
    fn max_distance_on_4x4_is_four() {
        let t = Torus::for_nodes(16);
        let max = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 4); // 2 in each dimension
    }

    #[test]
    fn odd_core_counts_still_form_a_torus() {
        let t = Torus::for_nodes(6);
        assert_eq!(t.nodes(), 6);
        let t = Torus::for_nodes(7); // degenerate 1x7 ring
        assert_eq!(t.nodes(), 7);
        assert_eq!(t.hops(0, 6), 1); // ring wrap
    }

    #[test]
    fn mean_hops_positive_on_multinode() {
        let t = Torus::for_nodes(16);
        assert!(t.mean_hops_from(0) > 0.0);
        assert!(t.mean_hops_from(0) < 4.0);
    }
}
