//! The simulated multicore machine: hierarchy + timing + statistics.
//!
//! A [`Machine`] is driven by a scheduler (in `addict-core`): the scheduler
//! decides *which* context runs *where*, calls [`Machine::fetch_instr`] /
//! [`Machine::access_data`] for the trace events of that context, and charges
//! the returned latencies to its own per-core clocks. The machine itself is
//! policy-free.

use crate::block::BlockAddr;
use crate::config::SimConfig;
use crate::hierarchy::{Hierarchy, MemAccessResult, ServiceLevel};
use crate::stats::MachineStats;
use crate::timing::TimingModel;

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// A multicore machine executing block-granularity memory traces.
#[derive(Debug)]
pub struct Machine {
    hierarchy: Hierarchy,
    timing: TimingModel,
    stats: MachineStats,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Machine {
            hierarchy: Hierarchy::new(cfg),
            timing: TimingModel::new(cfg.clone()),
            stats: MachineStats::new(cfg.n_cores),
        }
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &SimConfig {
        self.timing.config()
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.hierarchy.n_cores()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The timing model (exposed for drivers that need raw latencies).
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    fn record_common(&mut self, core: usize, res: &MemAccessResult) {
        let c = &mut self.stats.cores[core];
        if res.l2p_accessed {
            c.l2p_accesses += 1;
            if !res.l2p_hit {
                c.l2p_misses += 1;
            }
        }
        if res.llc_accessed {
            c.llc_accesses += 1;
            c.noc_hops += u64::from(res.hops) * 2;
            if !res.llc_hit {
                c.llc_misses += 1;
            }
        }
        if res.level == ServiceLevel::Memory {
            c.mem_accesses += 1;
        }
        if res.writeback {
            c.writebacks += 1;
        }
        if res.c2c {
            if let Some(s) = res.supplier {
                self.stats.cores[s].c2c_supplied += 1;
            }
        }
    }

    /// Execute `n_instr` instructions on `core`, all fetched from the
    /// instruction block `block`. Returns the cycles charged (execution +
    /// any fetch stall).
    pub fn fetch_instr(&mut self, core: CoreId, block: BlockAddr, n_instr: u64) -> f64 {
        let res = self.hierarchy.fetch_instr(core.0, block);
        {
            let c = &mut self.stats.cores[core.0];
            c.instructions += n_instr;
            c.l1i_accesses += 1;
            if res.level != ServiceLevel::L1 {
                c.l1i_misses += 1;
            }
        }
        self.record_common(core.0, &res);
        let base = self.timing.execute(n_instr);
        let stall = self.timing.instr_miss(res.level, res.hops);
        let c = &mut self.stats.cores[core.0];
        c.base_cycles += base;
        c.instr_stall_cycles += stall;
        base + stall
    }

    /// Access a data block on `core`. Returns the cycles charged (after OoO
    /// hiding).
    pub fn access_data(&mut self, core: CoreId, block: BlockAddr, write: bool) -> f64 {
        let res = self.hierarchy.access_data(core.0, block, write);
        {
            let c = &mut self.stats.cores[core.0];
            c.l1d_accesses += 1;
            if res.level != ServiceLevel::L1 {
                c.l1d_misses += 1;
            }
            c.invalidations_received += u64::from(res.invalidated_cores);
        }
        self.record_common(core.0, &res);
        let charged = self.timing.data_access(res.level, res.hops);
        self.stats.cores[core.0].data_stall_cycles += charged;
        charged
    }

    /// Migrate a thread from `from` to `to`; returns the overhead cycles the
    /// destination core is charged.
    pub fn migrate(&mut self, from: CoreId, to: CoreId) -> f64 {
        debug_assert_ne!(from, to, "migration to the same core is a context switch");
        let cost = self.timing.migration();
        let c = &mut self.stats.cores[to.0];
        c.migrations_in += 1;
        c.overhead_cycles += cost;
        cost
    }

    /// A same-core context switch (STREX-style time multiplexing).
    pub fn context_switch(&mut self, core: CoreId) -> f64 {
        let cost = self.timing.context_switch();
        let c = &mut self.stats.cores[core.0];
        c.context_switches += 1;
        c.overhead_cycles += cost;
        cost
    }

    /// Probe whether `core`'s L1-I holds `block` (SLICC heuristic).
    pub fn l1i_contains(&self, core: CoreId, block: BlockAddr) -> bool {
        self.hierarchy.l1i_contains(core.0, block)
    }

    /// Valid lines resident in `core`'s L1-I.
    pub fn l1i_occupancy(&self, core: CoreId) -> usize {
        self.hierarchy.l1i_occupancy(core.0)
    }

    /// Drop all of `core`'s L1-I contents.
    pub fn flush_l1i(&mut self, core: CoreId) {
        self.hierarchy.flush_l1i(core.0);
    }

    /// Next-line L1-I prefetches issued (0 unless enabled in the config).
    pub fn prefetches_issued(&self) -> u64 {
        self.hierarchy.prefetches_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(&SimConfig::paper_default().with_cores(4))
    }

    #[test]
    fn fetch_updates_instruction_counters() {
        let mut m = machine();
        let b = BlockAddr(100);
        let cycles = m.fetch_instr(CoreId(0), b, 16);
        // First fetch misses all the way to memory.
        assert!(cycles > m.timing().execute(16));
        assert_eq!(m.stats().instructions(), 16);
        assert_eq!(m.stats().l1i_accesses(), 1);
        assert_eq!(m.stats().l1i_misses(), 1);
        assert_eq!(m.stats().mem_accesses(), 1);

        // Re-fetch: pure execution cost.
        let cycles = m.fetch_instr(CoreId(0), b, 16);
        assert!((cycles - m.timing().execute(16)).abs() < 1e-9);
        assert_eq!(m.stats().l1i_misses(), 1);
    }

    #[test]
    fn data_access_counters_and_hiding() {
        let mut m = machine();
        let b = BlockAddr(0xdead);
        let miss_cycles = m.access_data(CoreId(1), b, false);
        assert_eq!(m.stats().l1d_misses(), 1);
        // Off-chip, partially hidden: cheaper than the raw instruction miss.
        let mut m2 = machine();
        let instr_miss = m2.fetch_instr(CoreId(1), b, 1) - m2.timing().execute(1);
        assert!(miss_cycles < instr_miss);
        let hit_cycles = m.access_data(CoreId(1), b, false);
        assert_eq!(hit_cycles, 0.0);
        assert_eq!(m.stats().l1d_accesses(), 2);
    }

    #[test]
    fn migration_is_counted_and_charged() {
        let mut m = machine();
        let cost = m.migrate(CoreId(0), CoreId(2));
        assert!((cost - 90.0).abs() < 1e-9);
        assert_eq!(m.stats().migrations_in(), 1);
        assert_eq!(m.stats().cores[2].migrations_in, 1);
        assert!((m.stats().overhead_cycles() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn context_switch_counted_separately() {
        let mut m = machine();
        m.context_switch(CoreId(3));
        assert_eq!(m.stats().context_switches(), 1);
        assert_eq!(m.stats().migrations_in(), 0);
    }

    #[test]
    fn writes_to_shared_data_count_invalidations() {
        let mut m = machine();
        let b = BlockAddr(7);
        m.access_data(CoreId(0), b, false);
        m.access_data(CoreId(1), b, false);
        m.access_data(CoreId(2), b, true);
        assert_eq!(m.stats().invalidations_received(), 2);
    }

    #[test]
    fn mpki_reflects_activity() {
        let mut m = machine();
        for i in 0..100u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        // 100 distinct blocks, all cold misses: 100 misses / 1000 instr.
        assert!((m.stats().l1i_mpki() - 100.0).abs() < 1e-9);
    }
}
