//! The simulated multicore machine: hierarchy + timing + statistics.
//!
//! A [`Machine`] is driven by a scheduler (in `addict-core`): the scheduler
//! decides *which* context runs *where*, calls [`Machine::fetch_instr`] /
//! [`Machine::access_data`] for the trace events of that context, and charges
//! the returned latencies to its own per-core clocks. The machine itself is
//! policy-free.

use crate::block::{BlockAddr, DataAccess};
use crate::config::SimConfig;
use crate::hierarchy::{Hierarchy, MemAccessResult, ServiceLevel};
use crate::stats::MachineStats;
use crate::timing::TimingModel;

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// Result of [`Machine::fetch_instr_run`]: how far a segment-granular
/// instruction walk progressed and where the clock landed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Blocks executed (hits plus, when `missed_last`, one serviced miss).
    pub blocks: u16,
    /// The per-core clock after charging every executed block.
    pub now: f64,
    /// The final executed block missed the L1-I (drivers consult their
    /// policy there; miss-free walks never leave the fast loop).
    pub missed_last: bool,
}

/// A multicore machine executing block-granularity memory traces.
#[derive(Debug)]
pub struct Machine {
    hierarchy: Hierarchy,
    timing: TimingModel,
    stats: MachineStats,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Machine {
            hierarchy: Hierarchy::new(cfg),
            timing: TimingModel::new(cfg.clone()),
            stats: MachineStats::new(cfg.n_cores),
        }
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &SimConfig {
        self.timing.config()
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.hierarchy.n_cores()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The timing model (exposed for drivers that need raw latencies).
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    fn record_common(&mut self, core: usize, res: &MemAccessResult) {
        let c = &mut self.stats.cores[core];
        if res.l2p_accessed {
            c.l2p_accesses += 1;
            if !res.l2p_hit {
                c.l2p_misses += 1;
            }
        }
        if res.llc_accessed {
            c.llc_accesses += 1;
            c.noc_hops += u64::from(res.hops) * 2;
            if !res.llc_hit {
                c.llc_misses += 1;
            }
        }
        if res.level == ServiceLevel::Memory {
            c.mem_accesses += 1;
        }
        if res.writeback {
            c.writebacks += 1;
        }
        if res.c2c {
            if let Some(s) = res.supplier {
                self.stats.cores[s].c2c_supplied += 1;
            }
        }
    }

    /// Execute `n_instr` instructions on `core`, all fetched from the
    /// instruction block `block`. Returns the cycles charged (execution +
    /// any fetch stall).
    pub fn fetch_instr(&mut self, core: CoreId, block: BlockAddr, n_instr: u64) -> f64 {
        let res = self.hierarchy.fetch_instr(core.0, block);
        {
            let c = &mut self.stats.cores[core.0];
            c.instructions += n_instr;
            c.l1i_accesses += 1;
            if res.level != ServiceLevel::L1 {
                c.l1i_misses += 1;
            }
        }
        self.record_common(core.0, &res);
        let base = self.timing.execute(n_instr);
        let stall = self.timing.instr_miss(res.level, res.hops);
        let c = &mut self.stats.cores[core.0];
        c.base_cycles += base;
        c.instr_stall_cycles += stall;
        base + stall
    }

    /// Execute up to `n_blocks` *consecutive* instruction blocks starting at
    /// `start` on `core`, charging `ipb` instructions per block — the
    /// segment-granular replay hot path.
    ///
    /// Leading L1-I hits are consumed in one tight loop inside the cache
    /// (hoisted set arithmetic, no per-block dispatch); misses are serviced
    /// through the ordinary [`Machine::fetch_instr`] path. With
    /// `stop_on_miss`, the first serviced miss ends the run so the driver
    /// can consult its scheduling policy; without it (policies indifferent
    /// to misses) the walk continues to the end of the run without ever
    /// leaving the machine. All statistics and the returned clock are
    /// bit-identical to issuing the same blocks through per-block
    /// [`Machine::fetch_instr`] calls and accumulating `now += cycles` per
    /// block.
    pub fn fetch_instr_run(
        &mut self,
        core: CoreId,
        start: BlockAddr,
        n_blocks: u16,
        ipb: u16,
        mut now: f64,
        stop_on_miss: bool,
    ) -> RunOutcome {
        debug_assert!(n_blocks > 0, "empty instruction run");
        let base = self.timing.execute(u64::from(ipb));
        let mut done: u16 = 0;
        if !self.hierarchy.has_next_line_prefetch() {
            loop {
                let hits = self.hierarchy.l1i_run_hits(
                    core.0,
                    BlockAddr(start.0 + u64::from(done)),
                    n_blocks - done,
                );
                if hits > 0 {
                    let c = &mut self.stats.cores[core.0];
                    c.instructions += u64::from(ipb) * u64::from(hits);
                    c.l1i_accesses += u64::from(hits);
                    // f64 accumulation stays per-block so totals are
                    // bit-equal to the per-block path (f64 addition is
                    // order-sensitive).
                    for _ in 0..hits {
                        c.base_cycles += base;
                        now += base;
                    }
                    done += hits;
                }
                if done == n_blocks {
                    return RunOutcome {
                        blocks: done,
                        now,
                        missed_last: false,
                    };
                }
                // Service one miss. The walk already proved the L1-I miss,
                // so fill directly and charge exactly what per-block
                // `fetch_instr` would.
                let block = BlockAddr(start.0 + u64::from(done));
                let res = self.hierarchy.fetch_instr_after_l1i_miss(core.0, block);
                {
                    let c = &mut self.stats.cores[core.0];
                    c.instructions += u64::from(ipb);
                    c.l1i_accesses += 1;
                    c.l1i_misses += 1;
                }
                self.record_common(core.0, &res);
                let stall = self.timing.instr_miss(res.level, res.hops);
                let c = &mut self.stats.cores[core.0];
                c.base_cycles += base;
                c.instr_stall_cycles += stall;
                now += base + stall;
                done += 1;
                if stop_on_miss {
                    return RunOutcome {
                        blocks: done,
                        now,
                        missed_last: true,
                    };
                }
                if done == n_blocks {
                    return RunOutcome {
                        blocks: done,
                        now,
                        missed_last: false,
                    };
                }
            }
        }
        // Next-line prefetcher enabled: prefetch issue is per-fetch state,
        // so walk block-by-block through the full path (still skipping all
        // per-block driver work, which is where most replay time goes).
        while done < n_blocks {
            let block = BlockAddr(start.0 + u64::from(done));
            let misses_before = self.stats.cores[core.0].l1i_misses;
            now += self.fetch_instr(core, block, u64::from(ipb));
            done += 1;
            if stop_on_miss && self.stats.cores[core.0].l1i_misses > misses_before {
                return RunOutcome {
                    blocks: done,
                    now,
                    missed_last: true,
                };
            }
        }
        RunOutcome {
            blocks: done,
            now,
            missed_last: false,
        }
    }

    /// Access a data block on `core`. Returns the cycles charged (after OoO
    /// hiding).
    pub fn access_data(&mut self, core: CoreId, block: BlockAddr, write: bool) -> f64 {
        let res = self.hierarchy.access_data(core.0, block, write);
        {
            let c = &mut self.stats.cores[core.0];
            c.l1d_accesses += 1;
            if res.level != ServiceLevel::L1 {
                c.l1d_misses += 1;
            }
            c.invalidations_received += u64::from(res.invalidated_cores);
        }
        self.record_common(core.0, &res);
        let charged = self.timing.data_access(res.level, res.hops);
        self.stats.cores[core.0].data_stall_cycles += charged;
        charged
    }

    /// Execute a run of consecutive data accesses on `core` — the
    /// run-granular data hot path. Leading *private* accesses (read hits,
    /// and write hits on already-dirty lines) are consumed in one tight
    /// loop inside the cache ([`Hierarchy::l1d_run_hits`]) without touching
    /// the coherence directory; the first shared, upgraded, or missing
    /// block falls back to the ordinary [`Machine::access_data`] path — so
    /// the directory never sees a batched conflicting access — and the walk
    /// resumes after it. The whole run always completes.
    ///
    /// Returns the per-core clock after charging every access. Statistics,
    /// directory state, and the clock are bit-identical to issuing the same
    /// accesses through per-block [`Machine::access_data`] calls and
    /// accumulating `now += cycles`: consumed accesses are L1 hits, whose
    /// charge is exactly `0.0` (see [`TimingModel::data_access`]
    /// (crate::timing::TimingModel::data_access)), and adding `0.0` to the
    /// non-negative finite accumulators involved (`now`,
    /// `data_stall_cycles`) is a bitwise no-op. Should a future timing
    /// model ever charge L1-D hits, the guard below routes every access
    /// through the per-block path, so the run API stays correct (if no
    /// longer fast) instead of silently dropping charges.
    pub fn access_data_run(&mut self, core: CoreId, run: &[DataAccess], mut now: f64) -> f64 {
        if self.timing.data_access(ServiceLevel::L1, 0) != 0.0 {
            for a in run {
                now += self.access_data(core, a.block, a.write);
            }
            return now;
        }
        let mut i = 0usize;
        while i < run.len() {
            let hits = self.hierarchy.l1d_run_hits(core.0, &run[i..]);
            if hits > 0 {
                self.stats.cores[core.0].l1d_accesses += hits as u64;
                i += hits;
                if i == run.len() {
                    break;
                }
            }
            // Coherent tail, batched by LLC bank: the access the fast lane
            // stopped at plus the consecutive accesses mapping to the same
            // bank go through the full per-block path as one group, without
            // re-probing the fast lane between them. Bit-identical to
            // per-access fallback: an access in the group that turns out to
            // be a private L1 hit charges exactly 0.0 and records the same
            // stats the fast lane would (the directory transaction it runs
            // is idempotent for resident lines — see
            // [`Hierarchy::l1d_run_hits`]); only the `data_run_fast_hits`
            // diagnostic, deliberately outside [`MachineStats`], can read
            // lower. The group shares one bank resolution and skips its
            // failed fast-lane probes.
            let bank = self.hierarchy.bank_of_block(run[i].block);
            let mut j = i + 1;
            while j < run.len() && self.hierarchy.bank_of_block(run[j].block) == bank {
                j += 1;
            }
            // The group's addresses are known before its serial walk:
            // warm each access's LLC set and directory probe head up
            // front so the walk's dependent chases overlap instead of
            // paying one demand miss each once those tables outgrow the
            // host cache (pure hints — results are bit-identical).
            for a in &run[i..j] {
                self.hierarchy.prefetch_data(a.block);
            }
            for a in &run[i..j] {
                now += self.access_data(core, a.block, a.write);
            }
            i = j;
        }
        now
    }

    /// Data accesses consumed by the run path's private fast lane
    /// (diagnostic; not part of [`MachineStats`], so run-path and
    /// block-path statistics stay comparable).
    pub fn data_run_fast_hits(&self) -> u64 {
        self.hierarchy.data_run_fast_hits()
    }

    /// Read-only view of the memory hierarchy (diagnostics and the
    /// model-based coherence tests).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Migrate a thread from `from` to `to`; returns the overhead cycles the
    /// destination core is charged.
    pub fn migrate(&mut self, from: CoreId, to: CoreId) -> f64 {
        debug_assert_ne!(from, to, "migration to the same core is a context switch");
        let cost = self.timing.migration();
        let c = &mut self.stats.cores[to.0];
        c.migrations_in += 1;
        c.overhead_cycles += cost;
        cost
    }

    /// A same-core context switch (STREX-style time multiplexing).
    pub fn context_switch(&mut self, core: CoreId) -> f64 {
        let cost = self.timing.context_switch();
        let c = &mut self.stats.cores[core.0];
        c.context_switches += 1;
        c.overhead_cycles += cost;
        cost
    }

    /// Charge `core` a policy-decided stall of `cycles` (speculation
    /// begin/commit/abort costs, backoff, discarded work). Accounted as
    /// overhead like migrations and context switches; returns the cycles
    /// so drivers can advance the clock with the same value they charged.
    pub fn stall(&mut self, core: CoreId, cycles: f64) -> f64 {
        self.stats.cores[core.0].overhead_cycles += cycles;
        cycles
    }

    /// Probe whether `core`'s L1-I holds `block` (SLICC heuristic).
    pub fn l1i_contains(&self, core: CoreId, block: BlockAddr) -> bool {
        self.hierarchy.l1i_contains(core.0, block)
    }

    /// Valid lines resident in `core`'s L1-I.
    pub fn l1i_occupancy(&self, core: CoreId) -> usize {
        self.hierarchy.l1i_occupancy(core.0)
    }

    /// Drop all of `core`'s L1-I contents.
    pub fn flush_l1i(&mut self, core: CoreId) {
        self.hierarchy.flush_l1i(core.0);
    }

    /// Next-line L1-I prefetches issued (0 unless enabled in the config).
    pub fn prefetches_issued(&self) -> u64 {
        self.hierarchy.prefetches_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(&SimConfig::paper_default().with_cores(4))
    }

    #[test]
    fn fetch_updates_instruction_counters() {
        let mut m = machine();
        let b = BlockAddr(100);
        let cycles = m.fetch_instr(CoreId(0), b, 16);
        // First fetch misses all the way to memory.
        assert!(cycles > m.timing().execute(16));
        assert_eq!(m.stats().instructions(), 16);
        assert_eq!(m.stats().l1i_accesses(), 1);
        assert_eq!(m.stats().l1i_misses(), 1);
        assert_eq!(m.stats().mem_accesses(), 1);

        // Re-fetch: pure execution cost.
        let cycles = m.fetch_instr(CoreId(0), b, 16);
        assert!((cycles - m.timing().execute(16)).abs() < 1e-9);
        assert_eq!(m.stats().l1i_misses(), 1);
    }

    #[test]
    fn data_access_counters_and_hiding() {
        let mut m = machine();
        let b = BlockAddr(0xdead);
        let miss_cycles = m.access_data(CoreId(1), b, false);
        assert_eq!(m.stats().l1d_misses(), 1);
        // Off-chip, partially hidden: cheaper than the raw instruction miss.
        let mut m2 = machine();
        let instr_miss = m2.fetch_instr(CoreId(1), b, 1) - m2.timing().execute(1);
        assert!(miss_cycles < instr_miss);
        let hit_cycles = m.access_data(CoreId(1), b, false);
        assert_eq!(hit_cycles, 0.0);
        assert_eq!(m.stats().l1d_accesses(), 2);
    }

    #[test]
    fn migration_is_counted_and_charged() {
        let mut m = machine();
        let cost = m.migrate(CoreId(0), CoreId(2));
        assert!((cost - 90.0).abs() < 1e-9);
        assert_eq!(m.stats().migrations_in(), 1);
        assert_eq!(m.stats().cores[2].migrations_in, 1);
        assert!((m.stats().overhead_cycles() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn context_switch_counted_separately() {
        let mut m = machine();
        m.context_switch(CoreId(3));
        assert_eq!(m.stats().context_switches(), 1);
        assert_eq!(m.stats().migrations_in(), 0);
    }

    #[test]
    fn writes_to_shared_data_count_invalidations() {
        let mut m = machine();
        let b = BlockAddr(7);
        m.access_data(CoreId(0), b, false);
        m.access_data(CoreId(1), b, false);
        m.access_data(CoreId(2), b, true);
        assert_eq!(m.stats().invalidations_received(), 2);
    }

    /// Drive `n_blocks` from `start` through the segment path on one
    /// machine and the per-block path on another; both must agree bit-wise.
    fn run_both(
        start: u64,
        n_blocks: u16,
        prefetch: bool,
        stop_on_miss: bool,
    ) -> (Machine, Machine) {
        let mut cfg = SimConfig::paper_default().with_cores(2);
        cfg.l1i_next_line_prefetch = prefetch;
        let mut seg = Machine::new(&cfg);
        let mut flat = Machine::new(&cfg);
        // Warm a prefix so the walk sees hits and misses.
        for m in [&mut seg, &mut flat] {
            for i in 0..6u64 {
                m.fetch_instr(CoreId(0), BlockAddr(start + i), 10);
            }
        }
        let mut now_seg = 1.5f64;
        let mut done = 0u16;
        while done < n_blocks {
            let out = seg.fetch_instr_run(
                CoreId(0),
                BlockAddr(start + u64::from(done)),
                n_blocks - done,
                10,
                now_seg,
                stop_on_miss,
            );
            now_seg = out.now;
            done += out.blocks;
        }
        let mut now_flat = 1.5f64;
        for i in 0..u64::from(n_blocks) {
            now_flat += flat.fetch_instr(CoreId(0), BlockAddr(start + i), 10);
        }
        assert_eq!(now_seg.to_bits(), now_flat.to_bits(), "clocks diverged");
        (seg, flat)
    }

    #[test]
    fn fetch_instr_run_matches_per_block_path() {
        for prefetch in [false, true] {
            for stop_on_miss in [false, true] {
                let (seg, flat) = run_both(0x4000, 40, prefetch, stop_on_miss);
                assert_eq!(
                    format!("{:?}", seg.stats()),
                    format!("{:?}", flat.stats()),
                    "stats diverged (prefetch={prefetch}, stop_on_miss={stop_on_miss})"
                );
                assert_eq!(seg.prefetches_issued(), flat.prefetches_issued());
                // LRU state must agree too.
                assert_eq!(seg.l1i_occupancy(CoreId(0)), flat.l1i_occupancy(CoreId(0)));
            }
        }
    }

    #[test]
    fn fetch_instr_run_stops_at_each_miss() {
        let mut m = machine();
        // 6 warm blocks then cold ones: first call consumes the warm run
        // plus one serviced miss.
        for i in 0..6u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        let out = m.fetch_instr_run(CoreId(0), BlockAddr(0), 16, 10, 0.0, true);
        assert!(out.missed_last);
        assert_eq!(out.blocks, 7);
        // Entirely warm run: no miss, full length.
        let out = m.fetch_instr_run(CoreId(0), BlockAddr(0), 7, 10, 0.0, true);
        assert!(!out.missed_last);
        assert_eq!(out.blocks, 7);
    }

    #[test]
    fn fetch_instr_run_services_whole_run_when_miss_blind() {
        let mut m = machine();
        for i in 0..6u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        // 6 hits + 10 cold misses, all in one call.
        let out = m.fetch_instr_run(CoreId(0), BlockAddr(0), 16, 10, 0.0, false);
        assert!(!out.missed_last);
        assert_eq!(out.blocks, 16);
        assert_eq!(m.stats().l1i_misses(), 6 + 10);
    }

    fn da(block: u64, write: bool) -> DataAccess {
        DataAccess {
            block: BlockAddr(block),
            write,
        }
    }

    /// Drive the same interleaved data accesses through the run path on one
    /// machine and the per-block path on another; both must agree bit-wise.
    #[test]
    fn access_data_run_matches_per_block_path() {
        let mut run_m = machine();
        let mut blk_m = machine();
        // Warm shared and private state: block 50 shared by cores 0/1,
        // block 51 dirty on core 0, blocks 60.. private to core 1.
        for m in [&mut run_m, &mut blk_m] {
            m.access_data(CoreId(0), BlockAddr(50), false);
            m.access_data(CoreId(1), BlockAddr(50), false);
            m.access_data(CoreId(0), BlockAddr(51), true);
            for b in 60..66u64 {
                m.access_data(CoreId(1), BlockAddr(b), false);
            }
        }
        // Mixed run on core 0: private hits, a dirty-write hit, a shared
        // write (invalidates core 1), cold misses, then hits again.
        let run0 = [
            da(50, false),
            da(51, true),
            da(50, true), // shared write: coherent path, invalidates core 1
            da(70, false),
            da(51, false),
            da(70, true),
        ];
        // Run on core 1: its private blocks plus the block core 0 stole.
        let run1 = [da(60, false), da(61, true), da(50, false), da(62, false)];
        let mut now_run = 3.25f64;
        now_run = run_m.access_data_run(CoreId(0), &run0, now_run);
        now_run = run_m.access_data_run(CoreId(1), &run1, now_run);
        let mut now_blk = 3.25f64;
        for a in &run0 {
            now_blk += blk_m.access_data(CoreId(0), a.block, a.write);
        }
        for a in &run1 {
            now_blk += blk_m.access_data(CoreId(1), a.block, a.write);
        }
        assert_eq!(now_run.to_bits(), now_blk.to_bits(), "clocks diverged");
        assert_eq!(
            format!("{:?}", run_m.stats()),
            format!("{:?}", blk_m.stats()),
            "stats diverged"
        );
        assert_eq!(
            run_m.hierarchy().tracked_data_blocks(),
            blk_m.hierarchy().tracked_data_blocks()
        );
        // The fast lane really engaged.
        assert!(run_m.data_run_fast_hits() > 0);
        assert_eq!(blk_m.data_run_fast_hits(), 0);
    }

    /// Every access of a run performs exactly one L1-D lookup — the stats
    /// double-source guard: `l1d_accesses` equals the number of data
    /// events regardless of how many fast-lane/coherent-path round trips
    /// the run took.
    #[test]
    fn access_data_run_counts_every_access_once() {
        let mut m = machine();
        let run: Vec<DataAccess> = (0..17u64).map(|i| da(0x100 + i % 7, i % 3 == 0)).collect();
        m.access_data_run(CoreId(2), &run, 0.0);
        assert_eq!(m.stats().l1d_accesses(), run.len() as u64);
        assert_eq!(m.stats().data_accesses(), run.len() as u64);
    }

    #[test]
    fn mpki_reflects_activity() {
        let mut m = machine();
        for i in 0..100u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        // 100 distinct blocks, all cold misses: 100 misses / 1000 instr.
        assert!((m.stats().l1i_mpki() - 100.0).abs() < 1e-9);
    }
}
