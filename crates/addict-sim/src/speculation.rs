//! Bounded-read/write-set hardware-transaction speculation.
//!
//! Models limited HTM in the style of the bounded read/write-set
//! proposals (PAPERS.md, arxiv 2510.15888): each core may hold one
//! *speculative window* open, tracking the cache lines it read and wrote
//! as fixed-width bitmasks over a bounded address window — at most
//! [`MAX_SPEC_LINES`] distinct lines, the same 64-wide budget as
//! [`SharerMask`](crate::coherence::SharerMask). Exceeding the window is
//! a **capacity abort**; a conflicting remote access is a **conflict
//! abort**.
//!
//! Conflict detection rides the existing MESI directory rather than a
//! second protocol: before a data access executes, the driving policy
//! peeks the [`CoherenceAction`] the directory will produce for it
//! ([`Directory::peek_read`](crate::coherence::Directory::peek_read) /
//! [`peek_write`](crate::coherence::Directory::peek_write)). The action's
//! victims — invalidated sharers and the downgraded owner-supplier — are
//! exactly the cores whose caches currently hold the line, and the
//! conflict relation is the classic HTM one: a remote write to a
//! read-set line, or any remote access to a write-set line, conflicts.
//! Two complementary mechanisms apply it:
//!
//! * [`Speculation::observe_action`] dooms every victim whose **open**
//!   window conflicts (invalidation victims holding the line in either
//!   set; a modified supplier holding it in the write set) — the
//!   holder-side, eager-doom direction for concurrently active windows.
//!   Because every speculative access is recorded immediately before it
//!   executes (and execution updates the directory), the directory's
//!   sharer/owner state is always a superset of the open windows, which
//!   makes the peeked action a complete conflict oracle — the property
//!   the shadow-model proptest in
//!   `addict-sim/tests/speculation_shadow.rs` pins down.
//! * [`Speculation::conflicts`] checks the **requester** against the
//!   victims' recently *closed* windows whose lifetime overlaps the
//!   requester's open region in simulated time ("requester loses").
//!   Trace replay executes threads segment-serially, so transactions
//!   that overlap in simulated time are consulted one after another; by
//!   the time the later one runs, the earlier one's window has closed
//!   and only the requester can still abort. A bounded per-core ring of
//!   the last [`ARCHIVE_DEPTH`] closed windows (with their time
//!   intervals) keeps this check O(1); windows falling off the ring are
//!   forgotten, a bounded-history approximation in the same spirit as
//!   the bounded read/write sets themselves.
//!
//! Evictions are deliberately *not* observed: a speculative line falling
//! out of the L1-D would be a capacity abort on real hardware, but this
//! model already bounds the window explicitly, so the directory remains
//! the sole conflict authority. Trace replay cannot rewind, so an abort
//! is modeled in **time**, not re-execution: the driving policy charges
//! the discarded cycles (tracked in [`SpecStats::discarded_cycles`]) plus
//! the abort cost through [`TimingModel`](crate::timing::TimingModel),
//! and lets the replay continue as the retry.

use serde::{Deserialize, Serialize};

use crate::block::BlockAddr;
use crate::coherence::CoherenceAction;

/// Most distinct cache lines one speculative window tracks — the
/// fixed-width bitmask budget (window slots index bits of a `u64`, the
/// `SharerMask` idiom applied to addresses instead of cores).
pub const MAX_SPEC_LINES: usize = 64;

/// Closed windows remembered per core for the time-overlap conflict
/// check ([`Speculation::conflicts`]). Older windows are forgotten.
pub const ARCHIVE_DEPTH: usize = 8;

/// Why a speculative window died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// A remote coherence action hit the window (remote write to a
    /// read/write-set line, or any remote access to a write-set line).
    Conflict,
    /// The window overflowed [`SpecConfig::capacity`] distinct lines.
    Capacity,
}

/// Tuning knobs of the speculation subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecConfig {
    /// Distinct lines a window may track before a capacity abort
    /// (clamped to [`MAX_SPEC_LINES`]).
    pub capacity: usize,
    /// Aborted attempts before the policy falls back to a
    /// non-speculative path.
    pub max_retries: u32,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            capacity: MAX_SPEC_LINES,
            max_retries: 3,
        }
    }
}

/// Aggregate speculation counters, reported per replay in
/// `ReplayResult::spec` (all-zero for non-speculative schedulers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Speculative regions opened (first attempts and retries alike).
    pub begins: u64,
    /// Regions that committed.
    pub commits: u64,
    /// Aborts caused by a conflicting remote access.
    pub aborts_conflict: u64,
    /// Aborts caused by window overflow.
    pub aborts_capacity: u64,
    /// Transactions that exhausted their retries and completed on the
    /// non-speculative fallback path.
    pub fallbacks: u64,
    /// Aborted attempts that were retried speculatively.
    pub retries: u64,
    /// Committed-then-discarded work: cycles of speculative execution
    /// thrown away by aborts (charged back to the clock as stalls).
    pub discarded_cycles: f64,
}

impl SpecStats {
    /// Total aborts, both causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity
    }

    /// Aborts per opened region, 0 for a speculation-free run.
    pub fn abort_rate(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.begins as f64
        }
    }
}

/// One core's speculative window: up to [`MAX_SPEC_LINES`] distinct line
/// addresses, with membership in the read and write sets encoded as
/// bitmasks over the window slots.
#[derive(Debug, Clone)]
struct SpecWindow {
    /// Tracked line addresses; only `addrs[..len]` is meaningful.
    addrs: [u64; MAX_SPEC_LINES],
    /// Live window slots.
    len: usize,
    /// Bit `i` set = `addrs[i]` is in the read set.
    read_mask: u64,
    /// Bit `i` set = `addrs[i]` is in the write set.
    write_mask: u64,
    /// A speculative region is open on this core.
    active: bool,
    /// A conflicting remote action hit the window; the owner aborts at
    /// its next policy consultation.
    doomed: bool,
    /// Cycle the open region began (for archived interval tracking).
    since: f64,
}

impl SpecWindow {
    const fn new() -> Self {
        SpecWindow {
            addrs: [0; MAX_SPEC_LINES],
            len: 0,
            read_mask: 0,
            write_mask: 0,
            active: false,
            doomed: false,
            since: 0.0,
        }
    }

    fn begin(&mut self, now: f64) {
        self.len = 0;
        self.read_mask = 0;
        self.write_mask = 0;
        self.active = true;
        self.doomed = false;
        self.since = now;
    }

    fn close(&mut self) {
        self.len = 0;
        self.read_mask = 0;
        self.write_mask = 0;
        self.active = false;
        self.doomed = false;
    }

    /// Window slot of `block`, if tracked (linear scan — the window is at
    /// most 64 entries and lives in two cache lines).
    #[inline]
    fn slot(&self, block: u64) -> Option<usize> {
        self.addrs[..self.len].iter().position(|&a| a == block)
    }

    fn record(&mut self, block: u64, write: bool, capacity: usize) -> Result<(), AbortCause> {
        let i = match self.slot(block) {
            Some(i) => i,
            None => {
                if self.len >= capacity {
                    return Err(AbortCause::Capacity);
                }
                self.addrs[self.len] = block;
                self.len += 1;
                self.len - 1
            }
        };
        if write {
            self.write_mask |= 1 << i;
        } else {
            self.read_mask |= 1 << i;
        }
        Ok(())
    }

    #[inline]
    fn in_read_or_write_set(&self, block: u64) -> bool {
        self.slot(block)
            .is_some_and(|i| (self.read_mask | self.write_mask) & (1 << i) != 0)
    }

    #[inline]
    fn in_write_set(&self, block: u64) -> bool {
        self.slot(block)
            .is_some_and(|i| self.write_mask & (1 << i) != 0)
    }
}

/// A closed (committed *or* aborted — either way its accesses executed)
/// window retained for the time-overlap conflict check: the lines it
/// touched plus its lifetime interval.
#[derive(Debug, Clone)]
struct ClosedWindow {
    addrs: [u64; MAX_SPEC_LINES],
    len: usize,
    read_mask: u64,
    write_mask: u64,
    /// Lifetime `[start, end]` in machine cycles.
    start: f64,
    end: f64,
}

impl ClosedWindow {
    #[inline]
    fn slot(&self, block: u64) -> Option<usize> {
        self.addrs[..self.len].iter().position(|&a| a == block)
    }

    /// Would an access (`write`?) to `block` by another transaction whose
    /// region overlaps this window's lifetime conflict with it?
    #[inline]
    fn conflicts_with(&self, block: u64, write: bool) -> bool {
        self.slot(block).is_some_and(|i| {
            let bit = 1u64 << i;
            self.write_mask & bit != 0 || (write && self.read_mask & bit != 0)
        })
    }
}

/// Per-core speculation state for one simulated machine, plus the
/// aggregate [`SpecStats`]. Owned by the driving policy (policies see the
/// machine immutably), not by the machine itself.
#[derive(Debug, Clone)]
pub struct Speculation {
    cfg: SpecConfig,
    windows: Vec<SpecWindow>,
    /// Per-core ring of the last [`ARCHIVE_DEPTH`] closed windows,
    /// oldest first.
    archive: Vec<Vec<ClosedWindow>>,
    stats: SpecStats,
}

impl Speculation {
    /// Speculation state for `n_cores` cores.
    pub fn new(n_cores: usize, cfg: SpecConfig) -> Self {
        let cfg = SpecConfig {
            capacity: cfg.capacity.clamp(1, MAX_SPEC_LINES),
            ..cfg
        };
        Speculation {
            cfg,
            windows: vec![SpecWindow::new(); n_cores],
            archive: vec![Vec::with_capacity(ARCHIVE_DEPTH); n_cores],
            stats: SpecStats::default(),
        }
    }

    /// The (clamped) configuration in effect.
    pub fn config(&self) -> SpecConfig {
        self.cfg
    }

    /// Open a speculative region on `core` at cycle `now` (fresh window;
    /// also the retry entry point).
    pub fn begin(&mut self, core: usize, now: f64) {
        self.windows[core].begin(now);
        self.stats.begins += 1;
    }

    /// Cycle `core`'s open region began.
    pub fn region_start(&self, core: usize) -> f64 {
        debug_assert!(self.windows[core].active);
        self.windows[core].since
    }

    /// Is a region open on `core`?
    pub fn is_active(&self, core: usize) -> bool {
        self.windows[core].active
    }

    /// Has a conflicting remote action doomed `core`'s open region?
    pub fn is_doomed(&self, core: usize) -> bool {
        self.windows[core].doomed
    }

    /// Record `core`'s own imminent access into its window. `Err` is a
    /// capacity abort (the caller charges it and decides retry/fallback);
    /// a core without an open region records nothing.
    pub fn record_access(
        &mut self,
        core: usize,
        block: BlockAddr,
        write: bool,
    ) -> Result<(), AbortCause> {
        let capacity = self.cfg.capacity;
        let w = &mut self.windows[core];
        if !w.active {
            return Ok(());
        }
        w.record(block.0, write, capacity)
    }

    /// Observe the [`CoherenceAction`] `actor`'s imminent access to
    /// `block` will produce, dooming every other core whose open window
    /// conflicts: invalidation victims holding the line in either set
    /// (the action's `invalidate` mask is non-empty only for writes), and
    /// a downgraded modified supplier holding it in the write set.
    pub fn observe_action(&mut self, actor: usize, block: BlockAddr, action: &CoherenceAction) {
        for victim in action.invalidate {
            if victim == actor {
                continue;
            }
            let w = &mut self.windows[victim];
            if w.active && w.in_read_or_write_set(block.0) {
                w.doomed = true;
            }
        }
        if let Some(supplier) = action.supplier {
            if supplier != actor {
                let w = &mut self.windows[supplier];
                if w.active && w.in_write_set(block.0) {
                    w.doomed = true;
                }
            }
        }
    }

    /// Archive `core`'s open window as closed over `[since, end]` and
    /// reset it. Aborted windows are archived too: their accesses already
    /// executed against the caches, so they conflict with later
    /// overlapping transactions just like committed ones.
    fn close_and_archive(&mut self, core: usize, end: f64) {
        let w = &mut self.windows[core];
        let ring = &mut self.archive[core];
        if ring.len() == ARCHIVE_DEPTH {
            ring.remove(0);
        }
        ring.push(ClosedWindow {
            addrs: w.addrs,
            len: w.len,
            read_mask: w.read_mask,
            write_mask: w.write_mask,
            start: w.since,
            end,
        });
        w.close();
    }

    /// Abort `core`'s open region for `cause` at cycle `now`: count it,
    /// archive the dead window, and close it. The caller charges the time
    /// cost and chooses retry ([`Speculation::begin`] again) or fallback.
    pub fn abort(&mut self, core: usize, cause: AbortCause, now: f64) {
        debug_assert!(self.windows[core].active);
        self.close_and_archive(core, now);
        match cause {
            AbortCause::Conflict => self.stats.aborts_conflict += 1,
            AbortCause::Capacity => self.stats.aborts_capacity += 1,
        }
    }

    /// Commit `core`'s open region at cycle `now`.
    pub fn commit(&mut self, core: usize, now: f64) {
        debug_assert!(self.windows[core].active);
        self.close_and_archive(core, now);
        self.stats.commits += 1;
    }

    /// Requester-side conflict check: would `core`'s imminent access
    /// (`write`?) to `block` at cycle `now`, producing `action` on the
    /// directory, conflict with a window that overlapped `core`'s open
    /// region in simulated time?
    ///
    /// The action's victims — invalidated sharers and the downgraded
    /// owner-supplier — are the cores whose caches currently hold the
    /// line; for each, the archived windows whose lifetime overlaps
    /// `[region_start(core), now]` are consulted under the usual
    /// relation (their write of the line conflicts with any access of
    /// ours; their read conflicts with our write). Returns `false` for a
    /// core with no open region — there is nothing to abort.
    pub fn conflicts(
        &self,
        core: usize,
        block: BlockAddr,
        write: bool,
        now: f64,
        action: &CoherenceAction,
    ) -> bool {
        if !self.windows[core].active {
            return false;
        }
        let since = self.windows[core].since;
        let overlapping_conflict = |victim: usize| {
            victim != core
                && self.archive[victim].iter().any(|cw| {
                    cw.end >= since && cw.start <= now && cw.conflicts_with(block.0, write)
                })
        };
        action.invalidate.into_iter().any(overlapping_conflict)
            || action.supplier.is_some_and(overlapping_conflict)
    }

    /// Count an abort that retries speculatively, discarding `discarded`
    /// cycles of speculative work.
    pub fn note_retry(&mut self, discarded: f64) {
        self.stats.retries += 1;
        self.stats.discarded_cycles += discarded;
    }

    /// Count a transaction giving up on speculation (non-speculative
    /// fallback path), discarding `discarded` cycles of its last attempt.
    pub fn note_fallback(&mut self, discarded: f64) {
        self.stats.fallbacks += 1;
        self.stats.discarded_cycles += discarded;
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    /// Distinct lines currently tracked by `core`'s window (diagnostics
    /// and the shadow-model tests).
    pub fn tracked_lines(&self, core: usize) -> usize {
        self.windows[core].len
    }

    /// Is `block` in `core`'s read set right now?
    pub fn reads_contain(&self, core: usize, block: BlockAddr) -> bool {
        let w = &self.windows[core];
        w.active && w.slot(block.0).is_some_and(|i| w.read_mask & (1 << i) != 0)
    }

    /// Is `block` in `core`'s write set right now?
    pub fn writes_contain(&self, core: usize, block: BlockAddr) -> bool {
        let w = &self.windows[core];
        w.active && w.in_write_set(block.0)
    }
}

// Thread-safety audit: policies carrying speculation state cross thread
// boundaries with their sweep results.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<Speculation>();
    shared::<SpecStats>();
    shared::<SpecConfig>();
    shared::<AbortCause>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::Directory;

    const B: BlockAddr = BlockAddr(7);

    fn spec(cores: usize) -> Speculation {
        Speculation::new(cores, SpecConfig::default())
    }

    #[test]
    fn window_tracks_read_and_write_sets() {
        let mut s = spec(2);
        s.begin(0, 0.0);
        assert!(s.is_active(0) && !s.is_active(1));
        s.record_access(0, B, false).unwrap();
        s.record_access(0, BlockAddr(9), true).unwrap();
        assert!(s.reads_contain(0, B) && !s.writes_contain(0, B));
        assert!(s.writes_contain(0, BlockAddr(9)));
        assert_eq!(s.tracked_lines(0), 2);
        // Re-touching a line reuses its slot; a read then write marks both.
        s.record_access(0, B, true).unwrap();
        assert!(s.reads_contain(0, B) && s.writes_contain(0, B));
        assert_eq!(s.tracked_lines(0), 2);
        s.commit(0, 10.0);
        assert!(!s.is_active(0));
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().begins, 1);
    }

    #[test]
    fn overflowing_the_window_is_a_capacity_abort() {
        let mut s = Speculation::new(
            1,
            SpecConfig {
                capacity: 4,
                max_retries: 1,
            },
        );
        s.begin(0, 0.0);
        for i in 0..4u64 {
            s.record_access(0, BlockAddr(i), false).unwrap();
        }
        // A re-touch of a tracked line still fits...
        s.record_access(0, BlockAddr(2), true).unwrap();
        // ...but a fifth distinct line does not.
        assert_eq!(
            s.record_access(0, BlockAddr(99), false),
            Err(AbortCause::Capacity)
        );
        s.abort(0, AbortCause::Capacity, 10.0);
        assert_eq!(s.stats().aborts_capacity, 1);
        assert!(!s.is_active(0));
    }

    #[test]
    fn capacity_clamps_to_the_bitmask_width() {
        let s = Speculation::new(
            1,
            SpecConfig {
                capacity: 1000,
                max_retries: 0,
            },
        );
        assert_eq!(s.config().capacity, MAX_SPEC_LINES);
    }

    #[test]
    fn remote_write_dooms_readers_and_writers() {
        let mut dir = Directory::new();
        let mut s = spec(3);
        // Core 0 speculatively reads B, core 1 speculatively writes it.
        s.begin(0, 0.0);
        s.record_access(0, B, false).unwrap();
        dir.on_read(0, B);
        s.begin(1, 0.0);
        s.record_access(1, B, true).unwrap();
        s.observe_action(1, B, &dir.peek_write(1, B));
        // Core 1's own write dooms the core-0 reader...
        assert!(s.is_doomed(0) && !s.is_doomed(1));
        dir.on_write(1, B);
        // ...and a non-speculative write by core 2 dooms core 1 (write
        // set) — doubly so, as owner-supplier and invalidation victim.
        s.observe_action(2, B, &dir.peek_write(2, B));
        dir.on_write(2, B);
        assert!(s.is_doomed(1));
        s.abort(0, AbortCause::Conflict, 10.0);
        s.abort(1, AbortCause::Conflict, 10.0);
        assert_eq!(s.stats().aborts_conflict, 2);
    }

    #[test]
    fn remote_read_dooms_only_the_write_set() {
        let mut dir = Directory::new();
        let mut s = spec(3);
        // Core 0 speculatively *reads* B: a remote read shares fine.
        s.begin(0, 0.0);
        s.record_access(0, B, false).unwrap();
        dir.on_read(0, B);
        s.observe_action(1, B, &dir.peek_read(1, B));
        dir.on_read(1, B);
        assert!(!s.is_doomed(0));
        // Core 0 upgrades to a speculative write; now a remote read
        // downgrades it (M -> S supplier) and must doom it.
        s.record_access(0, B, true).unwrap();
        dir.on_write(0, B);
        s.observe_action(2, B, &dir.peek_read(2, B));
        dir.on_read(2, B);
        assert!(s.is_doomed(0));
    }

    #[test]
    fn own_actions_never_doom_self_and_inactive_windows_ignore() {
        let mut dir = Directory::new();
        let mut s = spec(2);
        s.begin(0, 0.0);
        s.record_access(0, B, false).unwrap();
        dir.on_read(0, B);
        // Upgrading our own read to a write invalidates no one and the
        // actor filter keeps us alive.
        s.observe_action(0, B, &dir.peek_write(0, B));
        dir.on_write(0, B);
        assert!(!s.is_doomed(0));
        // A conflicting action against a core with no open window is a
        // no-op, and recording without a region is too.
        s.observe_action(1, B, &dir.peek_write(1, B));
        assert!(!s.is_doomed(1));
        s.commit(0, 10.0);
        s.record_access(0, B, true).unwrap();
        assert_eq!(s.tracked_lines(0), 0);
    }

    #[test]
    fn closed_windows_conflict_with_time_overlapping_requesters() {
        let mut dir = Directory::new();
        let mut s = spec(3);
        // Core 0's transaction lives over [0, 50] and writes B.
        s.begin(0, 0.0);
        s.record_access(0, B, true).unwrap();
        dir.on_write(0, B);
        s.commit(0, 50.0);
        // Core 1's region opened at 40 overlaps it: its read of B names
        // core 0 (owner-supplier) and hits the archived write.
        s.begin(1, 40.0);
        assert!(s.conflicts(1, B, false, 45.0, &dir.peek_read(1, B)));
        assert_eq!(s.region_start(1), 40.0);
        // A different line is silent on the directory: no conflict.
        assert!(!s.conflicts(
            1,
            BlockAddr(999),
            true,
            45.0,
            &dir.peek_write(1, BlockAddr(999))
        ));
        s.commit(1, 46.0);
        // Core 2's region starts after core 0's window ended: no overlap.
        s.begin(2, 60.0);
        assert!(!s.conflicts(2, B, false, 70.0, &dir.peek_read(2, B)));
        // A requester with no open region has nothing to abort.
        assert!(!s.conflicts(0, B, true, 70.0, &dir.peek_write(0, B)));
    }

    #[test]
    fn archived_reads_conflict_only_with_writes() {
        let mut dir = Directory::new();
        let mut s = spec(2);
        // Core 0's window [0, 50] only *reads* B.
        s.begin(0, 0.0);
        s.record_access(0, B, false).unwrap();
        dir.on_read(0, B);
        s.commit(0, 50.0);
        s.begin(1, 10.0);
        // Overlapping read-read shares fine (the read action is silent);
        // an overlapping write invalidates core 0 and conflicts.
        assert!(!s.conflicts(1, B, false, 20.0, &dir.peek_read(1, B)));
        assert!(s.conflicts(1, B, true, 20.0, &dir.peek_write(1, B)));
    }

    #[test]
    fn aborted_windows_are_archived_and_the_ring_is_bounded() {
        let mut dir = Directory::new();
        let mut s = spec(2);
        // An *aborted* window still archives: its write to B executed.
        s.begin(0, 0.0);
        s.record_access(0, B, true).unwrap();
        dir.on_write(0, B);
        s.abort(0, AbortCause::Capacity, 50.0);
        s.begin(1, 25.0);
        assert!(s.conflicts(1, B, false, 30.0, &dir.peek_read(1, B)));
        // The ring forgets beyond ARCHIVE_DEPTH closed windows.
        for i in 0..(ARCHIVE_DEPTH + 3) as u64 {
            s.begin(0, 100.0 + i as f64);
            s.record_access(0, BlockAddr(100 + i), false).unwrap();
            s.commit(0, 101.0 + i as f64);
        }
        assert_eq!(s.archive[0].len(), ARCHIVE_DEPTH);
    }

    #[test]
    fn retry_and_fallback_counters_accumulate_discarded_work() {
        let mut s = spec(1);
        s.begin(0, 0.0);
        s.abort(0, AbortCause::Conflict, 10.0);
        s.note_retry(120.5);
        s.begin(0, 0.0);
        s.abort(0, AbortCause::Conflict, 10.0);
        s.note_fallback(79.5);
        let st = s.stats();
        assert_eq!(st.begins, 2);
        assert_eq!(st.retries, 1);
        assert_eq!(st.fallbacks, 1);
        assert_eq!(st.aborts(), 2);
        assert!((st.discarded_cycles - 200.0).abs() < 1e-12);
        assert!((st.abort_rate() - 1.0).abs() < 1e-12);
        assert_eq!(SpecStats::default().abort_rate(), 0.0);
    }
}
