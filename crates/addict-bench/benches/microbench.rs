//! Criterion microbenchmarks for the core data structures: the cache
//! model, the B+-tree, the lock manager, slotted pages, Algorithm 1, and
//! a small end-to-end replay.

use addict_core::algorithm1::find_migration_points;
use addict_sim::{BlockAddr, CacheGeometry, SetAssocCache};
use addict_storage::btree::BTree;
use addict_storage::heap::PageAllocator;
use addict_storage::lock::{LockManager, LockMode, Resource};
use addict_storage::page::SlottedPage;
use addict_trace::{TraceEvent, XctTrace, XctTypeId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache(c: &mut Criterion) {
    let geom = CacheGeometry::new(32 * 1024, 8);
    c.bench_function("cache/sequential_fill_32k", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(geom);
            for i in 0..512u64 {
                black_box(cache.access(BlockAddr(i)));
            }
        })
    });
    c.bench_function("cache/hit_loop", |b| {
        let mut cache = SetAssocCache::new(geom);
        for i in 0..512u64 {
            cache.access(BlockAddr(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(BlockAddr(i)))
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree/insert_10k_sequential", |b| {
        b.iter(|| {
            let mut alloc = PageAllocator::new();
            let mut t = BTree::new(&mut alloc);
            for k in 0..10_000u64 {
                t.insert(&mut alloc, k, k).unwrap();
            }
            black_box(t.len())
        })
    });
    c.bench_function("btree/probe_warm", |b| {
        let mut alloc = PageAllocator::new();
        let mut t = BTree::new(&mut alloc);
        for k in 0..100_000u64 {
            t.insert(&mut alloc, k * 2, k).unwrap();
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 200_000;
            black_box(t.probe(k).value)
        })
    });
}

fn bench_lock_manager(c: &mut Criterion) {
    c.bench_function("locks/acquire_release_cycle", |b| {
        let mut lm = LockManager::new();
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            lm.acquire(1, Resource::Record { table: 0, key }, LockMode::X);
            if key.is_multiple_of(64) {
                lm.release_all(1);
            }
        })
    });
}

fn bench_page(c: &mut Criterion) {
    c.bench_function("page/insert_until_full", |b| {
        let rec = [7u8; 100];
        b.iter(|| {
            let mut p = SlottedPage::new();
            while p.fits(rec.len()) {
                p.insert(&rec).unwrap();
            }
            black_box(p.n_records())
        })
    });
}

fn synthetic_trace(i: u64) -> XctTrace {
    XctTrace {
        xct_type: XctTypeId(0),
        events: vec![
            TraceEvent::XctBegin {
                xct_type: XctTypeId(0),
            },
            TraceEvent::OpBegin {
                op: addict_trace::OpKind::Probe,
            },
            TraceEvent::Instr {
                block: BlockAddr(0x10_0000),
                n_blocks: 700,
                ipb: 10,
            },
            TraceEvent::Data {
                block: BlockAddr(0x1000_0000 + i),
                write: false,
            },
            TraceEvent::OpEnd {
                op: addict_trace::OpKind::Probe,
            },
            TraceEvent::XctEnd,
        ],
    }
}

fn bench_algorithm1(c: &mut Criterion) {
    let traces: Vec<XctTrace> = (0..64).map(synthetic_trace).collect();
    let l1i = CacheGeometry::new(32 * 1024, 8);
    c.bench_function("algorithm1/find_points_64_traces", |b| {
        b.iter(|| black_box(find_migration_points(black_box(&traces), l1i)))
    });
}

fn bench_replay(c: &mut Criterion) {
    use addict_core::replay::ReplayConfig;
    use addict_core::sched::{run_scheduler, SchedulerKind};
    let traces: Vec<XctTrace> = (0..64).map(synthetic_trace).collect();
    let cfg = ReplayConfig::paper_default();
    let map = find_migration_points(&traces, cfg.sim.l1i);
    c.bench_function("replay/addict_64_synthetic_xcts", |b| {
        b.iter(|| {
            black_box(run_scheduler(
                SchedulerKind::Addict,
                black_box(&traces),
                Some(&map),
                &cfg,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_btree, bench_lock_manager, bench_page, bench_algorithm1, bench_replay
);
criterion_main!(benches);
