//! Criterion microbenchmarks for the replay hot path: L1-I segment walks
//! vs per-block cache accesses, warm data runs vs per-access data walks,
//! the open-addressed coherence directory, the interned cursor's
//! delta-varint address decode vs the flat walk, and full
//! flat-vs-segment-vs-data-run replay under every scheduler.
//!
//! Run with `cargo bench --bench hotpath`. The `bench` binary
//! (`cargo run --release --bin bench`) regenerates `BENCH_1.json` with the
//! headline events/sec numbers on the TPC-C workload.

use addict_core::algorithm1::find_migration_points;
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::coherence::Directory;
use addict_sim::{BlockAddr, CacheGeometry, CoreId, Machine, SetAssocCache, SimConfig};
use addict_trace::event::FlatEvent;
use addict_trace::{
    DataRun, Fetched, InternedSet, InternedTrace, OpKind, SlicePool, TraceEvent, TraceSet,
    XctTrace, XctTypeId,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache_walks(c: &mut Criterion) {
    let geom = CacheGeometry::new(32 * 1024, 8);
    // Warm 512 consecutive blocks; both benches then walk the resident run.
    let mut warm = SetAssocCache::new(geom);
    for i in 0..512u64 {
        warm.access(BlockAddr(i));
    }
    c.bench_function("cache/per_block_512_hits", |b| {
        let mut cache = warm.clone();
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..512u64 {
                hits += u32::from(cache.access(BlockAddr(i)).hit);
            }
            black_box(hits)
        })
    });
    c.bench_function("cache/run_hits_512", |b| {
        let mut cache = warm.clone();
        b.iter(|| {
            let a = cache.run_hits(BlockAddr(0), 256);
            let b2 = cache.run_hits(BlockAddr(256), 256);
            black_box(a + b2)
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory/read_write_evict_churn", |b| {
        let mut d = Directory::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let block = BlockAddr(i % 4096);
            let core = (i % 16) as usize;
            match i % 4 {
                0 => black_box(d.on_write(core, block).is_silent()),
                3 => {
                    d.on_evict(core, block);
                    true
                }
                _ => black_box(d.on_read(core, block).is_silent()),
            }
        })
    });
    c.bench_function("directory/write_storm_16_sharers", |b| {
        let mut d = Directory::new();
        for core in 0..16 {
            d.on_read(core, BlockAddr(7));
        }
        let mut w = 0usize;
        b.iter(|| {
            w = (w + 1) % 16;
            let act = d.on_write(w, BlockAddr(7));
            // Re-establish the sharers so every iteration invalidates.
            for core in 0..16 {
                d.on_read(core, BlockAddr(7));
            }
            black_box(act.invalidate.count())
        })
    });
}

/// Synthetic OLTP-ish trace: long shared instruction runs with scattered
/// private data, the shape the paper's workloads exhibit.
fn synthetic_trace(i: u64) -> XctTrace {
    let mut events = vec![TraceEvent::XctBegin {
        xct_type: XctTypeId(0),
    }];
    for (op, base) in [(OpKind::Probe, 0x10_000u64), (OpKind::Update, 0x12_000)] {
        events.push(TraceEvent::OpBegin { op });
        events.push(TraceEvent::Instr {
            block: BlockAddr(base),
            n_blocks: 350,
            ipb: 10,
        });
        // A short run of consecutive private data touches (record + index
        // blocks), the shape the data-run path coalesces.
        for d in 0..4u64 {
            events.push(TraceEvent::Data {
                block: BlockAddr(0x1000_0000 + i * 8 + d),
                write: op == OpKind::Update,
            });
        }
        events.push(TraceEvent::OpEnd { op });
    }
    events.push(TraceEvent::XctEnd);
    XctTrace {
        xct_type: XctTypeId(0),
        events,
    }
}

fn bench_replay_modes(c: &mut Criterion) {
    let traces: Vec<XctTrace> = (0..64).map(synthetic_trace).collect();
    let base_cfg = ReplayConfig {
        sim: SimConfig::paper_default().with_cores(8),
        ..ReplayConfig::paper_default()
    }
    .with_batch_size(8);
    let map = find_migration_points(&traces, base_cfg.sim.l1i);
    for kind in SchedulerKind::ALL {
        for (mode, segment, data_run) in [
            ("flat", false, false),
            ("segment", true, false),
            ("data_run", true, true),
        ] {
            let cfg = ReplayConfig {
                segment_exec: segment,
                data_run_exec: data_run,
                ..base_cfg.clone()
            };
            let name = format!("replay/{}_{mode}_64_xcts", kind.name().to_lowercase());
            c.bench_function(&name, |b| {
                b.iter(|| black_box(run_scheduler(kind, black_box(&traces), Some(&map), &cfg)))
            });
        }
    }
}

/// Drive a [`TraceSet`] cursor through every event of every trace the way
/// the replay inner loop does — `fetch`, whole-run `advance_run`,
/// `gather_data_run` + `advance_data_run` for data bursts — returning an
/// address checksum so nothing folds away. On the interned set this is
/// exactly the delta-varint decode path: every data address re-derived
/// from the region-base cursor state, zero allocation.
fn cursor_walk<T: TraceSet + ?Sized>(set: &T) -> u64 {
    let mut sum = 0u64;
    let mut run = DataRun::new();
    for idx in 0..set.len() {
        let mut cur = T::Cursor::default();
        loop {
            match set.fetch(idx, cur) {
                Fetched::Run { block, rem, ipb } => {
                    sum = sum.wrapping_add(block.0).wrapping_add(u64::from(ipb));
                    set.advance_run(idx, &mut cur, rem, rem);
                }
                Fetched::Event(ev) => {
                    if let FlatEvent::Data { .. } = ev {
                        run.clear();
                        let k = set.gather_data_run(idx, cur, &mut run);
                        for a in run.accesses() {
                            sum = sum.wrapping_add(a.block.0);
                        }
                        set.advance_data_run(idx, &mut cur, k);
                    } else {
                        set.advance_event(idx, &mut cur, ev);
                    }
                }
                Fetched::End => break,
            }
        }
    }
    sum
}

fn bench_cursor_decode(c: &mut Criterion) {
    let traces: Vec<XctTrace> = (0..64).map(synthetic_trace).collect();
    let mut pool = SlicePool::new();
    let interned: Vec<InternedTrace> = traces
        .iter()
        .map(|t| InternedTrace::intern(t, &mut pool))
        .collect();
    let set = InternedSet {
        pool: &pool,
        xcts: &interned,
    };
    let flat_sum = cursor_walk(traces.as_slice());
    assert_eq!(flat_sum, cursor_walk(&set), "decode diverged from flat");
    c.bench_function("cursor/flat_walk_64_xcts", |b| {
        b.iter(|| black_box(cursor_walk(black_box(traces.as_slice()))))
    });
    c.bench_function("cursor/interned_delta_decode_64_xcts", |b| {
        b.iter(|| black_box(cursor_walk(black_box(&set))))
    });
}

fn bench_machine_data_runs(c: &mut Criterion) {
    use addict_sim::DataAccess;
    let cfg = SimConfig::paper_default().with_cores(2);
    // A warm 64-access private run: half loads, half stores on dirty lines
    // — entirely consumable by the directory-silent fast lane.
    let run: Vec<DataAccess> = (0..64u64)
        .map(|i| DataAccess {
            block: BlockAddr(0x9000 + i),
            write: i % 2 == 0,
        })
        .collect();
    c.bench_function("machine/access_data_run_warm_64", |b| {
        let mut m = Machine::new(&cfg);
        m.access_data_run(CoreId(0), &run, 0.0);
        b.iter(|| black_box(m.access_data_run(CoreId(0), &run, 0.0)))
    });
    c.bench_function("machine/access_data_warm_64_per_block", |b| {
        let mut m = Machine::new(&cfg);
        m.access_data_run(CoreId(0), &run, 0.0);
        b.iter(|| {
            let mut cycles = 0.0f64;
            for a in &run {
                cycles += m.access_data(CoreId(0), a.block, a.write);
            }
            black_box(cycles)
        })
    });
}

fn bench_machine_fetch(c: &mut Criterion) {
    let cfg = SimConfig::paper_default().with_cores(2);
    c.bench_function("machine/fetch_instr_run_warm_400", |b| {
        let mut m = Machine::new(&cfg);
        for i in 0..400u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        b.iter(|| black_box(m.fetch_instr_run(CoreId(0), BlockAddr(0), 400, 10, 0.0, true)))
    });
    c.bench_function("machine/fetch_instr_warm_400_per_block", |b| {
        let mut m = Machine::new(&cfg);
        for i in 0..400u64 {
            m.fetch_instr(CoreId(0), BlockAddr(i), 10);
        }
        b.iter(|| {
            let mut cycles = 0.0f64;
            for i in 0..400u64 {
                cycles += m.fetch_instr(CoreId(0), BlockAddr(i), 10);
            }
            black_box(cycles)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_walks, bench_directory, bench_machine_fetch, bench_machine_data_runs, bench_cursor_decode, bench_replay_modes
);
criterion_main!(benches);
