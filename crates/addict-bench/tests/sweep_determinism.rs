//! Cross-thread determinism of the sweep engine: the same grid executed
//! at 1 thread and at N threads must produce **byte-identical** results.
//!
//! Every replay owns its `Machine` and shares its inputs immutably — the
//! interned points additionally share one `Arc`'d slice pool — so thread
//! interleaving has nothing to leak into. This test is the executable
//! statement of that contract, and the gate the `bench` binary re-checks
//! on every artifact run.

use addict_bench::{migration_map, run_sweep, SweepPoint, SweepTraces, EVAL_SEED, PROFILE_SEED};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::SchedulerKind;
use addict_sim::SimConfig;
use addict_trace::InternedWorkload;
use addict_workloads::{collect_traces, Benchmark};

/// The canonical byte form of a sweep's outcome. `ReplayResult`'s `Debug`
/// output covers every field — per-core counters, power, latencies — and
/// Rust renders `f64` with shortest-roundtrip formatting, so two results
/// serialize identically iff they are bit-identical.
fn serialize(results: &[ReplayResult]) -> Vec<u8> {
    format!("{results:#?}").into_bytes()
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
    let profile = collect_traces(&mut engine, workload.as_mut(), 24, PROFILE_SEED);
    let eval = collect_traces(&mut engine, workload.as_mut(), 24, EVAL_SEED);
    let interned = InternedWorkload::from_flat(&eval);
    let cfg = ReplayConfig::paper_default();
    let map = migration_map(&profile, &cfg);

    // A grid spanning every scheduler over both trace layouts (the
    // interned points all borrowing the same pool), two batch sizes, and
    // both hierarchies: 5 + 5 + 2 + 2 = 14 points.
    let mut grid: Vec<SweepPoint<'_>> = SchedulerKind::ALL
        .iter()
        .map(|&scheduler| SweepPoint {
            benchmark: Benchmark::TpcB,
            scheduler,
            replay_cfg: cfg.clone(),
            label: "default",
            traces: SweepTraces::Flat(&eval.xcts),
            map: Some(&map),
        })
        .collect();
    for &scheduler in &SchedulerKind::ALL {
        grid.push(SweepPoint {
            benchmark: Benchmark::TpcB,
            scheduler,
            replay_cfg: cfg.clone(),
            label: "interned",
            traces: SweepTraces::Interned(interned.as_set()),
            map: Some(&map),
        });
    }
    for batch in [4usize, 8] {
        grid.push(SweepPoint {
            benchmark: Benchmark::TpcB,
            scheduler: SchedulerKind::Addict,
            replay_cfg: ReplayConfig::paper_default().with_batch_size(batch),
            label: "batch",
            traces: SweepTraces::Flat(&eval.xcts),
            map: Some(&map),
        });
    }
    for scheduler in [SchedulerKind::Baseline, SchedulerKind::Addict] {
        grid.push(SweepPoint {
            benchmark: Benchmark::TpcB,
            scheduler,
            replay_cfg: ReplayConfig {
                sim: SimConfig::paper_deep(),
                ..ReplayConfig::paper_default()
            },
            label: "deep",
            traces: SweepTraces::Interned(interned.as_set()),
            map: Some(&map),
        });
    }

    let sequential = serialize(&run_sweep(&grid, 1));
    // An even split, an uneven split, and more workers than points: every
    // scheduling shape must reproduce the sequential bytes exactly.
    let mut two_thread_results = None;
    for threads in [2usize, 3, 16] {
        let results = run_sweep(&grid, threads);
        assert_eq!(
            sequential,
            serialize(&results),
            "sweep output changed at {threads} threads"
        );
        if threads == 2 {
            two_thread_results = Some(results);
        }
    }
    // And a repeated 1-thread run is stable with itself (no hidden global
    // state between sweeps).
    assert_eq!(sequential, serialize(&run_sweep(&grid, 1)));

    // The flat and interned layouts of the same traces must agree
    // bit-for-bit, scheduler by scheduler (the first two scheduler-wide
    // bands of the grid; reusing the 2-thread run from above).
    let results = two_thread_results.expect("2-thread run executed");
    let n = SchedulerKind::ALL.len();
    for (flat, interned) in results[..n].iter().zip(&results[n..2 * n]) {
        assert_eq!(
            serialize(std::slice::from_ref(flat)),
            serialize(std::slice::from_ref(interned)),
            "interned replay diverged from flat for {}",
            flat.scheduler
        );
    }
}

/// The spec-driven benchmarks ride the same contract: a fig7-style
/// (benchmark × scheduler × batch-size) grid over TATP and YCSB-B traces
/// is bit-identical across thread counts, flat and interned alike.
#[test]
fn spec_driven_sweep_is_bit_identical_across_thread_counts() {
    let cfg = ReplayConfig::paper_default();
    let mut inputs = Vec::new();
    for bench in [Benchmark::Tatp, Benchmark::YcsbB] {
        let (mut engine, mut workload) = bench.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 24, PROFILE_SEED);
        let eval = collect_traces(&mut engine, workload.as_mut(), 24, EVAL_SEED);
        let interned = InternedWorkload::from_flat(&eval);
        let map = migration_map(&profile, &cfg);
        inputs.push((bench, eval, interned, map));
    }

    let mut grid: Vec<SweepPoint<'_>> = Vec::new();
    for (bench, eval, interned, map) in &inputs {
        for &scheduler in &SchedulerKind::ALL {
            grid.push(SweepPoint {
                benchmark: *bench,
                scheduler,
                replay_cfg: cfg.clone(),
                label: "flat",
                traces: SweepTraces::Flat(&eval.xcts),
                map: Some(map),
            });
            grid.push(SweepPoint {
                benchmark: *bench,
                scheduler,
                replay_cfg: cfg.clone(),
                label: "interned",
                traces: SweepTraces::Interned(interned.as_set()),
                map: Some(map),
            });
        }
        // The fig7 shape: ADDICT across batch sizes.
        for batch in [4usize, 16] {
            grid.push(SweepPoint {
                benchmark: *bench,
                scheduler: SchedulerKind::Addict,
                replay_cfg: ReplayConfig::paper_default().with_batch_size(batch),
                label: "batch",
                traces: SweepTraces::Interned(interned.as_set()),
                map: Some(map),
            });
        }
    }

    let sequential = serialize(&run_sweep(&grid, 1));
    for threads in [2usize, 8] {
        assert_eq!(
            sequential,
            serialize(&run_sweep(&grid, threads)),
            "spec-driven sweep output changed at {threads} threads"
        );
    }
    // Flat and interned layouts agree point-for-point (each benchmark
    // block is 4 (flat, interned) pairs followed by 2 batch points).
    let results = run_sweep(&grid, 2);
    let per_bench = SchedulerKind::ALL.len() * 2 + 2;
    for (block, (bench, ..)) in results.chunks_exact(per_bench).zip(&inputs) {
        for pair in block[..SchedulerKind::ALL.len() * 2].chunks_exact(2) {
            assert_eq!(
                serialize(std::slice::from_ref(&pair[0])),
                serialize(std::slice::from_ref(&pair[1])),
                "interned replay diverged from flat for {} on {}",
                pair[0].scheduler,
                bench.name()
            );
        }
    }
}
