//! Cross-thread determinism of parallel trace generation: the same ranges
//! generated at 1 thread and at N threads must produce **byte-identical**
//! trace sets, and each range must equal a direct sequential
//! `collect_traces` on a fresh engine — parallelism reorders execution,
//! never content.

use addict_bench::{generate, generate_interned, generate_interned_chunked, GenRange};
use addict_trace::WorkloadTrace;
use addict_workloads::{collect_traces, Benchmark};

/// Canonical byte form of generated workloads (`Debug` covers names, type
/// tables, and every event).
fn serialize(ws: &[WorkloadTrace]) -> Vec<u8> {
    format!("{ws:#?}").into_bytes()
}

fn ranges() -> Vec<GenRange> {
    // Handwritten and spec-driven (TATP, YCSB-A) benchmarks side by side:
    // the determinism contract is layout-independent.
    vec![
        GenRange::small(Benchmark::TpcB, 12, 1),
        GenRange::small(Benchmark::TpcB, 12, 2),
        GenRange::small(Benchmark::TpcC, 10, 1),
        GenRange::small(Benchmark::TpcC, 10, 2),
        GenRange::small(Benchmark::Tatp, 12, 1),
        GenRange::small(Benchmark::Tatp, 12, 2),
        GenRange::small(Benchmark::YcsbA, 12, 1),
        GenRange::small(Benchmark::YcsbA, 12, 2),
    ]
}

#[test]
fn generation_is_bit_identical_across_thread_counts() {
    let ranges = ranges();
    let sequential = serialize(&generate(&ranges, 1));
    for threads in [2usize, 3, 8] {
        assert_eq!(
            sequential,
            serialize(&generate(&ranges, threads)),
            "generation changed at {threads} threads"
        );
    }
}

#[test]
fn each_range_matches_direct_sequential_collection() {
    let ranges = ranges();
    let generated = generate(&ranges, 4);
    for (r, w) in ranges.iter().zip(&generated) {
        let (mut engine, mut workload) = r.bench.setup_small();
        let direct = collect_traces(&mut engine, workload.as_mut(), r.n, r.seed);
        assert_eq!(
            serialize(std::slice::from_ref(w)),
            serialize(std::slice::from_ref(&direct)),
            "range {r:?} diverged from sequential collect_traces"
        );
    }
}

#[test]
fn interned_generation_is_bit_identical_across_thread_counts() {
    let ranges = ranges();
    // Pool layout and per-trace refs are both thread-count-independent
    // (worker-local pools merge in range order): serialize the interned
    // traces plus the pool's aggregate shape.
    let canon = |threads: usize| -> Vec<u8> {
        let out = generate_interned(&ranges, threads);
        let pool = &out[0].pool;
        format!(
            "{:#?} events={} unique={} interned={}",
            out.iter().map(|w| &w.xcts).collect::<Vec<_>>(),
            pool.n_events(),
            pool.unique_slices(),
            pool.slices_interned()
        )
        .into_bytes()
    };
    let sequential = canon(1);
    for threads in [2usize, 4] {
        assert_eq!(
            sequential,
            canon(threads),
            "interned generation changed at {threads} threads"
        );
    }
}

#[test]
fn interned_generation_is_chunk_size_invariant() {
    let ranges = ranges();
    // The streaming pipeline's drain granularity is a pure memory knob:
    // draining the recorder after every transaction (chunk 1), at an odd
    // stride (7), at the default (64), or only once at the end (0 = batch)
    // must all produce byte-identical interned sets — pool layout, slice
    // refs, and delta-encoded data bytes alike — at any thread count.
    let canon = |threads: usize, chunk: usize| -> Vec<u8> {
        let out = generate_interned_chunked(&ranges, threads, chunk);
        let pool = &out[0].pool;
        format!(
            "{:#?} events={} unique={} interned={}",
            out.iter().map(|w| &w.xcts).collect::<Vec<_>>(),
            pool.n_events(),
            pool.unique_slices(),
            pool.slices_interned()
        )
        .into_bytes()
    };
    let reference = canon(1, 0);
    for threads in [1usize, 2, 8] {
        for chunk in [1usize, 7, 64, 0] {
            if (threads, chunk) == (1, 0) {
                continue;
            }
            assert_eq!(
                reference,
                canon(threads, chunk),
                "interned generation changed at {threads} threads, chunk {chunk}"
            );
        }
    }
}

#[test]
fn interned_generation_flattens_to_flat_generation() {
    let ranges = ranges();
    let flat = generate(&ranges, 2);
    let interned = generate_interned(&ranges, 2);
    let flattened: Vec<WorkloadTrace> = interned.iter().map(|w| w.flatten()).collect();
    assert_eq!(
        serialize(&flat),
        serialize(&flattened),
        "interned generation lost information"
    );
    // Profile and eval ranges of both benchmarks share one master arena.
    for w in &interned[1..] {
        assert!(std::sync::Arc::ptr_eq(&interned[0].pool, &w.pool));
    }
}
