//! Parallel multi-config sweep engine.
//!
//! Every figure of the paper's evaluation is a grid of
//! (benchmark × scheduler × config) replays. PR 1 made each replay
//! allocation-free and gave each run its own [`Machine`](addict_sim::Machine),
//! so the runs are embarrassingly parallel: the traces and migration maps
//! are shared immutably, all mutable state (machine, cluster, policy) is
//! per-run. This module fans a declarative grid out across OS threads.
//!
//! Two layers:
//!
//! * [`run_grid`] — the generic executor: a `std::thread::scope` worker
//!   pool pulling grid indexes off one atomic cursor (work-stealing-free by
//!   construction: there is a single shared cursor, so no per-worker deques
//!   to steal from and no rebalancing machinery). Results land in **grid
//!   order** regardless of completion order, and `threads <= 1` takes a
//!   plain sequential loop — no threads spawned at all.
//! * [`SweepPoint`] / [`run_sweep`] — the declarative layer used by the
//!   figure binaries: one point per (benchmark, scheduler, replay config)
//!   cell, dispatched through [`run_scheduler`]. Points carry either
//!   trace layout ([`SweepTraces`]): flat slices, or interned sets whose
//!   `Arc`-shared [`SlicePool`](addict_trace::SlicePool) gives all N
//!   worker threads one read-only, deduplicated working set.
//!
//! # Determinism
//!
//! A sweep's output is a pure function of its grid: every run owns its
//! machine, shares its inputs by `&`-reference only, and the engine never
//! lets completion order leak into result order. `run_sweep(grid, 1)` and
//! `run_sweep(grid, n)` are therefore **bit-identical** — asserted by
//! `tests/sweep_determinism.rs` and re-checked on every `bench` run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use addict_core::algorithm1::MigrationMap;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{InternedSet, XctTrace};
use addict_workloads::Benchmark;

/// The traces a sweep point replays: flat, or interned against a shared
/// [`SlicePool`](addict_trace::SlicePool) arena. Grid points built from
/// one `Arc`'d pool all borrow the *same* read-only working set, so N
/// sweep threads replay thousands of traces out of one deduplicated arena
/// instead of N private event-vector copies.
#[derive(Debug, Clone, Copy)]
pub enum SweepTraces<'a> {
    /// Flat per-trace event vectors.
    Flat(&'a [XctTrace]),
    /// Interned traces + their shared pool.
    Interned(InternedSet<'a>),
}

impl SweepTraces<'_> {
    /// Number of traces in the set.
    pub fn len(&self) -> usize {
        match self {
            SweepTraces::Flat(t) => t.len(),
            SweepTraces::Interned(s) => s.xcts.len(),
        }
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a> From<&'a [XctTrace]> for SweepTraces<'a> {
    fn from(t: &'a [XctTrace]) -> Self {
        SweepTraces::Flat(t)
    }
}

impl<'a> From<&'a Vec<XctTrace>> for SweepTraces<'a> {
    fn from(t: &'a Vec<XctTrace>) -> Self {
        SweepTraces::Flat(t)
    }
}

impl<'a> From<InternedSet<'a>> for SweepTraces<'a> {
    fn from(s: InternedSet<'a>) -> Self {
        SweepTraces::Interned(s)
    }
}

/// One cell of a sweep grid: replay `traces` under `scheduler` with
/// `replay_cfg`. The trace set and migration map are shared across all
/// points (and threads) immutably.
#[derive(Debug, Clone)]
pub struct SweepPoint<'a> {
    /// Which benchmark the traces came from (for labeling/grouping).
    pub benchmark: Benchmark,
    /// Scheduler to replay under.
    pub scheduler: SchedulerKind,
    /// Replay parameters for this cell.
    pub replay_cfg: ReplayConfig,
    /// Row label for reports ("batch=8", "deep", ...).
    pub label: &'static str,
    /// Evaluation traces (flat or interned), shared immutably across the
    /// grid.
    pub traces: SweepTraces<'a>,
    /// Algorithm 1 migration map (required by ADDICT), shared immutably.
    pub map: Option<&'a MigrationMap>,
}

impl SweepPoint<'_> {
    /// Human-readable name of this grid cell, for diagnostics — the
    /// determinism guards in `bench` and the tests name diverging points
    /// with it.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {}",
            self.benchmark.name(),
            self.scheduler.name(),
            self.label
        )
    }
}

// Compile-time audit: everything a sweep shares across threads, or moves
// into a worker, must be Send + Sync. (The replay inputs are shared by
// reference; results cross back to the collecting thread.)
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<SweepPoint<'_>>();
    shared::<SweepTraces<'_>>();
    shared::<ReplayConfig>();
    shared::<ReplayResult>();
    shared::<MigrationMap>();
    shared::<XctTrace>();
    shared::<InternedSet<'_>>();
    shared::<SchedulerKind>();
    shared::<Benchmark>();
};

/// Worker-thread default when no `--threads` flag is given: the
/// `ADDICT_THREADS` environment variable if set (unparseable values fall
/// back to 1, the sequential path), else the host's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ADDICT_THREADS") {
        return v.parse().unwrap_or(1).max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of worker threads for sweeps: the `--threads N` flag if present
/// in `args`, else [`default_threads`]. Anything unparseable falls back
/// to 1 (the sequential path), never to a panic — this is the lenient
/// argv/env probe the flag-less figure binaries use; binaries that parse
/// their arguments go through `parse_bench_args`, which rejects malformed
/// values explicitly.
pub fn threads_from(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().unwrap_or(1).max(1);
        }
        if a == "--threads" {
            return it.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
        }
    }
    default_threads()
}

/// Run `work` over every item of `items` on `threads` OS threads,
/// returning results in item order regardless of completion order.
///
/// `threads <= 1` (or a grid of one) runs sequentially on the calling
/// thread — the fallback path spawns nothing. Workers claim items from a
/// single atomic cursor; a panic in any run propagates to the caller when
/// the scope joins.
pub fn run_grid<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = work(i, item);
                done.lock().expect("no poisoned result lock").push((i, r));
            });
        }
    });
    let mut out = done.into_inner().expect("scope joined all workers");
    debug_assert_eq!(out.len(), items.len());
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// [`run_grid`] with a cooperative abort probe: before *claiming* each
/// item, workers poll `abort`; once it reports true, every unclaimed
/// item yields `None` instead of running (claimed items finish — the
/// unit of cooperation is one grid point). Result order is item order
/// either way, with `None` holes where the abort landed. This is the
/// sweep half of job cancellation/deadlines: [`run_job_with`]
/// (`crate::job`) maps a fired token to an aborted grid, then discards
/// the partial results.
///
/// The probe must be *sticky* (once true, true forever) — workers poll
/// it independently, and a flapping probe would produce an arbitrary
/// subset rather than a prefix-closed cut. The determinism contract of
/// [`run_grid`] is preserved for completed runs: `abort` never firing
/// reproduces `run_grid` exactly.
pub fn run_grid_abortable<T, R, F>(
    items: &[T],
    threads: usize,
    abort: &(dyn Fn() -> bool + Sync),
    work: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| if abort() { None } else { Some(work(i, t)) })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Option<R>)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = if abort() { None } else { Some(work(i, item)) };
                done.lock().expect("no poisoned result lock").push((i, r));
            });
        }
    });
    let mut out = done.into_inner().expect("scope joined all workers");
    debug_assert_eq!(out.len(), items.len());
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Replay every [`SweepPoint`] of `grid` on `threads` threads, returning
/// the [`ReplayResult`]s in grid order. Flat and interned points dispatch
/// to their own monomorphized replay loop — the layout match happens once
/// per point, never inside the hot path.
pub fn run_sweep(grid: &[SweepPoint<'_>], threads: usize) -> Vec<ReplayResult> {
    run_grid(grid, threads, |_, p| run_point(p))
}

/// Replay one [`SweepPoint`] (the sweep's unit of work).
pub fn run_point(p: &SweepPoint<'_>) -> ReplayResult {
    match p.traces {
        SweepTraces::Flat(traces) => run_scheduler(p.scheduler, traces, p.map, &p.replay_cfg),
        SweepTraces::Interned(set) => run_scheduler(p.scheduler, &set, p.map, &p.replay_cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_item_order() {
        // Work that finishes in reverse order must still report in order.
        let items: Vec<u64> = (0..16).collect();
        let out = run_grid(&items, 4, |i, &x| {
            std::thread::sleep(std::time::Duration::from_micros((16 - x) * 50));
            (i, x * 2)
        });
        assert_eq!(out.len(), 16);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, items[i] * 2);
        }
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let items: Vec<u64> = (0..9).collect();
        let seq = run_grid(&items, 1, |_, &x| x * x);
        let par = run_grid(&items, 3, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let none: Vec<u32> = Vec::new();
        assert!(run_grid(&none, 8, |_, &x| x).is_empty());
        assert_eq!(run_grid(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn abortable_grid_is_grid_when_quiet_and_cuts_when_fired() {
        let items: Vec<u64> = (0..12).collect();
        // A probe that never fires reproduces run_grid exactly.
        for threads in [1, 4] {
            let quiet = run_grid_abortable(&items, threads, &|| false, |_, &x| x * 3);
            assert_eq!(
                quiet,
                items.iter().map(|&x| Some(x * 3)).collect::<Vec<_>>()
            );
        }
        // A sticky probe flipped after the fourth claim yields None for
        // everything not yet claimed, in both execution modes.
        for threads in [1, 3] {
            let fired = AtomicUsize::new(0);
            let out = run_grid_abortable(
                &items,
                threads,
                &|| fired.load(Ordering::Relaxed) >= 4,
                |_, &x| {
                    fired.fetch_add(1, Ordering::Relaxed);
                    x
                },
            );
            assert_eq!(out.len(), items.len());
            let ran = out.iter().flatten().count();
            assert!(ran >= 4, "abort fired before it could have: {out:?}");
            assert!(ran < items.len(), "abort never cut the grid: {out:?}");
        }
    }

    #[test]
    fn threads_flag_parsing() {
        let s = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(threads_from(&s(&["bench", "--threads", "4"])), 4);
        assert_eq!(threads_from(&s(&["bench", "--threads=8", "400"])), 8);
        // Unparseable values fall back to sequential, not to a panic.
        assert_eq!(threads_from(&s(&["bench", "--threads", "zap"])), 1);
        assert_eq!(threads_from(&s(&["bench", "--threads=0"])), 1);
    }
}
