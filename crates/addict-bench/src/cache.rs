//! Cross-request trace-pool cache.
//!
//! Trace generation dominates service latency — populating a storage
//! engine and tracing N transactions costs seconds to minutes, while
//! replaying the resulting interned set costs milliseconds to seconds.
//! A resident server amortizes that: the first job generating
//! `(benchmark, seed, n_xcts, chunk, small)` pays for it, every later
//! job reuses the shared [`InternedWorkload`] behind an `Arc`.
//!
//! Concurrency: one `Mutex` over the table plus a `Condvar`. A miss
//! installs a *pending* slot and generates **outside the lock**; a second
//! request for the same key meanwhile blocks on the condvar and counts as
//! a hit once the first finishes (the work happened once — that is what
//! the counter measures). A panicking generation clears its pending slot
//! and wakes waiters so they can retry rather than deadlock.
//!
//! Eviction is LRU by resident bytes against a byte budget
//! ([`TracePool::new`]): after each insert, least-recently-used **idle**
//! entries (sole-owner `Arc`s — never one a running job still replays
//! from) are dropped until the total fits. An entry larger than the whole
//! budget is served to its requester and evicted immediately after — the
//! budget bounds *resident* cache bytes, not job size. Counters
//! ([`TracePool::stats`]) make all of this observable through the
//! server's `/stats` endpoint.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use addict_trace::InternedWorkload;
use addict_workloads::Benchmark;

use crate::gen::{generate_interned_chunked, GenRange};

/// Cache identity of one generated trace range. Two jobs agreeing on all
/// five fields replay byte-identical traces (generation is a pure
/// function of the key — see `gen`'s determinism contract), so sharing
/// the interned set is invisible to results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Benchmark to build and trace.
    pub bench: Benchmark,
    /// Transaction-stream RNG seed.
    pub seed: u64,
    /// Transactions to trace.
    pub n_xcts: usize,
    /// Generation→interning drain granularity.
    pub chunk: usize,
    /// Reduced test-scale population.
    pub small: bool,
}

impl TraceKey {
    /// Human-readable form for progress lines and diagnostics.
    pub fn describe(&self) -> String {
        format!(
            "{}/seed{}/n{}{}",
            self.bench.id(),
            self.seed,
            self.n_xcts,
            if self.small { "/small" } else { "" }
        )
    }

    fn range(&self) -> GenRange {
        GenRange {
            bench: self.bench,
            n: self.n_xcts,
            seed: self.seed,
            small: self.small,
        }
    }

    /// Predicted resident bytes of this key's interned workload,
    /// **before** generating it — the admission-control input: a server
    /// can refuse a job whose traces would not fit the pool budget
    /// without first paying seconds of generation to find out.
    ///
    /// The model is linear per benchmark, `pool + slope × n_xcts`, with
    /// constants measured from the BENCH_6 scaling ladder and the
    /// BENCH_7 per-workload `trace_memory` sections: the shared slice
    /// pool is constant in `n_xcts` (BENCH_6 measured it flat from 400
    /// to 1M transactions), and per-trace bytes grow linearly (the
    /// delta-varint address share dominates at ~1.5 B/address).
    /// Slopes are the measured 400-transaction values rounded **up** —
    /// the 1M-rung slope is slightly smaller (281 vs 305 B/xct on
    /// TPC-B), so the estimate is conservative at scale, which is the
    /// right direction for admission control. `small` populations
    /// produce traces of comparable shape (fewer *distinct* pages, not
    /// shorter transactions), so they share the full-scale constants.
    pub fn estimated_resident_bytes(&self) -> usize {
        // (pool bytes, per-transaction slope in bytes) per registry
        // entry, from BENCH_7.json `trace_memory` at n_xcts = 400.
        let (pool, slope) = match self.bench {
            Benchmark::TpcB => (10_336, 280),
            Benchmark::TpcC => (470_704, 1_151),
            Benchmark::TpcE => (298_544, 481),
            Benchmark::Tatp => (46_576, 139),
            Benchmark::YcsbA => (14_080, 143),
            Benchmark::YcsbB => (12_608, 136),
        };
        pool + slope * self.n_xcts
    }
}

/// Counter snapshot of a [`TracePool`] (the `/stats` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a resident (or in-flight) entry.
    pub hits: u64,
    /// Requests that had to generate.
    pub misses: u64,
    /// Generations performed (== misses unless a generation panicked).
    pub generations: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Resident entries still pinned by a borrower (a running job holds
    /// the entry's `Arc`); these are never evicted. A cancelled or
    /// finished job must return this to 0 — the chaos tests' leak probe.
    pub pinned_entries: usize,
    /// Resident bytes right now (sum of entry [`InternedWorkload::resident_bytes`]).
    pub resident_bytes: usize,
    /// Byte budget (`usize::MAX` = unbounded).
    pub budget_bytes: usize,
}

enum Slot {
    /// Another request is generating this key; wait on the condvar.
    Pending,
    /// Resident entry.
    Ready {
        workload: Arc<InternedWorkload>,
        bytes: usize,
        /// Monotonic use tick for LRU ordering.
        used: u64,
    },
}

struct Inner {
    slots: HashMap<TraceKey, Slot>,
    stats: CacheStats,
    tick: u64,
}

/// The cross-request trace cache: `TraceKey` → shared
/// [`InternedWorkload`], bounded by a byte budget with LRU eviction.
pub struct TracePool {
    inner: Mutex<Inner>,
    cond: Condvar,
    budget: usize,
    /// Fault-injection countdown: each pending generation decrements it,
    /// and a nonzero value panics *instead of* generating — exercising
    /// the panic-clears-pending-slot path from outside. Only chaos tests
    /// arm it ([`TracePool::fail_next_generations`]); it is always 0 in
    /// production, costing one relaxed load per miss.
    gen_faults: std::sync::atomic::AtomicU32,
}

/// Removes a pending slot (and wakes waiters) if generation unwinds, so
/// a panicking engine build cannot strand other requests on the condvar.
struct PendingGuard<'a> {
    pool: &'a TracePool,
    key: TraceKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.pool.inner.lock().expect("trace pool lock");
            inner.slots.remove(&self.key);
            self.pool.cond.notify_all();
        }
    }
}

impl TracePool {
    /// A pool evicting LRU entries beyond `budget_bytes` resident bytes.
    pub fn new(budget_bytes: usize) -> Self {
        TracePool {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                stats: CacheStats {
                    budget_bytes,
                    ..CacheStats::default()
                },
                tick: 0,
            }),
            cond: Condvar::new(),
            budget: budget_bytes,
            gen_faults: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Arm the generation fault injector: the next `n` generations panic
    /// instead of generating (chaos-test hook; see the `gen_faults`
    /// field). The panic unwinds through [`TracePool::get`]'s pending
    /// guard, so waiters wake and retry — exactly the code path a real
    /// engine-population panic takes.
    pub fn fail_next_generations(&self, n: u32) {
        self.gen_faults
            .store(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// True when `key`'s traces are resident right now (an in-flight
    /// pending generation does not count). Admission control uses this
    /// to skip charging a job for bytes that already exist.
    pub fn contains(&self, key: &TraceKey) -> bool {
        let inner = self.inner.lock().expect("trace pool lock");
        matches!(inner.slots.get(key), Some(Slot::Ready { .. }))
    }

    /// A pool that never evicts (the batch binaries' configuration — a
    /// single job's working set, dropped with the pool).
    pub fn unbounded() -> Self {
        TracePool::new(usize::MAX)
    }

    /// Fetch (or generate, on `threads` workers) the traces for `key`.
    /// Returns the shared workload and whether this was a cache hit. A
    /// request that waited for another request's in-flight generation
    /// counts as a hit: the generation happened once, which is the thing
    /// the counters measure.
    pub fn get(&self, key: &TraceKey, threads: usize) -> (Arc<InternedWorkload>, bool) {
        {
            let mut inner = self.inner.lock().expect("trace pool lock");
            loop {
                let resident = match inner.slots.get(key) {
                    Some(Slot::Ready { workload, .. }) => Some(Some(Arc::clone(workload))),
                    Some(Slot::Pending) => Some(None),
                    None => None,
                };
                match resident {
                    Some(Some(w)) => {
                        inner.tick += 1;
                        let tick = inner.tick;
                        if let Some(Slot::Ready { used, .. }) = inner.slots.get_mut(key) {
                            *used = tick;
                        }
                        inner.stats.hits += 1;
                        return (w, true);
                    }
                    Some(None) => {
                        // Another request is generating this key; wait,
                        // then re-check — the slot is now Ready, or was
                        // removed by a panicked generation (then we take
                        // the miss path ourselves).
                        inner = self.cond.wait(inner).expect("trace pool lock");
                    }
                    None => {
                        inner.stats.misses += 1;
                        inner.slots.insert(*key, Slot::Pending);
                        break;
                    }
                }
            }
        }

        let mut guard = PendingGuard {
            pool: self,
            key: *key,
            armed: true,
        };
        // Chaos hook: an armed fault panics here, inside the pending
        // guard, simulating a generation that died mid-population.
        if self
            .gen_faults
            .fetch_update(
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
                |n| n.checked_sub(1),
            )
            .is_ok()
        {
            panic!("injected generation fault for {}", key.describe());
        }
        let mut out = generate_interned_chunked(&[key.range()], threads, key.chunk);
        let workload = Arc::new(out.pop().expect("one range generated"));
        let bytes = workload.resident_bytes();
        guard.armed = false;

        let mut inner = self.inner.lock().expect("trace pool lock");
        inner.tick += 1;
        let used = inner.tick;
        inner.slots.insert(
            *key,
            Slot::Ready {
                workload: Arc::clone(&workload),
                bytes,
                used,
            },
        );
        inner.stats.generations += 1;
        self.evict_over_budget(&mut inner);
        self.refresh_residency(&mut inner);
        drop(inner);
        self.cond.notify_all();
        (workload, false)
    }

    /// Drop LRU idle entries until resident bytes fit the budget. Entries
    /// still shared outside the cache (a job mid-replay) are skipped —
    /// their memory is live either way, and evicting the table entry
    /// would only force a regeneration without freeing anything.
    fn evict_over_budget(&self, inner: &mut Inner) {
        loop {
            let resident: usize = inner
                .slots
                .values()
                .map(|s| match s {
                    Slot::Ready { bytes, .. } => *bytes,
                    Slot::Pending => 0,
                })
                .sum();
            if resident <= self.budget {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { workload, used, .. } if Arc::strong_count(workload) == 1 => {
                        Some((*used, *k))
                    }
                    _ => None,
                })
                .min_by_key(|&(used, _)| used)
                .map(|(_, k)| k);
            let Some(victim) = victim else {
                // Everything resident is in active use; nothing evictable.
                return;
            };
            inner.slots.remove(&victim);
            inner.stats.evictions += 1;
        }
    }

    fn refresh_residency(&self, inner: &mut Inner) {
        inner.stats.entries = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        inner.stats.pinned_entries = inner
            .slots
            .values()
            .filter(|s| match s {
                Slot::Ready { workload, .. } => Arc::strong_count(workload) > 1,
                Slot::Pending => false,
            })
            .count();
        inner.stats.resident_bytes = inner
            .slots
            .values()
            .map(|s| match s {
                Slot::Ready { bytes, .. } => *bytes,
                Slot::Pending => 0,
            })
            .sum();
    }

    /// Current counter snapshot. Taking a snapshot also re-enforces the
    /// budget: an over-budget entry that was pinned by a running job at
    /// insert time (and therefore unevictable) is collected here once the
    /// job has dropped its `Arc`.
    pub fn stats(&self) -> CacheStats {
        let mut inner = self.inner.lock().expect("trace pool lock");
        self.evict_over_budget(&mut inner);
        self.refresh_residency(&mut inner);
        inner.stats
    }
}

// Thread-safety audit: the pool is shared by reference across server
// worker threads.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<TracePool>();
    shared::<TraceKey>();
    shared::<CacheStats>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize, seed: u64) -> TraceKey {
        TraceKey {
            bench: Benchmark::TpcB,
            seed,
            n_xcts: n,
            chunk: 4,
            small: true,
        }
    }

    #[test]
    fn hit_and_miss_counters_track_sharing() {
        let pool = TracePool::unbounded();
        let (a, hit_a) = pool.get(&key(6, 1), 1);
        let (b, hit_b) = pool.get(&key(6, 1), 1);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the resident Arc");
        let (_c, hit_c) = pool.get(&key(6, 2), 1); // different seed = different entry
        assert!(!hit_c);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.generations), (1, 2, 2));
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 0);
        assert!(s.resident_bytes > 0);
        assert_eq!(s.resident_bytes, a.resident_bytes() + _c.resident_bytes());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // Learn one entry's size, then budget for two.
        let probe = TracePool::unbounded();
        let (w, _) = probe.get(&key(5, 1), 1);
        let one = w.resident_bytes();
        drop((w, probe));

        let pool = TracePool::new(2 * one + one / 2);
        let (a, _) = pool.get(&key(5, 1), 1);
        let (b, _) = pool.get(&key(5, 2), 1);
        drop((a, b)); // idle: evictable
                      // Touch seed 1 so seed 2 is the LRU victim when seed 3 arrives.
        let (_a2, hit) = pool.get(&key(5, 1), 1);
        assert!(hit);
        drop(_a2);
        let (_c, _) = pool.get(&key(5, 3), 1);
        drop(_c);
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        let (_a3, hit_a) = pool.get(&key(5, 1), 1); // survived (recently used)
        assert!(hit_a, "recently-used entry was evicted");
        let (_b2, hit_b) = pool.get(&key(5, 2), 1); // the LRU victim
        assert!(!hit_b, "LRU victim still resident");
    }

    #[test]
    fn in_use_entries_are_not_evicted() {
        let probe = TracePool::unbounded();
        let (w, _) = probe.get(&key(5, 1), 1);
        let one = w.resident_bytes();
        drop((w, probe));

        // Budget below a single entry: with the Arc held, nothing is
        // evictable; once dropped, the next insert evicts it.
        let pool = TracePool::new(one / 2);
        let (held, _) = pool.get(&key(5, 1), 1);
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(pool.stats().entries, 1);
        let (_other, _) = pool.get(&key(5, 2), 1);
        drop(_other);
        drop(held);
        let (_third, _) = pool.get(&key(5, 3), 1);
        drop(_third);
        // All three generated; the idle ones got evicted down to budget
        // (every entry exceeds it alone, so the table drains to empty).
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert!(s.evictions >= 2, "stats: {s:?}");
        assert_eq!(s.entries, 0);
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn estimate_is_conservative_for_small_keys() {
        // The admission model must never under-predict (a job admitted on
        // an optimistic estimate defeats the point of admission control).
        // Generate a couple of real small-scale workloads and compare.
        let pool = TracePool::unbounded();
        for (bench, n) in [(Benchmark::TpcB, 12), (Benchmark::TpcB, 40)] {
            let k = TraceKey {
                bench,
                seed: 1,
                n_xcts: n,
                chunk: 4,
                small: true,
            };
            let (w, _) = pool.get(&k, 1);
            assert!(
                k.estimated_resident_bytes() >= w.resident_bytes(),
                "{}: estimated {} < actual {}",
                k.describe(),
                k.estimated_resident_bytes(),
                w.resident_bytes()
            );
        }
        // And the model is monotone in n_xcts.
        let at = |n| {
            TraceKey {
                bench: Benchmark::TpcC,
                seed: 2,
                n_xcts: n,
                chunk: 64,
                small: false,
            }
            .estimated_resident_bytes()
        };
        assert!(at(400) < at(10_000) && at(10_000) < at(1_000_000));
    }

    #[test]
    fn injected_generation_fault_clears_slot_and_recovers() {
        let pool = TracePool::unbounded();
        let k = key(6, 9);
        pool.fail_next_generations(1);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.get(&k, 1)))
            .expect_err("armed fault must panic");
        let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected generation fault"), "{msg}");
        assert!(!pool.contains(&k), "panicked generation left a slot");
        // The fault was consumed: the retry generates for real.
        let (w, hit) = pool.get(&k, 1);
        assert!(!hit);
        assert!(pool.contains(&k));
        assert!(w.resident_bytes() > 0);
        let s = pool.stats();
        assert_eq!(s.misses, 2, "both attempts are misses");
        assert_eq!(s.generations, 1, "only the retry generated");
        // Pinned while we hold the Arc, idle after.
        assert_eq!(s.pinned_entries, 1);
        drop(w);
        assert_eq!(pool.stats().pinned_entries, 0);
    }

    #[test]
    fn concurrent_same_key_generates_once() {
        let pool = TracePool::unbounded();
        let k = key(8, 1);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| pool.get(&k, 1).0)).collect();
            let arcs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for w in &arcs[1..] {
                assert!(Arc::ptr_eq(&arcs[0], w));
            }
        });
        let s = pool.stats();
        assert_eq!(s.generations, 1, "duplicate in-flight generation");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }
}
