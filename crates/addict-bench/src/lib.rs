//! # addict-bench
//!
//! The benchmark harness regenerating every table and figure of the ADDICT
//! paper's evaluation (Section 4). One binary per artifact:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — system parameters |
//! | `fig1`   | Figure 1 — operation flow-graph footprint percentages |
//! | `fig2`   | Figure 2 — instruction/data footprint overlap pies |
//! | `fig3`   | Figure 3 — per-instance reuse vs cross-instance commonality |
//! | `fig4`   | Figure 4 — migration-point stability, 1000 vs 10000 traces |
//! | `fig5`   | Figure 5 — L1-I / L1-D / L2 MPKI vs Baseline |
//! | `fig6`   | Figure 6 — total execution cycles + transaction latency |
//! | `fig7`   | Figure 7 — batch-size sweep (Section 4.5) |
//! | `fig8`   | Figure 8 — deeper hierarchy + power (Sections 4.6, 4.7) |
//! | `fig9`   | Figure 9 — context switches + overhead breakdown |
//! | `ablation` | DESIGN.md §3 design-choice ablations (beyond the paper) |
//! | `bench`  | `BENCH_n.json` — replay throughput (events/sec) per workload and scheduler, flat vs segment-granular vs interned execution + trace-memory footprint (see BENCHMARKS.md) |
//!
//! Every binary accepts the trace count as its first argument (default
//! 600; the paper uses 1000 for profiling and 1000 for evaluation —
//! Section 4.2 shows results are stable from 1000 up). The sweep-capable
//! binaries (`fig5`–`fig9`, `ablation`, `bench`) additionally accept
//! `--benchmarks name,name,...` to select registry entries (default: all
//! six — the TPC trio plus the spec-driven TATP and YCSB mixes) and
//! `--threads N` for worker count. Runs are deterministic: seed 1
//! profiles, seed 2 evaluates, matching the paper's disjoint trace
//! ranges.

pub mod cache;
pub mod gen;
pub mod job;
pub mod jsontext;
pub mod sweep;

use addict_core::algorithm1::MigrationMap;
use addict_core::find_migration_points;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::WorkloadTrace;
use addict_workloads::Benchmark;

pub use cache::{CacheStats, TraceKey, TracePool};
pub use gen::{
    generate, generate_interned, generate_interned_chunked, profile_eval_ranges, GenRange,
    DEFAULT_GEN_CHUNK,
};
pub use job::{
    run_job, run_job_with, summary_rows, CancelToken, Interrupt, JobError, JobPoint, JobResult,
    JobSpec, SpecError, SummaryRow,
};
pub use sweep::{
    run_grid, run_grid_abortable, run_point, run_sweep, threads_from, SweepPoint, SweepTraces,
};

/// Profiling seed (the paper's traces 1–1000).
pub const PROFILE_SEED: u64 = 1;
/// Evaluation seed (the paper's traces 1001–2000).
pub const EVAL_SEED: u64 = 2;

/// Trace count from argv (first positional argument), default 600.
pub fn arg_xcts(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parsed command line of the sweep-capable binaries
/// (`fig5`/`fig6`/`fig7`/`fig8`/`fig9`/`ablation`/`bench`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Trace count per workload (first positional argument).
    pub n_xcts: usize,
    /// Output path (second positional argument), where the binary writes
    /// an artifact.
    pub out: Option<String>,
    /// Sweep worker threads (`--threads N` / `ADDICT_THREADS`, defaulting
    /// to the host parallelism; see [`sweep::default_threads`]).
    pub threads: usize,
    /// Intra-replay decode shards (`--shards N`, default 1 = the serial
    /// engine). Sharded replays are byte-identical to serial ones —
    /// this is purely a latency knob, like `threads`.
    pub shards: usize,
    /// `--smoke`: a fast CI-sized run (small trace count, single rep).
    pub smoke: bool,
    /// `--scaling`: run the `bench` binary's trace-memory-vs-throughput
    /// scaling ladder instead of (only) the fixed-size matrix.
    pub scaling: bool,
    /// Benchmarks to run (`--benchmarks tpcb,tatp,...`, case-insensitive
    /// names; default: every registry entry, in registry order).
    pub benchmarks: Vec<Benchmark>,
    /// Whether `--benchmarks` was given explicitly (single-workload
    /// binaries reject explicit multi-entry filters but accept the
    /// default).
    pub benchmarks_explicit: bool,
}

/// Parse `[n_xcts] [out] [--xcts N] [--threads N] [--shards N]
/// [--benchmarks a,b,...] [--smoke] [--scaling]` in any order, exiting
/// with a usage message on a malformed flag. `--smoke` shrinks the
/// default trace count to 60 unless one was given explicitly.
pub fn parse_bench_args(default_n: usize) -> BenchArgs {
    let args: Vec<String> = std::env::args().collect();
    parse_bench_args_from(&args, default_n).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: {} [n_xcts] [out] [--xcts N] [--threads N] [--shards N] [--benchmarks name,name,...] [--smoke] [--scaling]",
            args.first().map(String::as_str).unwrap_or("bench")
        );
        std::process::exit(2);
    })
}

/// [`parse_bench_args`] over an explicit argument list (args[0] is the
/// program name). A `--xcts`, `--threads` or `--benchmarks` flag with a
/// missing or invalid value is an explicit error, never a silent fallback
/// — a typo'd thread count must not quietly serialize a sweep, and a
/// typo'd `--xcts` must not quietly run a million-transaction ladder at
/// the default size. Value parsing is shared with the service's job specs
/// ([`job::xcts_value`] and friends): one strictness policy, one error
/// type ([`SpecError`]) for flags and jobs alike.
pub fn parse_bench_args_from(args: &[String], default_n: usize) -> Result<BenchArgs, SpecError> {
    let mut threads = None;
    let mut shards = None;
    let mut benchmarks = None;
    let mut smoke = false;
    let mut scaling = false;
    let mut n_xcts = None;
    let mut out = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        // A `--xcts` flag and a numeric positional both set the trace
        // count; two sources (or two flags) are ambiguous — reject.
        let mut set_xcts = |n: usize| -> Result<(), SpecError> {
            if n_xcts.replace(n).is_some() {
                return Err(SpecError::new("xcts", "trace count given more than once"));
            }
            Ok(())
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scaling" => scaling = true,
            "--xcts" => {
                let v = it
                    .next()
                    .ok_or_else(|| SpecError::new("xcts", "--xcts requires a value"))?;
                set_xcts(job::xcts_value(v)?)?;
            }
            s if s.starts_with("--xcts=") => {
                set_xcts(job::xcts_value(&s["--xcts=".len()..])?)?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| SpecError::new("threads", "--threads requires a value"))?;
                threads = Some(job::threads_value(v)?);
            }
            s if s.starts_with("--threads=") => {
                threads = Some(job::threads_value(&s["--threads=".len()..])?);
            }
            "--shards" => {
                let v = it
                    .next()
                    .ok_or_else(|| SpecError::new("shards", "--shards requires a value"))?;
                shards = Some(job::shards_value(v)?);
            }
            s if s.starts_with("--shards=") => {
                shards = Some(job::shards_value(&s["--shards=".len()..])?);
            }
            "--benchmarks" => {
                let v = it
                    .next()
                    .ok_or_else(|| SpecError::new("benchmarks", "--benchmarks requires a value"))?;
                benchmarks = Some(job::benchmarks_value(v)?);
            }
            s if s.starts_with("--benchmarks=") => {
                benchmarks = Some(job::benchmarks_value(&s["--benchmarks=".len()..])?);
            }
            s if s.starts_with("--") => {
                return Err(SpecError::new("args", format!("unknown flag {s:?}")));
            }
            // Positionals are type-directed so flags can reorder them:
            // a number is the trace count, anything else the output path.
            s => match s.parse::<usize>() {
                Ok(n) => set_xcts(n)?,
                Err(_) => {
                    out.get_or_insert_with(|| s.to_owned());
                }
            },
        }
    }
    Ok(BenchArgs {
        n_xcts: n_xcts.unwrap_or(if smoke { 60 } else { default_n }),
        out,
        threads: threads.unwrap_or_else(sweep::default_threads),
        shards: shards.unwrap_or(1),
        smoke,
        scaling,
        benchmarks_explicit: benchmarks.is_some(),
        benchmarks: benchmarks.unwrap_or_else(|| Benchmark::ALL.to_vec()),
    })
}

/// Build a benchmark and collect disjoint profiling and evaluation traces.
///
/// The two ranges generate **in parallel** (one private storage engine
/// each — see [`gen`]) on the thread count of [`threads_from`] over the
/// process arguments, so the flag-less figure binaries (`fig1`–`fig4`)
/// lose their sequential generation prefix without parsing anything
/// themselves. This is deliberately argv/env-driven — binaries that parse
/// `--threads` should pass it to [`profile_and_eval_on`] explicitly
/// instead. An `n_eval` of 0 skips the second engine entirely.
pub fn profile_and_eval(
    bench: Benchmark,
    n_profile: usize,
    n_eval: usize,
) -> (WorkloadTrace, WorkloadTrace) {
    let args: Vec<String> = std::env::args().collect();
    profile_and_eval_on(bench, n_profile, n_eval, threads_from(&args))
}

/// [`profile_and_eval`] with an explicit generation thread count.
pub fn profile_and_eval_on(
    bench: Benchmark,
    n_profile: usize,
    n_eval: usize,
    threads: usize,
) -> (WorkloadTrace, WorkloadTrace) {
    if n_eval == 0 {
        // One range only: don't pay a second engine population just to
        // learn the (identical) workload metadata.
        let mut out = generate(&[GenRange::new(bench, n_profile, PROFILE_SEED)], 1);
        let profile = out.pop().expect("one range generated");
        let eval = WorkloadTrace {
            name: profile.name.clone(),
            xct_type_names: profile.xct_type_names.clone(),
            xcts: Vec::new(),
        };
        return (profile, eval);
    }
    let mut out = generate(&profile_eval_ranges(bench, n_profile, n_eval), threads);
    let eval = out.pop().expect("two ranges generated");
    let profile = out.pop().expect("two ranges generated");
    (profile, eval)
}

/// Run Algorithm 1 on the profiling traces with the config's L1-I.
pub fn migration_map(profile: &WorkloadTrace, cfg: &ReplayConfig) -> MigrationMap {
    find_migration_points(&profile.xcts, cfg.sim.l1i)
}

/// Replay the evaluation traces under all five schedulers, Baseline first.
pub fn run_all(eval: &WorkloadTrace, map: &MigrationMap, cfg: &ReplayConfig) -> Vec<ReplayResult> {
    SchedulerKind::ALL
        .iter()
        .map(|&kind| run_scheduler(kind, &eval.xcts, Some(map), cfg))
        .collect()
}

/// Normalize `value` over the baseline's, guarding degenerate baselines.
/// A zero-transaction or zero-instruction run legitimately reports 0 for
/// every metric; dividing by that must print as `0.00` in the figures, not
/// `NaN`/`inf` (and a non-finite baseline must not propagate).
pub fn norm(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 || !baseline.is_finite() {
        0.0
    } else {
        value / baseline
    }
}

/// Print a standard header naming the figure and setup.
pub fn header(artifact: &str, what: &str, n: usize) {
    println!("================================================================");
    println!("{artifact}: {what}");
    println!("(ADDICT reproduction; {n} traces/workload, seeds {PROFILE_SEED}/{EVAL_SEED})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_workloads::collect_traces;

    #[test]
    fn norm_guards_zero() {
        assert_eq!(norm(5.0, 0.0), 0.0);
        assert_eq!(norm(5.0, -0.0), 0.0);
        assert_eq!(norm(5.0, f64::NAN), 0.0);
        assert_eq!(norm(5.0, f64::INFINITY), 0.0);
        assert!((norm(5.0, 2.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bench_args_parse_flags_and_positionals() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        let a = parse_bench_args_from(&argv(&["bench", "400", "out.json", "--threads", "2"]), 600)
            .unwrap();
        assert_eq!(a.n_xcts, 400);
        assert_eq!(a.out.as_deref(), Some("out.json"));
        assert_eq!(a.threads, 2);
        assert!(!a.smoke);
        assert_eq!(a.benchmarks, Benchmark::ALL.to_vec());
        // Flags may precede positionals; --smoke shrinks the default n.
        let b = parse_bench_args_from(&argv(&["bench", "--threads=3", "--smoke"]), 600).unwrap();
        assert_eq!(b.n_xcts, 60);
        assert_eq!(b.out, None);
        assert_eq!(b.threads, 3);
        assert!(b.smoke);
        // An explicit trace count wins over the smoke default.
        let c = parse_bench_args_from(&argv(&["bench", "--smoke", "200"]), 600).unwrap();
        assert_eq!(c.n_xcts, 200);
        // A lone path positional is the output file, not a trace count
        // (the CI smoke invocation passes only a path).
        let d = parse_bench_args_from(
            &argv(&["bench", "--threads", "2", "--smoke", "/tmp/s.json"]),
            600,
        )
        .unwrap();
        assert_eq!(d.n_xcts, 60);
        assert_eq!(d.out.as_deref(), Some("/tmp/s.json"));
        assert!(d.smoke);
    }

    #[test]
    fn bench_args_parse_shards_flag() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // Default: the serial engine.
        let a = parse_bench_args_from(&argv(&["bench", "--smoke"]), 600).unwrap();
        assert_eq!(a.shards, 1);
        let b = parse_bench_args_from(&argv(&["bench", "--shards", "4", "out.json"]), 600).unwrap();
        assert_eq!(b.shards, 4);
        assert_eq!(b.out.as_deref(), Some("out.json"));
        let c = parse_bench_args_from(&argv(&["bench", "--shards=2", "--smoke"]), 600).unwrap();
        assert_eq!(c.shards, 2);
        // Garbage, zero, a missing value, and a flag swallowed as the
        // value are explicit errors — same contract as --threads.
        for bad in [
            vec!["bench", "--shards"],
            vec!["bench", "--shards", "--smoke"],
            vec!["bench", "--shards", "4x"],
            vec!["bench", "--shards=0"],
            vec!["bench", "--shards=lots"],
        ] {
            let err = parse_bench_args_from(&argv(&bad), 600).unwrap_err();
            assert_eq!(err.field, "shards", "{bad:?} gave {err:?}");
            assert!(err.message.contains("--shards"), "{bad:?} gave {err:?}");
        }
    }

    #[test]
    fn bench_args_reject_malformed_threads() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // A --threads flag swallowing the next flag as its value, a
        // missing value, garbage, and zero are all explicit errors — a
        // typo must never silently serialize a sweep.
        for bad in [
            vec!["bench", "--threads", "--smoke"],
            vec!["bench", "--threads"],
            vec!["bench", "--threads", "8x", "out.json"],
            vec!["bench", "--threads=0"],
            vec!["bench", "--threads=zap"],
        ] {
            let err = parse_bench_args_from(&argv(&bad), 600).unwrap_err();
            assert_eq!(err.field, "threads", "{bad:?} gave {err:?}");
            assert!(err.message.contains("--threads"), "{bad:?} gave {err:?}");
        }
        // Unknown flags are errors too, not output paths.
        assert!(parse_bench_args_from(&argv(&["bench", "--jobs", "4"]), 600).is_err());
    }

    #[test]
    fn bench_args_parse_xcts_flag() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // --xcts sets the trace count like the numeric positional does,
        // and beats the smoke default.
        let a =
            parse_bench_args_from(&argv(&["bench", "--xcts", "2000", "out.json"]), 600).unwrap();
        assert_eq!(a.n_xcts, 2000);
        assert_eq!(a.out.as_deref(), Some("out.json"));
        let b = parse_bench_args_from(&argv(&["bench", "--smoke", "--xcts=1000000"]), 600).unwrap();
        assert_eq!(b.n_xcts, 1_000_000);
        assert!(b.smoke);
        assert!(!b.scaling);
        let c =
            parse_bench_args_from(&argv(&["bench", "--scaling", "--xcts", "400"]), 600).unwrap();
        assert!(c.scaling);
        assert_eq!(c.n_xcts, 400);
        // Garbage, zero, a missing value, and a flag swallowed as the
        // value are explicit errors — same contract as --threads.
        for bad in [
            vec!["bench", "--xcts"],
            vec!["bench", "--xcts", "--smoke"],
            vec!["bench", "--xcts", "1e6"],
            vec!["bench", "--xcts=0"],
            vec!["bench", "--xcts=many"],
        ] {
            let err = parse_bench_args_from(&argv(&bad), 600).unwrap_err();
            assert_eq!(err.field, "xcts", "{bad:?} gave {err:?}");
            assert!(err.message.contains("--xcts"), "{bad:?} gave {err:?}");
        }
        // Two trace counts (flag twice, or flag + positional) are
        // ambiguous, not last-one-wins.
        for twice in [
            vec!["bench", "--xcts", "5", "--xcts", "6"],
            vec!["bench", "400", "--xcts", "5"],
            vec!["bench", "--xcts=5", "400"],
        ] {
            let err = parse_bench_args_from(&argv(&twice), 600).unwrap_err();
            assert!(
                err.message.contains("more than once"),
                "{twice:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn bench_args_parse_benchmark_filter() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        let a = parse_bench_args_from(&argv(&["bench", "--benchmarks", "tpcb,tatp"]), 600).unwrap();
        assert_eq!(a.benchmarks, vec![Benchmark::TpcB, Benchmark::Tatp]);
        // Case-insensitive, dashed or dashless, in = form too.
        let b = parse_bench_args_from(&argv(&["bench", "--benchmarks=TPC-C,ycsb-a,YCSBB"]), 600)
            .unwrap();
        assert_eq!(
            b.benchmarks,
            vec![Benchmark::TpcC, Benchmark::YcsbA, Benchmark::YcsbB]
        );
        // Unknown names and empty lists are explicit errors.
        let err =
            parse_bench_args_from(&argv(&["bench", "--benchmarks", "tpcz"]), 600).unwrap_err();
        assert_eq!(err.field, "benchmarks", "{err}");
        assert!(err.message.contains("unknown benchmark"), "{err}");
        assert!(parse_bench_args_from(&argv(&["bench", "--benchmarks"]), 600).is_err());
        assert!(parse_bench_args_from(&argv(&["bench", "--benchmarks="]), 600).is_err());
    }

    #[test]
    fn zero_xct_replay_reports_finite_zeros() {
        // A 0-transaction run must flow through every figure's arithmetic
        // as clean zeros, never NaN (empty-trace guard satellite).
        let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 10, PROFILE_SEED);
        let cfg = ReplayConfig::paper_default();
        let map = migration_map(&profile, &cfg);
        let empty: Vec<addict_trace::XctTrace> = Vec::new();
        for kind in SchedulerKind::ALL {
            let r = run_scheduler(kind, &empty, Some(&map), &cfg);
            assert_eq!(r.n_xcts, 0);
            assert_eq!(r.instructions, 0);
            assert_eq!(r.stats.l1i_mpki(), 0.0);
            assert_eq!(r.stats.l1d_mpki(), 0.0);
            assert_eq!(r.stats.llc_mpki(), 0.0);
            assert_eq!(r.stats.l2p_mpki(), 0.0);
            assert_eq!(r.stats.switches_per_ki(), 0.0);
            assert_eq!(r.overhead_fraction(), 0.0);
            assert!(r.avg_latency_cycles == 0.0 && r.total_cycles == 0.0);
            assert!(r.power.per_core_power_w == 0.0);
            assert_eq!(norm(r.stats.l1i_mpki(), r.stats.l1i_mpki()), 0.0);
        }
    }

    #[test]
    fn small_pipeline_end_to_end() {
        // A miniature end-to-end run of the harness plumbing.
        let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 20, PROFILE_SEED);
        let eval = collect_traces(&mut engine, workload.as_mut(), 20, EVAL_SEED);
        let cfg = ReplayConfig::paper_default();
        let map = migration_map(&profile, &cfg);
        let results = run_all(&eval, &map, &cfg);
        assert_eq!(results.len(), SchedulerKind::ALL.len());
        assert_eq!(results[0].scheduler, "Baseline");
        assert!(results.iter().all(|r| r.n_xcts == 20));
        assert!(results.iter().all(|r| r.total_cycles > 0.0));
    }
}
