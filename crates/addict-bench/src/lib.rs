//! # addict-bench
//!
//! The benchmark harness regenerating every table and figure of the ADDICT
//! paper's evaluation (Section 4). One binary per artifact:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — system parameters |
//! | `fig1`   | Figure 1 — operation flow-graph footprint percentages |
//! | `fig2`   | Figure 2 — instruction/data footprint overlap pies |
//! | `fig3`   | Figure 3 — per-instance reuse vs cross-instance commonality |
//! | `fig4`   | Figure 4 — migration-point stability, 1000 vs 10000 traces |
//! | `fig5`   | Figure 5 — L1-I / L1-D / L2 MPKI vs Baseline |
//! | `fig6`   | Figure 6 — total execution cycles + transaction latency |
//! | `fig7`   | Figure 7 — batch-size sweep (Section 4.5) |
//! | `fig8`   | Figure 8 — deeper hierarchy + power (Sections 4.6, 4.7) |
//! | `fig9`   | Figure 9 — context switches + overhead breakdown |
//! | `ablation` | DESIGN.md §3 design-choice ablations (beyond the paper) |
//! | `bench`  | `BENCH_n.json` — replay throughput (events/sec) per scheduler, flat vs segment-granular execution (see BENCHMARKS.md) |
//!
//! Every binary accepts the trace count as its first argument (default
//! 600; the paper uses 1000 for profiling and 1000 for evaluation —
//! Section 4.2 shows results are stable from 1000 up). Runs are
//! deterministic: seed 1 profiles, seed 2 evaluates, matching the paper's
//! disjoint trace ranges.

use addict_core::algorithm1::MigrationMap;
use addict_core::find_migration_points;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::WorkloadTrace;
use addict_workloads::{collect_traces, Benchmark};

/// Profiling seed (the paper's traces 1–1000).
pub const PROFILE_SEED: u64 = 1;
/// Evaluation seed (the paper's traces 1001–2000).
pub const EVAL_SEED: u64 = 2;

/// Trace count from argv (first positional argument), default 600.
pub fn arg_xcts(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Build a benchmark and collect disjoint profiling and evaluation traces.
pub fn profile_and_eval(
    bench: Benchmark,
    n_profile: usize,
    n_eval: usize,
) -> (WorkloadTrace, WorkloadTrace) {
    let (mut engine, mut workload) = bench.setup();
    let profile = collect_traces(&mut engine, workload.as_mut(), n_profile, PROFILE_SEED);
    let eval = collect_traces(&mut engine, workload.as_mut(), n_eval, EVAL_SEED);
    (profile, eval)
}

/// Run Algorithm 1 on the profiling traces with the config's L1-I.
pub fn migration_map(profile: &WorkloadTrace, cfg: &ReplayConfig) -> MigrationMap {
    find_migration_points(&profile.xcts, cfg.sim.l1i)
}

/// Replay the evaluation traces under all four schedulers, Baseline first.
pub fn run_all(eval: &WorkloadTrace, map: &MigrationMap, cfg: &ReplayConfig) -> Vec<ReplayResult> {
    SchedulerKind::ALL
        .iter()
        .map(|&kind| run_scheduler(kind, &eval.xcts, Some(map), cfg))
        .collect()
}

/// Normalize `value` over the baseline's, guarding zero.
pub fn norm(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Print a standard header naming the figure and setup.
pub fn header(artifact: &str, what: &str, n: usize) {
    println!("================================================================");
    println!("{artifact}: {what}");
    println!("(ADDICT reproduction; {n} traces/workload, seeds {PROFILE_SEED}/{EVAL_SEED})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_guards_zero() {
        assert_eq!(norm(5.0, 0.0), 0.0);
        assert!((norm(5.0, 2.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn small_pipeline_end_to_end() {
        // A miniature end-to-end run of the harness plumbing.
        let (mut engine, mut workload) = Benchmark::TpcB.setup_small();
        let profile = collect_traces(&mut engine, workload.as_mut(), 20, PROFILE_SEED);
        let eval = collect_traces(&mut engine, workload.as_mut(), 20, EVAL_SEED);
        let cfg = ReplayConfig::paper_default();
        let map = migration_map(&profile, &cfg);
        let results = run_all(&eval, &map, &cfg);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].scheduler, "Baseline");
        assert!(results.iter().all(|r| r.n_xcts == 20));
        assert!(results.iter().all(|r| r.total_cycles > 0.0));
    }
}
