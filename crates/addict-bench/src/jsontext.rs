//! Minimal hand-rolled JSON text layer for job specs and results.
//!
//! The workspace is offline (vendor/ carries stand-ins, not real serde),
//! so the service protocol hand-rolls its wire format: a strict subset of
//! JSON — objects, arrays, strings, integers/floats, booleans, null —
//! parsed by a ~150-line recursive-descent reader. Numbers keep their raw
//! token so integer fields (`n_xcts`, seeds) never round-trip through an
//! `f64`. This is deliberately *not* a general JSON library: duplicate
//! keys are rejected (a job spec with two `n_xcts` fields is as ambiguous
//! as two `--xcts` flags), and `\uXXXX` escapes are out of scope for the
//! ASCII identifiers the protocol carries.

/// A parsed JSON value. Numbers keep their raw text.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token (`"60"`, `"1.5e3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in declaration order (keys are unique).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, JsonValue)], String> {
        match self {
            JsonValue::Obj(f) => Ok(f),
            _ => Err(format!("{what} must be an object")),
        }
    }

    /// The array's elements, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Arr(v) => Ok(v),
            _ => Err(format!("{what} must be an array")),
        }
    }

    /// The string's contents, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            _ => Err(format!("{what} must be a string")),
        }
    }

    /// The boolean, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(format!("{what} must be a boolean")),
        }
    }

    /// The number as a non-negative integer, or an error naming `what`
    /// (floats and negatives are rejected — sizes and seeds are counts).
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JsonValue::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what} must be a non-negative integer, got {raw:?}")),
            _ => Err(format!("{what} must be a number")),
        }
    }

    /// The number as an `f64`, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("{what} is not a valid number: {raw:?}")),
            _ => Err(format!("{what} must be a number")),
        }
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(&c) => Err(format!("unexpected {:?} at byte {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).expect("ascii number token");
    // Validate the token now so `Num` always holds something parseable.
    raw.parse::<f64>()
        .map_err(|_| format!("malformed number {raw:?} at byte {start}"))?;
    Ok(JsonValue::Num(raw.to_owned()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => b'"',
                    b'\\' => b'\\',
                    b'/' => b'/',
                    b'n' => b'\n',
                    b'r' => b'\r',
                    b't' => b'\t',
                    c => return Err(format!("unsupported escape \\{}", *c as char)),
                });
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(
            r#" { "a": [1, 2.5, -3], "b": "x\"y\n", "c": true, "d": null, "e": {} } "#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr("a").unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr("a").unwrap()[0]
                .as_u64("a[0]")
                .unwrap(),
            1
        );
        assert_eq!(v.get("b").unwrap().as_str("b").unwrap(), "x\"y\n");
        assert!(v.get("c").unwrap().as_bool("c").unwrap());
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_obj("e").unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "{\"a\": 1, \"a\": 2}", // duplicate keys are ambiguous
            "\"\\u0041\"",          // \u escapes are out of protocol scope
            "{'a': 1}",
            "01a",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_do_not_round_trip_through_f64() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64("n").unwrap(), u64::MAX);
        assert!(JsonValue::parse("1.5").unwrap().as_u64("n").is_err());
        assert!(JsonValue::parse("-1").unwrap().as_u64("n").is_err());
    }

    #[test]
    fn escape_round_trips() {
        // Protocol strings are ASCII identifiers plus the odd quote,
        // backslash, or whitespace escape.
        let t = "TPC-B baseline \"x\" \\ tab\t line\n";
        let doc = format!("\"{}\"", escape(t));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str("t").unwrap(), t);
    }
}
