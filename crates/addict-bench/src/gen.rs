//! Parallel trace generation: the sequential prefix of every figure
//! binary, fanned out through [`run_grid`](crate::sweep::run_grid).
//!
//! Trace generation is dominated by storage-engine population (building
//! and loading a TPC-E database takes ~100x longer than tracing 400
//! transactions against it), and each (benchmark × seed) trace range needs
//! its own engine anyway — the profile and eval ranges are disjoint by
//! seed, matching the paper's disjoint trace ranges (1–1000 profile,
//! 1001–2000 eval). So the unit of parallelism is the **range**: one
//! worker per range, one private storage engine per worker, results
//! returned in range order.
//!
//! # Determinism
//!
//! A range's output is a pure function of `(benchmark, n, seed, scale)`:
//! the engine is freshly built and the RNG freshly seeded inside the
//! worker, nothing crosses ranges, and `run_grid` never lets completion
//! order leak into result order. `generate(ranges, 1)` and
//! `generate(ranges, n)` are therefore **bit-identical**, and each range
//! equals a direct sequential `collect_traces` on a fresh engine —
//! asserted by `tests/gen_determinism.rs`.
//!
//! [`generate_interned`] is the compact-form twin: each worker interns
//! traces *as they complete* into a worker-local
//! [`SlicePool`](addict_trace::SlicePool), and the local pools merge into
//! one master arena in range order (so the master layout is also
//! thread-count-independent). The returned workloads all share the master
//! pool behind one `Arc`.

use std::sync::Arc;

use addict_trace::{InternedTrace, InternedWorkload, SlicePool, WorkloadTrace};
use addict_workloads::{collect_traces, collect_traces_interned_chunked, Benchmark};

use crate::sweep::run_grid;

/// One trace-generation range: `n` transactions of `bench` from `seed`,
/// executed on a fresh private storage engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenRange {
    /// Benchmark to build and trace.
    pub bench: Benchmark,
    /// Transactions to run.
    pub n: usize,
    /// RNG seed of the transaction stream.
    pub seed: u64,
    /// Use the reduced test-scale population (`setup_small`).
    pub small: bool,
}

impl GenRange {
    /// A full-scale range (the figure binaries' configuration).
    pub fn new(bench: Benchmark, n: usize, seed: u64) -> Self {
        GenRange {
            bench,
            n,
            seed,
            small: false,
        }
    }

    /// The same range at test scale.
    pub fn small(bench: Benchmark, n: usize, seed: u64) -> Self {
        GenRange {
            bench,
            n,
            seed,
            small: true,
        }
    }

    fn setup(
        &self,
    ) -> (
        addict_storage::Engine,
        Box<dyn addict_workloads::WorkloadRunner>,
    ) {
        if self.small {
            self.bench.setup_small()
        } else {
            self.bench.setup()
        }
    }
}

// Thread-safety audit: ranges are shared into generation workers; traces
// and interned parts travel back to the collecting thread. (Engines and
// runners are created, used, and dropped entirely inside one worker — they
// never cross threads and are deliberately not part of this contract.)
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<GenRange>();
    shared::<WorkloadTrace>();
    shared::<InternedTrace>();
    shared::<SlicePool>();
};

/// Generate every range on `threads` worker threads, one storage engine
/// per worker, returning the workloads in range order. Bit-identical to
/// running each range sequentially.
pub fn generate(ranges: &[GenRange], threads: usize) -> Vec<WorkloadTrace> {
    run_grid(ranges, threads, |_, r| {
        let (mut engine, mut workload) = r.setup();
        collect_traces(&mut engine, workload.as_mut(), r.n, r.seed)
    })
}

/// Default recorder-drain granularity of [`generate_interned`]: large
/// enough to amortize the per-drain engine round trip, small enough that
/// a chunk of flat traces stays a rounding error next to the interned
/// set it feeds.
pub const DEFAULT_GEN_CHUNK: usize = 64;

/// [`generate`] in interned form: workers intern as they collect (the flat
/// trace set never materializes), worker-local pools merge in range order,
/// and every returned workload shares the single master arena.
pub fn generate_interned(ranges: &[GenRange], threads: usize) -> Vec<InternedWorkload> {
    generate_interned_chunked(ranges, threads, DEFAULT_GEN_CHUNK)
}

/// [`generate_interned`] with an explicit drain granularity (see
/// [`collect_traces_interned_chunked`]): the generate→intern→replay
/// pipeline's memory knob. Peak resident memory is O(chunk flat traces +
/// pool + encoded per-trace residue) instead of O(total flat events), so
/// million-transaction eval sets fit where the batch path would swap.
///
/// Output is bit-identical for every `chunk` and thread count: chunking
/// never reorders transactions, and the merge consumes worker-local
/// pools in range order. A single-range run skips the merge entirely —
/// re-interning a lone local pool in order reproduces its layout
/// byte-for-byte, so the local pool *is* the master.
pub fn generate_interned_chunked(
    ranges: &[GenRange],
    threads: usize,
    chunk: usize,
) -> Vec<InternedWorkload> {
    let parts = run_grid(ranges, threads, |_, r| {
        let (mut engine, mut workload) = r.setup();
        let mut pool = SlicePool::new();
        let xcts = collect_traces_interned_chunked(
            &mut engine,
            workload.as_mut(),
            r.n,
            r.seed,
            &mut pool,
            chunk,
        );
        (
            workload.name().to_owned(),
            workload.xct_type_names(),
            pool,
            xcts,
        )
    });
    let mut parts = parts;
    if parts.len() == 1 {
        // Single range: its local pool is already the master arena (no
        // reintern copy of a million-trace set).
        let (name, xct_type_names, pool, xcts) = parts.pop().expect("one part");
        return vec![InternedWorkload {
            name,
            xct_type_names,
            pool: Arc::new(pool),
            xcts,
        }];
    }
    let mut master = SlicePool::new();
    let merged: Vec<(String, Vec<String>, Vec<InternedTrace>)> = parts
        .into_iter()
        .map(|(name, type_names, pool, xcts)| {
            // Consume each range's traces and drop its local pool before
            // touching the next, so transient merge memory is one range's
            // worth, never the whole grid's.
            let remapped = xcts
                .into_iter()
                .map(|t| t.reintern(&pool, &mut master))
                .collect();
            (name, type_names, remapped)
        })
        .collect();
    let master = Arc::new(master);
    merged
        .into_iter()
        .map(|(name, xct_type_names, xcts)| InternedWorkload {
            name,
            xct_type_names,
            pool: Arc::clone(&master),
            xcts,
        })
        .collect()
}

/// Profile + eval ranges for one benchmark (the standard figure-binary
/// shape: disjoint seeds, fresh engine each).
pub fn profile_eval_ranges(bench: Benchmark, n_profile: usize, n_eval: usize) -> [GenRange; 2] {
    [
        GenRange::new(bench, n_profile, crate::PROFILE_SEED),
        GenRange::new(bench, n_eval, crate::EVAL_SEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_orders_results_by_range() {
        let ranges = [
            GenRange::small(Benchmark::TpcB, 3, 1),
            GenRange::small(Benchmark::TpcB, 5, 2),
        ];
        let out = generate(&ranges, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].xcts.len(), 3);
        assert_eq!(out[1].xcts.len(), 5);
        assert_eq!(out[0].name, "TPC-B");
    }

    #[test]
    fn interned_generation_shares_one_pool() {
        let ranges = [
            GenRange::small(Benchmark::TpcB, 4, 1),
            GenRange::small(Benchmark::TpcB, 4, 2),
        ];
        let out = generate_interned(&ranges, 2);
        assert_eq!(out.len(), 2);
        assert!(Arc::ptr_eq(&out[0].pool, &out[1].pool));
        assert_eq!(out[0].xcts.len(), 4);
        // Interned generation is lossless against the flat path.
        let flat = generate(&ranges, 1);
        for (iw, fw) in out.iter().zip(&flat) {
            let back = iw.flatten();
            assert_eq!(back.xcts.len(), fw.xcts.len());
            for (a, b) in back.xcts.iter().zip(&fw.xcts) {
                assert_eq!(a.events, b.events);
            }
        }
    }
}
