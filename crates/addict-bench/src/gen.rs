//! Parallel trace generation: the sequential prefix of every figure
//! binary, fanned out through [`run_grid`](crate::sweep::run_grid).
//!
//! Trace generation is dominated by storage-engine population (building
//! and loading a TPC-E database takes ~100x longer than tracing 400
//! transactions against it), and each (benchmark × seed) trace range needs
//! its own engine anyway — the profile and eval ranges are disjoint by
//! seed, matching the paper's disjoint trace ranges (1–1000 profile,
//! 1001–2000 eval). So the unit of parallelism is the **range**: one
//! worker per range, one private storage engine per worker, results
//! returned in range order.
//!
//! # Determinism
//!
//! A range's output is a pure function of `(benchmark, n, seed, scale)`:
//! the engine is freshly built and the RNG freshly seeded inside the
//! worker, nothing crosses ranges, and `run_grid` never lets completion
//! order leak into result order. `generate(ranges, 1)` and
//! `generate(ranges, n)` are therefore **bit-identical**, and each range
//! equals a direct sequential `collect_traces` on a fresh engine —
//! asserted by `tests/gen_determinism.rs`.
//!
//! [`generate_interned`] is the compact-form twin: each worker interns
//! traces *as they complete* into a worker-local
//! [`SlicePool`](addict_trace::SlicePool), and the local pools merge into
//! one master arena in range order (so the master layout is also
//! thread-count-independent). The returned workloads all share the master
//! pool behind one `Arc`.

use std::sync::Arc;

use addict_trace::{InternedTrace, InternedWorkload, SlicePool, WorkloadTrace};
use addict_workloads::{collect_traces, collect_traces_interned, Benchmark};

use crate::sweep::run_grid;

/// One trace-generation range: `n` transactions of `bench` from `seed`,
/// executed on a fresh private storage engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenRange {
    /// Benchmark to build and trace.
    pub bench: Benchmark,
    /// Transactions to run.
    pub n: usize,
    /// RNG seed of the transaction stream.
    pub seed: u64,
    /// Use the reduced test-scale population (`setup_small`).
    pub small: bool,
}

impl GenRange {
    /// A full-scale range (the figure binaries' configuration).
    pub fn new(bench: Benchmark, n: usize, seed: u64) -> Self {
        GenRange {
            bench,
            n,
            seed,
            small: false,
        }
    }

    /// The same range at test scale.
    pub fn small(bench: Benchmark, n: usize, seed: u64) -> Self {
        GenRange {
            bench,
            n,
            seed,
            small: true,
        }
    }

    fn setup(
        &self,
    ) -> (
        addict_storage::Engine,
        Box<dyn addict_workloads::WorkloadRunner>,
    ) {
        if self.small {
            self.bench.setup_small()
        } else {
            self.bench.setup()
        }
    }
}

// Thread-safety audit: ranges are shared into generation workers; traces
// and interned parts travel back to the collecting thread. (Engines and
// runners are created, used, and dropped entirely inside one worker — they
// never cross threads and are deliberately not part of this contract.)
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<GenRange>();
    shared::<WorkloadTrace>();
    shared::<InternedTrace>();
    shared::<SlicePool>();
};

/// Generate every range on `threads` worker threads, one storage engine
/// per worker, returning the workloads in range order. Bit-identical to
/// running each range sequentially.
pub fn generate(ranges: &[GenRange], threads: usize) -> Vec<WorkloadTrace> {
    run_grid(ranges, threads, |_, r| {
        let (mut engine, mut workload) = r.setup();
        collect_traces(&mut engine, workload.as_mut(), r.n, r.seed)
    })
}

/// [`generate`] in interned form: workers intern as they collect (the flat
/// trace set never materializes), worker-local pools merge in range order,
/// and every returned workload shares the single master arena.
pub fn generate_interned(ranges: &[GenRange], threads: usize) -> Vec<InternedWorkload> {
    let parts = run_grid(ranges, threads, |_, r| {
        let (mut engine, mut workload) = r.setup();
        let mut pool = SlicePool::new();
        let xcts = collect_traces_interned(&mut engine, workload.as_mut(), r.n, r.seed, &mut pool);
        (
            workload.name().to_owned(),
            workload.xct_type_names(),
            pool,
            xcts,
        )
    });
    let mut master = SlicePool::new();
    let merged: Vec<(String, Vec<String>, Vec<InternedTrace>)> = parts
        .into_iter()
        .map(|(name, type_names, pool, xcts)| {
            let remapped = xcts
                .iter()
                .map(|t| t.reintern(&pool, &mut master))
                .collect();
            (name, type_names, remapped)
        })
        .collect();
    let master = Arc::new(master);
    merged
        .into_iter()
        .map(|(name, xct_type_names, xcts)| InternedWorkload {
            name,
            xct_type_names,
            pool: Arc::clone(&master),
            xcts,
        })
        .collect()
}

/// Profile + eval ranges for one benchmark (the standard figure-binary
/// shape: disjoint seeds, fresh engine each).
pub fn profile_eval_ranges(bench: Benchmark, n_profile: usize, n_eval: usize) -> [GenRange; 2] {
    [
        GenRange::new(bench, n_profile, crate::PROFILE_SEED),
        GenRange::new(bench, n_eval, crate::EVAL_SEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_orders_results_by_range() {
        let ranges = [
            GenRange::small(Benchmark::TpcB, 3, 1),
            GenRange::small(Benchmark::TpcB, 5, 2),
        ];
        let out = generate(&ranges, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].xcts.len(), 3);
        assert_eq!(out[1].xcts.len(), 5);
        assert_eq!(out[0].name, "TPC-B");
    }

    #[test]
    fn interned_generation_shares_one_pool() {
        let ranges = [
            GenRange::small(Benchmark::TpcB, 4, 1),
            GenRange::small(Benchmark::TpcB, 4, 2),
        ];
        let out = generate_interned(&ranges, 2);
        assert_eq!(out.len(), 2);
        assert!(Arc::ptr_eq(&out[0].pool, &out[1].pool));
        assert_eq!(out[0].xcts.len(), 4);
        // Interned generation is lossless against the flat path.
        let flat = generate(&ranges, 1);
        for (iw, fw) in out.iter().zip(&flat) {
            let back = iw.flatten();
            assert_eq!(back.xcts.len(), fw.xcts.len());
            for (a, b) in back.xcts.iter().zip(&fw.xcts) {
                assert_eq!(a.events, b.events);
            }
        }
    }
}
