//! The job layer: grid/sweep execution as a reusable library.
//!
//! Before PR 7 the (benchmark × scheduler × config) sweep recipe — fetch
//! traces, build the migration map, construct the grid, fan it out, and
//! serialize the outcome — lived inline in `src/bin/*`. This module
//! extracts it so the batch binaries and the resident evaluation server
//! (`addict-service`) share **one code path**:
//!
//! * [`JobSpec`] — a declarative job: benchmark selection × scheduler set
//!   × config grid (batch sizes) × transaction count, with a hand-rolled
//!   JSON round-trip ([`JobSpec::to_json`] / [`JobSpec::from_json`]) and
//!   the same strict-flag surface as the bench binaries
//!   ([`JobSpec::from_args`]);
//! * [`SpecError`] — the single error type of both surfaces: every
//!   malformed flag *and* every malformed job field reports through it,
//!   tagged with the offending field, so CLI and server strictness cannot
//!   drift;
//! * [`run_job`] — the executor: traces come from a
//!   [`TracePool`](crate::cache::TracePool) (cache hit or generate), the
//!   migration map from Algorithm 1 over the cached profile set, and the
//!   grid fans out through [`run_grid`](crate::sweep::run_grid);
//! * [`JobResult`] — the serialized outcome. Its [`JobResult::to_json`]
//!   output is a pure function of the spec — wall-clock timings travel in
//!   progress callbacks, never in the result — so a job executed via the
//!   server serializes **byte-identical** to the same job executed via
//!   the batch path (asserted by `addict-service/tests/service_roundtrip.rs`
//!   and re-checked on every `bench` run).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use addict_core::algorithm1::{find_migration_points_interned, MigrationMap};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::SchedulerKind;
use addict_trace::{InternedWorkload, TraceEvent};
use addict_workloads::Benchmark;

use crate::cache::{TraceKey, TracePool};
use crate::jsontext::{escape, JsonValue};
use crate::sweep::{run_grid_abortable, run_point, SweepPoint, SweepTraces};
use crate::{EVAL_SEED, PROFILE_SEED};

/// A job-spec or argument error: the single strictness policy shared by
/// the bench binaries' flags and the server's job parsing. `field` names
/// the offending input (`"xcts"`, `"threads"`, `"benchmarks"`, ...) so
/// the server can answer with a structured error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The spec field or flag at fault.
    pub field: &'static str,
    /// Human-readable diagnosis (includes the offending value).
    pub message: String,
}

impl SpecError {
    /// Build an error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        SpecError {
            field,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// Why a running job stopped early: an explicit cancellation or an
/// expired deadline. The two are distinct lifecycle outcomes — a client
/// that asked for the stop should not be told the job "timed out".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// A cooperative cancellation/deadline token threaded through
/// [`run_job_with`] and checked between sweep points (and between trace
/// fetches). Cancellation is *cooperative*: a point already replaying
/// finishes (points are milliseconds to seconds), but no further point
/// starts, no further trace range generates, and the job's trace-pool
/// pins drop as `run_job_with` returns — which is what lets a server
/// reclaim a cancelled job's memory promptly.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    /// Absolute deadline, if armed. Armed by the owner (typically at
    /// admission time, so queue wait counts against the budget).
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A token that never fires (the batch binaries' configuration).
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; checked at the next sweep point.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Arm a deadline `deadline_ms` milliseconds from now. A zero value
    /// clears the deadline.
    pub fn arm_deadline_ms(&self, deadline_ms: u64) {
        let mut slot = self.deadline.lock().expect("deadline lock");
        *slot = if deadline_ms == 0 {
            None
        } else {
            Some(Instant::now() + Duration::from_millis(deadline_ms))
        };
    }

    /// Poll the token: `Ok(())` to keep going, or the [`Interrupt`] that
    /// should end the job. Cancellation wins over an expired deadline
    /// (the client's explicit request is the stronger signal).
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        let deadline = *self.deadline.lock().expect("deadline lock");
        match deadline {
            Some(d) if Instant::now() >= d => Err(Interrupt::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// Why [`run_job_with`] did not produce a result: the spec was invalid,
/// or the job was interrupted mid-flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The spec failed validation (the structured-400 path).
    Spec(SpecError),
    /// The job's [`CancelToken`] fired between sweep points.
    Interrupted(Interrupt),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Spec(e) => e.fmt(f),
            JobError::Interrupted(Interrupt::Cancelled) => f.write_str("job cancelled"),
            JobError::Interrupted(Interrupt::DeadlineExceeded) => {
                f.write_str("job deadline exceeded")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl From<SpecError> for JobError {
    fn from(e: SpecError) -> Self {
        JobError::Spec(e)
    }
}

/// Parse a transaction count: a positive integer, never a silent
/// fallback. Shared by `--xcts`, the numeric positional, and the job
/// spec's `n_xcts` field — the strict semantics from PR 6.
pub fn xcts_value(v: &str) -> Result<usize, SpecError> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(SpecError::new(
            "xcts",
            format!("--xcts requires a positive integer, got {v:?}"),
        )),
    }
}

/// Parse a worker-thread count: a positive integer, never a silent
/// fallback. Shared by `--threads` and the job spec's `threads` field.
pub fn threads_value(v: &str) -> Result<usize, SpecError> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(SpecError::new(
            "threads",
            format!("--threads requires a positive integer, got {v:?}"),
        )),
    }
}

/// Parse an intra-replay shard count: a positive integer, never a silent
/// fallback. Used by `--shards` (the replay engine clamps it to the
/// simulated core count per machine).
pub fn shards_value(v: &str) -> Result<usize, SpecError> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(SpecError::new(
            "shards",
            format!("--shards requires a positive integer, got {v:?}"),
        )),
    }
}

/// Parse a comma-separated benchmark list: known names only, never empty.
/// Shared by `--benchmarks` and (name-by-name) the job spec's
/// `benchmarks` field.
pub fn benchmarks_value(v: &str) -> Result<Vec<Benchmark>, SpecError> {
    let list: Vec<Benchmark> = v
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect::<Result<_, _>>()
        .map_err(|e: String| SpecError::new("benchmarks", e))?;
    if list.is_empty() {
        return Err(SpecError::new(
            "benchmarks",
            "--benchmarks requires a comma-separated list of names",
        ));
    }
    Ok(list)
}

/// A declarative evaluation job: which benchmarks to replay, under which
/// schedulers, over which config grid, at what size. The unit the batch
/// binaries and the resident server both execute through [`run_job`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Benchmarks to replay (registry order is not required).
    pub benchmarks: Vec<Benchmark>,
    /// Schedulers to replay under (default: all five).
    pub schedulers: Vec<SchedulerKind>,
    /// Evaluation (and profiling) transactions per benchmark.
    pub n_xcts: usize,
    /// Sweep/generation worker threads (results are thread-count
    /// invariant; this is purely a latency knob).
    pub threads: usize,
    /// Batch sizes to sweep for the batching schedulers; empty = the
    /// paper default (one grid point per benchmark × scheduler).
    pub batch_sizes: Vec<usize>,
    /// Generation→interning drain granularity (0 = batch interning).
    pub chunk: usize,
    /// Use the reduced test-scale populations (`setup_small`).
    pub small: bool,
    /// Evaluation-trace seed (profiling always uses [`PROFILE_SEED`]).
    pub seed: u64,
    /// Wall-clock budget in milliseconds, measured from admission
    /// (queue wait counts); 0 = no deadline. Enforced cooperatively by
    /// the job's [`CancelToken`] between sweep points. The deadline is
    /// an *execution* knob like `threads`: it never changes what a
    /// completed job's points contain, only whether the job completes.
    pub deadline_ms: u64,
}

impl JobSpec {
    /// The smallest useful job: one benchmark, all five schedulers, the
    /// paper-default config, [`DEFAULT_GEN_CHUNK`](crate::DEFAULT_GEN_CHUNK)
    /// streaming.
    pub fn new(benchmarks: Vec<Benchmark>, n_xcts: usize) -> Self {
        JobSpec {
            benchmarks,
            schedulers: SchedulerKind::ALL.to_vec(),
            n_xcts,
            threads: 1,
            batch_sizes: Vec::new(),
            chunk: crate::DEFAULT_GEN_CHUNK,
            small: false,
            seed: EVAL_SEED,
            deadline_ms: 0,
        }
    }

    /// Build a job from the bench binaries' argument surface
    /// (`[n_xcts] [--xcts N] [--threads N] [--benchmarks a,b,...]`),
    /// sharing [`parse_bench_args_from`](crate::parse_bench_args_from)'s
    /// parsing — one strictness policy, one error type — so server job
    /// parsing and CLI flags cannot drift.
    pub fn from_args(args: &[String], default_n: usize) -> Result<JobSpec, SpecError> {
        let a = crate::parse_bench_args_from(args, default_n)?;
        let mut spec = JobSpec::new(a.benchmarks, a.n_xcts);
        spec.threads = a.threads;
        spec.dedup_lists();
        spec.validate()?;
        Ok(spec)
    }

    /// Collapse duplicate `benchmarks`/`schedulers`/`batch_sizes` entries,
    /// keeping first-occurrence order. A repeated entry adds nothing to a
    /// result (the grid would just replay the identical point), but it
    /// *does* multiply [`JobSpec::grid_shape`] — and with it the admission
    /// controller's reserved-bytes estimate and the deadline-relevant
    /// sweep length — so a sloppy spec like `"benchmarks": ["tatp",
    /// "tatp"]` would burn double the budget to say the same thing and
    /// could tip an otherwise-admissible job into a 503. Both structured
    /// entry points ([`JobSpec::from_json`], [`JobSpec::from_args`])
    /// normalize through this before validating.
    pub fn dedup_lists(&mut self) {
        fn dedup_in_place<T: PartialEq + Copy>(v: &mut Vec<T>) {
            let mut seen: Vec<T> = Vec::with_capacity(v.len());
            v.retain(|&x| {
                if seen.contains(&x) {
                    false
                } else {
                    seen.push(x);
                    true
                }
            });
        }
        dedup_in_place(&mut self.benchmarks);
        dedup_in_place(&mut self.schedulers);
        dedup_in_place(&mut self.batch_sizes);
    }

    /// Enforce the spec invariants the flag parsers enforce for the CLI:
    /// positive transaction and thread counts, non-empty benchmark and
    /// scheduler sets, positive batch sizes. The server rejects a job
    /// failing any of these with a structured error before touching the
    /// cache or worker pool.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.n_xcts == 0 {
            return Err(SpecError::new(
                "n_xcts",
                "n_xcts must be a positive transaction count (the strict --xcts semantics)",
            ));
        }
        if self.threads == 0 {
            return Err(SpecError::new(
                "threads",
                "threads must be a positive worker count (the strict --threads semantics)",
            ));
        }
        if self.benchmarks.is_empty() {
            return Err(SpecError::new(
                "benchmarks",
                "benchmarks must name at least one registry entry",
            ));
        }
        if self.schedulers.is_empty() {
            return Err(SpecError::new(
                "schedulers",
                "schedulers must name at least one scheduler",
            ));
        }
        if self.batch_sizes.contains(&0) {
            return Err(SpecError::new(
                "batch_sizes",
                "batch sizes must be positive",
            ));
        }
        Ok(())
    }

    /// One grid point per (benchmark × scheduler × config): the job's
    /// shape, independent of trace storage. `None` is the paper-default
    /// config; `Some(b)` overrides the batch size. Benchmark-major, then
    /// scheduler, then batch — the order results serialize in.
    pub fn grid_shape(&self) -> Vec<(usize, SchedulerKind, Option<usize>)> {
        let mut shape = Vec::new();
        for (bi, _) in self.benchmarks.iter().enumerate() {
            for &sched in &self.schedulers {
                if self.batch_sizes.is_empty() {
                    shape.push((bi, sched, None));
                } else {
                    for &b in &self.batch_sizes {
                        shape.push((bi, sched, Some(b)));
                    }
                }
            }
        }
        shape
    }

    /// Canonical single-line JSON form. [`JobSpec::from_json`] inverts it
    /// exactly (round-trip tested).
    pub fn to_json(&self) -> String {
        let benches: Vec<String> = self
            .benchmarks
            .iter()
            .map(|b| format!("\"{}\"", b.id()))
            .collect();
        let scheds: Vec<String> = self
            .schedulers
            .iter()
            .map(|s| format!("\"{}\"", s.id()))
            .collect();
        let batches: Vec<String> = self.batch_sizes.iter().map(usize::to_string).collect();
        format!(
            "{{\"benchmarks\":[{}],\"schedulers\":[{}],\"n_xcts\":{},\"threads\":{},\"batch_sizes\":[{}],\"chunk\":{},\"small\":{},\"seed\":{},\"deadline_ms\":{}}}",
            benches.join(","),
            scheds.join(","),
            self.n_xcts,
            self.threads,
            batches.join(","),
            self.chunk,
            self.small,
            self.seed,
            self.deadline_ms
        )
    }

    /// Parse a job from its JSON form. Strict: unknown fields are
    /// rejected (a typo'd field must not silently fall back to a
    /// default), `benchmarks` and `n_xcts` are required, everything else
    /// defaults as [`JobSpec::new`]. The parsed spec is [`validate`]d.
    ///
    /// [`validate`]: JobSpec::validate
    pub fn from_json(s: &str) -> Result<JobSpec, SpecError> {
        let doc = JsonValue::parse(s).map_err(|e| SpecError::new("spec", e))?;
        let fields = doc
            .as_obj("job spec")
            .map_err(|e| SpecError::new("spec", e))?;
        let mut spec = JobSpec::new(Vec::new(), 0);
        let mut saw_benchmarks = false;
        let mut saw_n = false;
        for (key, value) in fields {
            match key.as_str() {
                "benchmarks" => {
                    let arr = value
                        .as_arr("benchmarks")
                        .map_err(|e| SpecError::new("benchmarks", e))?;
                    spec.benchmarks = arr
                        .iter()
                        .map(|v| {
                            v.as_str("benchmarks entry")
                                .map_err(|e| SpecError::new("benchmarks", e))?
                                .parse::<Benchmark>()
                                .map_err(|e| SpecError::new("benchmarks", e))
                        })
                        .collect::<Result<_, _>>()?;
                    saw_benchmarks = true;
                }
                "schedulers" => {
                    let arr = value
                        .as_arr("schedulers")
                        .map_err(|e| SpecError::new("schedulers", e))?;
                    spec.schedulers = arr
                        .iter()
                        .map(|v| {
                            v.as_str("schedulers entry")
                                .map_err(|e| SpecError::new("schedulers", e))?
                                .parse::<SchedulerKind>()
                                .map_err(|e| SpecError::new("schedulers", e))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "n_xcts" => {
                    spec.n_xcts = value
                        .as_u64("n_xcts")
                        .map_err(|e| SpecError::new("n_xcts", e))?
                        as usize;
                    saw_n = true;
                }
                "threads" => {
                    spec.threads = value
                        .as_u64("threads")
                        .map_err(|e| SpecError::new("threads", e))?
                        as usize;
                }
                "batch_sizes" => {
                    let arr = value
                        .as_arr("batch_sizes")
                        .map_err(|e| SpecError::new("batch_sizes", e))?;
                    spec.batch_sizes = arr
                        .iter()
                        .map(|v| {
                            v.as_u64("batch_sizes entry")
                                .map(|n| n as usize)
                                .map_err(|e| SpecError::new("batch_sizes", e))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "chunk" => {
                    spec.chunk = value
                        .as_u64("chunk")
                        .map_err(|e| SpecError::new("chunk", e))?
                        as usize;
                }
                "small" => {
                    spec.small = value
                        .as_bool("small")
                        .map_err(|e| SpecError::new("small", e))?;
                }
                "seed" => {
                    spec.seed = value
                        .as_u64("seed")
                        .map_err(|e| SpecError::new("seed", e))?;
                }
                "deadline_ms" => {
                    spec.deadline_ms = value
                        .as_u64("deadline_ms")
                        .map_err(|e| SpecError::new("deadline_ms", e))?;
                }
                other => {
                    return Err(SpecError::new(
                        "spec",
                        format!("unknown job field {other:?}"),
                    ));
                }
            }
        }
        if !saw_benchmarks {
            return Err(SpecError::new(
                "benchmarks",
                "job is missing \"benchmarks\"",
            ));
        }
        if !saw_n {
            return Err(SpecError::new("n_xcts", "job is missing \"n_xcts\""));
        }
        spec.dedup_lists();
        spec.validate()?;
        Ok(spec)
    }

    /// The cache key of this job's profiling traces for `bench`.
    pub fn profile_key(&self, bench: Benchmark) -> TraceKey {
        TraceKey {
            bench,
            seed: PROFILE_SEED,
            n_xcts: self.n_xcts,
            chunk: self.chunk,
            small: self.small,
        }
    }

    /// The cache key of this job's evaluation traces for `bench`.
    pub fn eval_key(&self, bench: Benchmark) -> TraceKey {
        TraceKey {
            bench,
            seed: self.seed,
            n_xcts: self.n_xcts,
            chunk: self.chunk,
            small: self.small,
        }
    }
}

/// One grid point's outcome. `seconds` is wall clock as achieved in this
/// run — it is deliberately **not** part of the serialized result (see
/// [`JobResult::to_json`]).
#[derive(Debug, Clone)]
pub struct JobPoint {
    /// Benchmark of this point.
    pub benchmark: Benchmark,
    /// Scheduler of this point.
    pub scheduler: SchedulerKind,
    /// Batch-size override (`None` = paper default).
    pub batch_size: Option<usize>,
    /// Block-granular events replayed.
    pub events: u64,
    /// Wall-clock seconds of this point in this run (not serialized).
    pub seconds: f64,
    /// The replay outcome.
    pub result: ReplayResult,
}

/// A finished job: the spec it ran and its points, in
/// [`JobSpec::grid_shape`] order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The spec this result answers.
    pub spec: JobSpec,
    /// One entry per grid point, in grid order.
    pub points: Vec<JobPoint>,
}

/// FNV-1a over a byte string — the digest `result_fnv64` carries so the
/// serialized point commits to *every* field of the replay result
/// (per-core counters, power, the full latency vector) without shipping
/// megabytes of JSON.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl JobResult {
    /// Deterministic JSON form: a pure function of the executed spec.
    /// Floats print with Rust's shortest-roundtrip formatting (two
    /// results serialize identically iff they are bit-identical), and
    /// wall-clock timings are excluded — so server-side and batch-side
    /// executions of the same job serialize **byte-identical**, which is
    /// the service's end-to-end determinism gate.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"spec\": {},\n  \"points\": [\n",
            self.spec.to_json()
        );
        for (i, p) in self.points.iter().enumerate() {
            let digest = fnv64(format!("{:#?}", p.result).as_bytes());
            let _ = write!(
                out,
                "    {{ \"workload\": \"{}\", \"scheduler\": \"{}\", \"batch_size\": {}, \"n_xcts\": {}, \"events\": {}, \"instructions\": {}, \"total_cycles\": {}, \"avg_latency_cycles\": {}, \"l1i_mpki\": {}, \"l1d_mpki\": {}, \"llc_mpki\": {}, \"switches_per_ki\": {}, \"overhead_fraction\": {}, \"htm_aborts\": {}, \"htm_abort_rate\": {}, \"htm_fallbacks\": {}, \"result_fnv64\": \"{:016x}\" }}{}",
                escape(p.benchmark.name()),
                escape(p.scheduler.name()),
                p.batch_size
                    .map_or_else(|| "null".to_owned(), |b| b.to_string()),
                p.result.n_xcts,
                p.events,
                p.result.instructions,
                p.result.total_cycles,
                p.result.avg_latency_cycles,
                p.result.stats.l1i_mpki(),
                p.result.stats.l1d_mpki(),
                p.result.stats.llc_mpki(),
                p.result.stats.switches_per_ki(),
                p.result.overhead_fraction(),
                p.result.spec.aborts(),
                p.result.spec.abort_rate(),
                p.result.spec.fallbacks,
                digest,
                if i + 1 < self.points.len() { ",\n" } else { "\n" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One row of a rendered result table (what `addict-cli` prints).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Workload display name.
    pub workload: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// Batch-size override, if any.
    pub batch_size: Option<usize>,
    /// Events replayed.
    pub events: u64,
    /// Simulated makespan.
    pub total_cycles: f64,
    /// L1-I misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// Context switches per kilo-instruction.
    pub switches_per_ki: f64,
}

/// Parse the summary rows back out of a serialized [`JobResult`] — the
/// client side of the protocol (render a table without re-running
/// anything).
pub fn summary_rows(result_json: &str) -> Result<Vec<SummaryRow>, SpecError> {
    let doc = JsonValue::parse(result_json).map_err(|e| SpecError::new("result", e))?;
    let points = doc
        .get("points")
        .ok_or_else(|| SpecError::new("result", "result is missing \"points\""))?
        .as_arr("points")
        .map_err(|e| SpecError::new("result", e))?;
    points
        .iter()
        .map(|p| {
            let field = |name: &str| {
                p.get(name)
                    .ok_or_else(|| SpecError::new("result", format!("point missing {name:?}")))
            };
            Ok(SummaryRow {
                workload: field("workload")?
                    .as_str("workload")
                    .map_err(|e| SpecError::new("result", e))?
                    .to_owned(),
                scheduler: field("scheduler")?
                    .as_str("scheduler")
                    .map_err(|e| SpecError::new("result", e))?
                    .to_owned(),
                batch_size: match field("batch_size")? {
                    JsonValue::Null => None,
                    v => Some(
                        v.as_u64("batch_size")
                            .map_err(|e| SpecError::new("result", e))?
                            as usize,
                    ),
                },
                events: field("events")?
                    .as_u64("events")
                    .map_err(|e| SpecError::new("result", e))?,
                total_cycles: field("total_cycles")?
                    .as_f64("total_cycles")
                    .map_err(|e| SpecError::new("result", e))?,
                l1i_mpki: field("l1i_mpki")?
                    .as_f64("l1i_mpki")
                    .map_err(|e| SpecError::new("result", e))?,
                switches_per_ki: field("switches_per_ki")?
                    .as_f64("switches_per_ki")
                    .map_err(|e| SpecError::new("result", e))?,
            })
        })
        .collect()
}

/// Block-granular events in an interned workload without flattening it
/// (a million-transaction set never materializes flat). Each distinct
/// pool slice is expanded once and memoized.
pub fn total_events_interned(iw: &InternedWorkload) -> u64 {
    let mut per_slice: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    iw.xcts
        .iter()
        .flat_map(|t| t.slice_refs().iter())
        .map(|&r| {
            *per_slice.entry((r.pool_idx, r.len)).or_insert_with(|| {
                iw.pool
                    .resolve(r)
                    .iter()
                    .map(|e| match e {
                        TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
                        _ => 1,
                    })
                    .sum()
            })
        })
        .sum()
}

/// Execute `spec` against `pool`, reporting progress lines through
/// `progress` (called from worker threads; the callback must tolerate
/// concurrent invocation — the server serializes writes with a lock).
///
/// The executor is the shared code path of the batch binaries and the
/// server: traces come from the trace-pool cache (hit or generate), the
/// ADDICT migration map from Algorithm 1 over the cached profile set,
/// and the grid fans out through [`run_grid`] on `spec.threads` workers.
/// The returned result's serialized form depends only on the spec —
/// never on cache state, thread count, or timing.
pub fn run_job(
    spec: &JobSpec,
    pool: &TracePool,
    progress: &(dyn Fn(&str) + Sync),
) -> Result<JobResult, SpecError> {
    match run_job_with(spec, pool, progress, &CancelToken::new()) {
        Ok(r) => Ok(r),
        Err(JobError::Spec(e)) => Err(e),
        // A fresh private token never fires.
        Err(JobError::Interrupted(i)) => unreachable!("un-armed token fired: {i:?}"),
    }
}

/// [`run_job`] under a cooperative [`CancelToken`]: the token is polled
/// between trace fetches and between sweep points, so a cancellation or
/// an expired deadline stops the job at the next point boundary — the
/// server's `DELETE /jobs/<id>` and `deadline_ms` paths. On interrupt
/// the partially-executed grid is discarded (results are all-or-nothing:
/// a partial grid would serialize differently from the same spec run to
/// completion, breaking byte-identity) and the trace-pool `Arc` pins
/// drop with this frame.
pub fn run_job_with(
    spec: &JobSpec,
    pool: &TracePool,
    progress: &(dyn Fn(&str) + Sync),
    token: &CancelToken,
) -> Result<JobResult, JobError> {
    spec.validate()?;
    let cfg = ReplayConfig::paper_default();

    struct Traces {
        eval: std::sync::Arc<InternedWorkload>,
        map: MigrationMap,
        events: u64,
    }
    let mut sets: Vec<Traces> = Vec::with_capacity(spec.benchmarks.len());
    for &bench in &spec.benchmarks {
        // Generation is the expensive phase: poll before committing to
        // each range so a cancelled job never starts another engine
        // population (an in-flight generation finishes — it may be
        // shared with concurrent jobs via the pool's pending slot).
        token.check().map_err(JobError::Interrupted)?;
        let (profile, profile_hit) = pool.get(&spec.profile_key(bench), spec.threads);
        token.check().map_err(JobError::Interrupted)?;
        let (eval, eval_hit) = pool.get(&spec.eval_key(bench), spec.threads);
        progress(&format!(
            "traces {}: profile {} | eval {}",
            bench.id(),
            if profile_hit {
                "cache hit"
            } else {
                "generated"
            },
            if eval_hit { "cache hit" } else { "generated" },
        ));
        let map = find_migration_points_interned(profile.as_set(), cfg.sim.l1i);
        let events = total_events_interned(&eval);
        sets.push(Traces { eval, map, events });
    }

    let shape = spec.grid_shape();
    let grid: Vec<SweepPoint<'_>> = shape
        .iter()
        .map(|&(bi, scheduler, batch)| SweepPoint {
            benchmark: spec.benchmarks[bi],
            scheduler,
            replay_cfg: match batch {
                Some(b) => cfg.clone().with_batch_size(b),
                None => cfg.clone(),
            },
            label: "job",
            traces: SweepTraces::Interned(sets[bi].eval.as_set()),
            map: Some(&sets[bi].map),
        })
        .collect();

    let total = grid.len();
    let done = AtomicUsize::new(0);
    let timed: Vec<Option<(f64, ReplayResult)>> =
        run_grid_abortable(&grid, spec.threads, &|| token.check().is_err(), |i, p| {
            let t = Instant::now();
            let r = run_point(p);
            let seconds = t.elapsed().as_secs_f64();
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            progress(&format!(
                "point {finished}/{total} {} in {seconds:.3}s",
                p.describe()
            ));
            let _ = i;
            (seconds, r)
        });
    if timed.iter().any(Option::is_none) {
        // At least one point was skipped by the abort probe: report why.
        let interrupt = token.check().expect_err("aborted grid with a quiet token");
        return Err(JobError::Interrupted(interrupt));
    }

    let points = shape
        .into_iter()
        .zip(timed)
        .map(|((bi, scheduler, batch), timed)| {
            let (seconds, result) = timed.expect("checked above");
            JobPoint {
                benchmark: spec.benchmarks[bi],
                scheduler,
                batch_size: batch,
                events: sets[bi].events,
                seconds,
                result,
            }
        })
        .collect();
    Ok(JobResult {
        spec: spec.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(vec![Benchmark::TpcB, Benchmark::Tatp], 60);
        s.schedulers = vec![SchedulerKind::Baseline, SchedulerKind::Addict];
        s.threads = 2;
        s.batch_sizes = vec![2, 16];
        s.chunk = 7;
        s.small = true;
        s.seed = 5;
        s
    }

    #[test]
    fn spec_json_round_trips() {
        let s = spec();
        assert_eq!(JobSpec::from_json(&s.to_json()).unwrap(), s);
        // Defaults round-trip too.
        let d = JobSpec::new(vec![Benchmark::TpcC], 400);
        assert_eq!(JobSpec::from_json(&d.to_json()).unwrap(), d);
        // Whitespace and field order are free; omitted fields default.
        let loose = JobSpec::from_json(
            " {\n  \"n_xcts\": 60 ,\n  \"benchmarks\": [\"TPC-B\", \"tatp\"]\n } ",
        )
        .unwrap();
        assert_eq!(loose.benchmarks, vec![Benchmark::TpcB, Benchmark::Tatp]);
        assert_eq!(loose.n_xcts, 60);
        assert_eq!(loose.schedulers, SchedulerKind::ALL.to_vec());
        assert_eq!(loose.threads, 1);
        assert_eq!(loose.seed, EVAL_SEED);
    }

    /// Duplicate list entries collapse at the structured entry points:
    /// the deduped spec's grid — and so the admission controller's
    /// reserved-bytes estimate — matches the spec with each entry listed
    /// once, in first-occurrence order.
    #[test]
    fn spec_json_dedupes_repeated_list_entries() {
        let dup = JobSpec::from_json(
            "{\"benchmarks\":[\"tatp\",\"tpcb\",\"tatp\",\"tpcb\",\"tatp\"],\
             \"schedulers\":[\"addict\",\"baseline\",\"addict\"],\
             \"batch_sizes\":[4,8,4],\"n_xcts\":60}",
        )
        .unwrap();
        assert_eq!(dup.benchmarks, vec![Benchmark::Tatp, Benchmark::TpcB]);
        assert_eq!(
            dup.schedulers,
            vec![SchedulerKind::Addict, SchedulerKind::Baseline]
        );
        assert_eq!(dup.batch_sizes, vec![4, 8]);
        let once = JobSpec::from_json(
            "{\"benchmarks\":[\"tatp\",\"tpcb\"],\
             \"schedulers\":[\"addict\",\"baseline\"],\
             \"batch_sizes\":[4,8],\"n_xcts\":60}",
        )
        .unwrap();
        assert_eq!(dup, once);
        assert_eq!(dup.grid_shape(), once.grid_shape());
        // The CLI surface normalizes identically.
        let argv: Vec<String> = ["job", "--xcts", "60", "--benchmarks", "tatp,tatp,tpcb,tatp"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let s = JobSpec::from_args(&argv, 60).unwrap();
        assert_eq!(s.benchmarks, vec![Benchmark::Tatp, Benchmark::TpcB]);
    }

    #[test]
    fn spec_json_rejects_malformed_jobs() {
        // The structured-rejection satellite: zero/absent counts, empty
        // benchmark lists, unknown names and fields are all explicit
        // errors tagged with the offending field.
        for (doc, field) in [
            ("{\"benchmarks\":[\"tpcb\"],\"n_xcts\":0}", "n_xcts"),
            ("{\"benchmarks\":[\"tpcb\"]}", "n_xcts"),
            ("{\"n_xcts\":60}", "benchmarks"),
            ("{\"benchmarks\":[],\"n_xcts\":60}", "benchmarks"),
            ("{\"benchmarks\":[\"tpcz\"],\"n_xcts\":60}", "benchmarks"),
            (
                "{\"benchmarks\":[\"tpcb\"],\"n_xcts\":60,\"threads\":0}",
                "threads",
            ),
            (
                "{\"benchmarks\":[\"tpcb\"],\"n_xcts\":60,\"schedulers\":[]}",
                "schedulers",
            ),
            (
                "{\"benchmarks\":[\"tpcb\"],\"n_xcts\":60,\"batch_sizes\":[0]}",
                "batch_sizes",
            ),
            (
                "{\"benchmarks\":[\"tpcb\"],\"n_xcts\":60,\"xcts\":9}",
                "spec",
            ),
            ("[1,2]", "spec"),
            ("not json", "spec"),
        ] {
            let err = JobSpec::from_json(doc).unwrap_err();
            assert_eq!(err.field, field, "{doc} gave {err:?}");
        }
    }

    #[test]
    fn from_args_matches_flag_surface() {
        let argv = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        let s = JobSpec::from_args(
            &argv(&[
                "job",
                "--xcts",
                "200",
                "--threads",
                "3",
                "--benchmarks",
                "tatp",
            ]),
            600,
        )
        .unwrap();
        assert_eq!(s.n_xcts, 200);
        assert_eq!(s.threads, 3);
        assert_eq!(s.benchmarks, vec![Benchmark::Tatp]);
        assert_eq!(s.schedulers, SchedulerKind::ALL.to_vec());
        // The same strictness as the bench binaries, same error type.
        let err = JobSpec::from_args(&argv(&["job", "--xcts", "0"]), 600).unwrap_err();
        assert_eq!(err.field, "xcts");
        let err = JobSpec::from_args(&argv(&["job", "--threads", "zap"]), 600).unwrap_err();
        assert_eq!(err.field, "threads");
    }

    #[test]
    fn grid_shape_enumerates_benchmark_major() {
        let s = spec();
        let shape = s.grid_shape();
        assert_eq!(shape.len(), 2 * 2 * 2);
        assert_eq!(shape[0], (0, SchedulerKind::Baseline, Some(2)));
        assert_eq!(shape[1], (0, SchedulerKind::Baseline, Some(16)));
        assert_eq!(shape[4], (1, SchedulerKind::Baseline, Some(2)));
        let mut d = JobSpec::new(vec![Benchmark::TpcB], 10);
        d.schedulers = vec![SchedulerKind::Slicc];
        assert_eq!(d.grid_shape(), vec![(0, SchedulerKind::Slicc, None)]);
    }

    #[test]
    fn cancel_token_is_sticky_and_orders_cancel_over_deadline() {
        let t = CancelToken::new();
        assert_eq!(t.check(), Ok(()));
        t.arm_deadline_ms(0); // explicit zero = no deadline
        assert_eq!(t.check(), Ok(()));
        t.arm_deadline_ms(60_000);
        assert_eq!(t.check(), Ok(()));
        t.cancel();
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
        // Sticky: still cancelled on re-poll, and cancellation wins even
        // once the deadline also expires.
        assert_eq!(t.check(), Err(Interrupt::Cancelled));

        let d = CancelToken::new();
        d.arm_deadline_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(d.check(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(d.check(), Err(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn cancelled_job_stops_before_generating() {
        use crate::cache::TracePool;
        let mut s = JobSpec::new(vec![Benchmark::TpcB], 8);
        s.small = true;
        let pool = TracePool::unbounded();
        let token = CancelToken::new();
        token.cancel();
        let lines = Mutex::new(Vec::<String>::new());
        let progress = |l: &str| lines.lock().unwrap().push(l.to_owned());
        let err = run_job_with(&s, &pool, &progress, &token).unwrap_err();
        assert_eq!(err, JobError::Interrupted(Interrupt::Cancelled));
        // Nothing generated, nothing replayed, nothing pinned.
        let stats = pool.stats();
        assert_eq!((stats.misses, stats.generations), (0, 0));
        assert_eq!(stats.pinned_entries, 0);
        assert!(lines.lock().unwrap().is_empty());

        // An expired deadline reports as DeadlineExceeded, not Cancelled.
        let t2 = CancelToken::new();
        t2.arm_deadline_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let err = run_job_with(&s, &pool, &progress, &t2).unwrap_err();
        assert_eq!(err, JobError::Interrupted(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn deadline_ms_round_trips_and_stays_out_of_points() {
        use crate::cache::TracePool;
        let mut s = JobSpec::new(vec![Benchmark::TpcB], 12);
        s.small = true;
        s.deadline_ms = 30_000;
        assert_eq!(JobSpec::from_json(&s.to_json()).unwrap(), s);
        // A generous deadline changes nothing about the replayed points
        // (it is an execution knob, not a result input).
        let pool = TracePool::unbounded();
        let quiet = |_: &str| {};
        let with = run_job(&s, &pool, &quiet).unwrap();
        let mut bare = s.clone();
        bare.deadline_ms = 0;
        let without = run_job(&bare, &pool, &quiet).unwrap();
        let points = |j: &JobResult| {
            let json = j.to_json();
            let at = json.find("\"points\"").expect("points section");
            json[at..].to_owned()
        };
        assert_eq!(points(&with), points(&without));
        // Malformed deadlines are structured errors.
        let err =
            JobSpec::from_json("{\"benchmarks\":[\"tpcb\"],\"n_xcts\":8,\"deadline_ms\":\"soon\"}")
                .unwrap_err();
        assert_eq!(err.field, "deadline_ms");
    }

    #[test]
    fn job_runs_and_serializes_deterministically() {
        use crate::cache::TracePool;
        let mut s = JobSpec::new(vec![Benchmark::TpcB], 12);
        s.small = true;
        s.threads = 2;
        let pool = TracePool::unbounded();
        let quiet = |_: &str| {};
        let a = run_job(&s, &pool, &quiet).unwrap();
        // A repeat on a warm pool and a cold pool serialize identically:
        // the result is a pure function of the spec.
        let b = run_job(&s, &pool, &quiet).unwrap();
        let cold = TracePool::unbounded();
        let mut s1 = s.clone();
        s1.threads = 1;
        let c = run_job(&s1, &cold, &quiet).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        // Across thread counts, the replayed points are byte-identical
        // (threads is a latency knob); only the echoed spec differs.
        let points = |j: &JobResult| {
            let json = j.to_json();
            let at = json.find("\"points\"").expect("points section");
            json[at..].to_owned()
        };
        assert_eq!(points(&a), points(&c), "thread count leaked into points");
        assert_eq!(a.points.len(), SchedulerKind::ALL.len());
        // And the summary parses back out.
        let rows = summary_rows(&a.to_json()).unwrap();
        assert_eq!(rows.len(), SchedulerKind::ALL.len());
        assert_eq!(rows[0].workload, "TPC-B");
        assert_eq!(rows[0].scheduler, "Baseline");
        assert!(rows.iter().all(|r| r.total_cycles > 0.0));
    }
}
