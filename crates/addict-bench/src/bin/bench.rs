//! `bench`: the replay-throughput trajectory artifact.
//!
//! For every selected benchmark (`--benchmarks`, default: the whole
//! registry — the TPC trio plus the spec-driven TATP and YCSB mixes),
//! replays the evaluation traces under all four schedulers, timing four
//! modes against each other:
//!
//! * **flat** — per-block, per-event execution over flat
//!   `Vec<TraceEvent>` traces (the reference path),
//! * **segment** — the segment-granular instruction fast path (PR 1),
//! * **data_run** — segment-granular instructions **plus** run-granular
//!   data: consecutive data accesses execute whole inside the machine,
//!   private leading hits consumed without a coherence-directory
//!   transaction (PR 5),
//! * **interned** — both fast paths over the arena-backed
//!   [`InternedWorkload`] form, whose deduplicated `SlicePool` holds each
//!   distinct event slice once (PR 3),
//!
//! then times the **full (benchmark × scheduler) grid** through the sweep
//! engine at one thread vs `--threads N`, with the interned grid sharing
//! one `Arc`'d pool per workload. Writes `BENCH_5.json` with events/sec
//! and sim-cycles/sec per workload, scheduler, and mode, the trace-memory
//! footprint (flat vs interned resident bytes, pool dedup ratio), and the
//! parallel-sweep wall times + speedup.
//!
//! Determinism guards run on every invocation (CI's `--smoke` included)
//! and can fail the process:
//! * flat, segment, **data_run**, and **interned** execution must produce
//!   bit-identical simulation output (a speedup can never be bought with
//!   accuracy) — the `data-run-equivalence` CI gate, and
//! * the 1-thread and N-thread sweeps must produce bit-identical
//!   per-scheduler `MachineStats` and makespans (parallelism can never
//!   change a result) — for the spec-driven workloads exactly as for the
//!   handwritten ones.
//!
//! Usage: `cargo run --release --bin bench -- [n_xcts] [out.json]
//! [--threads N] [--benchmarks tpcb,tatp,...] [--smoke]` (defaults: 400
//! transactions, `BENCH_5.json`; `--smoke` is the CI-sized run: 60
//! transactions, one rep, `bench_smoke.json`).

use std::fmt::Write as _;
use std::time::Instant;

use addict_bench::{
    generate, migration_map, parse_bench_args, profile_eval_ranges, run_grid, run_point, run_sweep,
    GenRange, SweepPoint, SweepTraces,
};
use addict_core::algorithm1::MigrationMap;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{InternedWorkload, TraceEvent, WorkloadTrace, XctTrace};
use addict_workloads::Benchmark;

/// Block-granular events in a trace set (instruction runs expanded).
fn total_events(traces: &[XctTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
            _ => 1,
        })
        .sum()
}

struct ModeTiming {
    seconds: f64,
    events_per_sec: f64,
    sim_cycles_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheduler/mode, timed sequentially on
/// the calling thread (per-scheduler throughput must not be polluted by
/// concurrent runs contending for the host's cores).
fn time_mode(
    run: impl Fn() -> ReplayResult,
    events: u64,
    reps: usize,
) -> (ModeTiming, ReplayResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run();
        let s = t.elapsed().as_secs_f64();
        if s < best {
            best = s;
        }
        result = Some(r);
    }
    let result = result.expect("reps >= 1");
    let timing = ModeTiming {
        seconds: best,
        events_per_sec: events as f64 / best,
        sim_cycles_per_sec: result.total_cycles / best,
    };
    (timing, result)
}

fn json_mode(out: &mut String, label: &str, t: &ModeTiming) {
    let _ = write!(
        out,
        "        \"{label}\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"sim_cycles_per_sec\": {:.1} }}",
        t.seconds, t.events_per_sec, t.sim_cycles_per_sec
    );
}

/// Assert two replays produced bit-identical simulation output.
fn assert_identical(a: &ReplayResult, b: &ReplayResult, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(
        a.total_cycles.to_bits(),
        b.total_cycles.to_bits(),
        "{what}: makespan diverged"
    );
    assert_eq!(a.latencies.len(), b.latencies.len(), "{what}");
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: latency diverged");
    }
}

/// One benchmark's prepared replay inputs.
struct Prepared {
    bench: Benchmark,
    eval: WorkloadTrace,
    interned: InternedWorkload,
    map: MigrationMap,
    events: u64,
}

fn main() {
    let args = parse_bench_args(400);
    let n = args.n_xcts;
    let out_path = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            "bench_smoke.json".to_owned()
        } else {
            "BENCH_5.json".to_owned()
        }
    });
    // Best-of-N per mode: this container is a single shared core whose
    // attainable throughput drifts on minute timescales, so each mode
    // samples a wide window and keeps its fastest rep.
    let reps = if args.smoke { 1 } else { 15 };
    let cfg = ReplayConfig::paper_default();
    let bench_names: Vec<&str> = args.benchmarks.iter().map(|b| b.name()).collect();

    eprintln!(
        "bench: generating {n}+{n} traces for {} on {} thread(s)...",
        bench_names.join(", "),
        args.threads
    );
    // All (benchmark × profile/eval) ranges generate in one parallel wave
    // (one private storage engine per worker).
    let ranges: Vec<GenRange> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let mut generated = generate(&ranges, args.threads).into_iter();
    let prepared: Vec<Prepared> = args
        .benchmarks
        .iter()
        .map(|&bench| {
            let profile = generated.next().expect("one profile range per benchmark");
            let eval = generated.next().expect("one eval range per benchmark");
            let interned = InternedWorkload::from_flat(&eval);
            let map = migration_map(&profile, &cfg);
            let events = total_events(&eval.xcts);
            Prepared {
                bench,
                eval,
                interned,
                map,
                events,
            }
        })
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"artifact\": \"BENCH_5\",\n  \"n_xcts\": {n},\n  \"n_cores\": {},\n  \"reps_best_of\": {reps},\n  \"workloads\": [\n",
        cfg.sim.n_cores
    );

    // Per-workload, per-scheduler mode timings with the flat/segment/
    // data_run/interned equivalence guards. The stored results come from
    // the data_run mode — the same configuration the sweep below runs —
    // and anchor its bit-identity assert.
    let mut reference_results: Vec<Vec<ReplayResult>> = Vec::new();
    for (wi, p) in prepared.iter().enumerate() {
        let footprint = p.interned.footprint();
        eprintln!(
            "bench: {} — {} eval transactions, {} block-granular events; trace bytes {} flat -> {} interned ({:.2}x smaller; dedup {:.1}x over {} unique slices)",
            p.bench.name(),
            p.eval.xcts.len(),
            p.events,
            footprint.flat_bytes,
            footprint.resident_bytes(),
            footprint.reduction(),
            footprint.dedup_ratio(),
            footprint.unique_slices
        );
        let _ = write!(
            out,
            "  {{\n    \"workload\": \"{}\",\n    \"n_xcts\": {},\n    \"events\": {},\n",
            p.bench.name(),
            p.eval.xcts.len(),
            p.events
        );
        let _ = write!(
            out,
            "    \"trace_memory\": {{\n      \"flat_bytes\": {},\n      \"interned_resident_bytes\": {},\n      \"pool_bytes\": {},\n      \"per_trace_bytes\": {},\n      \"reduction\": {:.3},\n      \"unique_slices\": {},\n      \"slices_interned\": {},\n      \"dedup_ratio\": {:.2}\n    }},\n    \"schedulers\": [\n",
            footprint.flat_bytes,
            footprint.resident_bytes(),
            footprint.pool_bytes,
            footprint.trace_bytes,
            footprint.reduction(),
            footprint.unique_slices,
            footprint.slices_interned,
            footprint.dedup_ratio()
        );

        let iset = p.interned.as_set();
        let mut run_results = Vec::new();
        for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
            // The reference path disables both fast paths; `segment` adds
            // instruction runs; `data_run` adds data runs on top; the
            // interned mode runs with both (the production configuration).
            let flat_cfg = ReplayConfig {
                segment_exec: false,
                data_run_exec: false,
                ..cfg.clone()
            };
            let seg_cfg = ReplayConfig {
                segment_exec: true,
                data_run_exec: false,
                ..cfg.clone()
            };
            let run_cfg = ReplayConfig {
                segment_exec: true,
                data_run_exec: true,
                ..cfg.clone()
            };
            // Warm up caches/allocator before timing.
            let _ = run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &run_cfg);
            let (flat_t, flat_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &flat_cfg),
                p.events,
                reps,
            );
            let (seg_t, seg_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &seg_cfg),
                p.events,
                reps,
            );
            let (run_t, run_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &run_cfg),
                p.events,
                reps,
            );
            let (int_t, int_r) = time_mode(
                || run_scheduler(*kind, &iset, Some(&p.map), &run_cfg),
                p.events,
                reps,
            );

            // Equivalence guards: no fast path may change the simulation,
            // on spec-driven workloads exactly as on the trio. The
            // data_run assert is CI's `data-run-equivalence` gate.
            let what = |path| format!("{}/{}: {path} path", p.bench.name(), kind.name());
            assert_identical(&seg_r, &flat_r, &what("segment"));
            assert_identical(&run_r, &flat_r, &what("data_run"));
            assert_identical(&int_r, &flat_r, &what("interned"));

            let speedup = flat_t.seconds / seg_t.seconds;
            let run_speedup = flat_t.seconds / run_t.seconds;
            let int_speedup = flat_t.seconds / int_t.seconds;
            eprintln!(
                "bench: {:<6} {:<9} flat {:>9.0} ev/s | segment {:>9.0} ev/s | data_run {:>9.0} ev/s | interned {:>9.0} ev/s | data_run speedup {:.2}x",
                p.bench.name(),
                kind.name(),
                flat_t.events_per_sec,
                seg_t.events_per_sec,
                run_t.events_per_sec,
                int_t.events_per_sec,
                run_speedup
            );

            let _ = write!(
                out,
                "      {{\n        \"scheduler\": \"{}\",\n        \"instructions\": {},\n        \"total_sim_cycles\": {:.1},\n",
                kind.name(),
                run_r.instructions,
                run_r.total_cycles
            );
            json_mode(&mut out, "flat", &flat_t);
            out.push_str(",\n");
            json_mode(&mut out, "segment", &seg_t);
            out.push_str(",\n");
            json_mode(&mut out, "data_run", &run_t);
            out.push_str(",\n");
            json_mode(&mut out, "interned", &int_t);
            let _ = write!(
                out,
                ",\n        \"segment_speedup\": {speedup:.3},\n        \"data_run_speedup\": {run_speedup:.3},\n        \"interned_speedup\": {int_speedup:.3}\n      }}"
            );
            out.push_str(if i + 1 < SchedulerKind::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
            run_results.push(run_r);
        }
        out.push_str("    ]\n  }");
        out.push_str(if wi + 1 < prepared.len() { ",\n" } else { "\n" });
        reference_results.push(run_results);
    }
    out.push_str("  ],\n");

    // Parallel-sweep scaling: the full (benchmark × scheduler) grid
    // through the sweep engine, sequential vs `--threads N`, on the
    // **interned** traces — each workload's points borrow its Arc'd pool,
    // so N workers replay out of read-only arenas. Bit-identical checks
    // against both the 1-thread sweep and the sequentially timed flat
    // runs above.
    let grid: Vec<SweepPoint<'_>> = prepared
        .iter()
        .flat_map(|p| {
            SchedulerKind::ALL.iter().map(|&scheduler| SweepPoint {
                benchmark: p.bench,
                scheduler,
                replay_cfg: cfg.clone(),
                label: "interned-grid",
                traces: SweepTraces::Interned(p.interned.as_set()),
                map: Some(&p.map),
            })
        })
        .collect();
    let t = Instant::now();
    let seq = run_sweep(&grid, 1);
    let seq_seconds = t.elapsed().as_secs_f64();
    // The parallel leg times each point inside its worker, so the artifact
    // records per-scheduler throughput *as achieved under the sweep* (on a
    // contended host this is lower than the isolated timings above — that
    // contention is exactly what the artifact should show).
    let t = Instant::now();
    let timed_par: Vec<(f64, ReplayResult)> = run_grid(&grid, args.threads, |_, p| {
        let t = Instant::now();
        let r = run_point(p);
        (t.elapsed().as_secs_f64(), r)
    });
    let par_seconds = t.elapsed().as_secs_f64();
    let references = reference_results.iter().flatten();
    for (((point, s), (_, par)), reference) in grid.iter().zip(&seq).zip(&timed_par).zip(references)
    {
        assert_identical(s, par, &format!("{}: parallel sweep", point.describe()));
        assert_eq!(
            s.stats,
            reference.stats,
            "{}: interned sweep drifted from direct flat run",
            point.describe()
        );
    }
    let sweep_speedup = seq_seconds / par_seconds;
    eprintln!(
        "bench: interned sweep grid ({} points over {} workloads) {:.3}s at 1 thread | {:.3}s at {} threads | speedup {:.2}x | results bit-identical to flat",
        grid.len(),
        prepared.len(),
        seq_seconds,
        par_seconds,
        args.threads,
        sweep_speedup
    );
    let _ = write!(
        out,
        "  \"sweep\": {{\n    \"points\": {},\n    \"traces\": \"interned (one shared pool per workload)\",\n    \"threads\": {},\n    \"seq_seconds\": {seq_seconds:.6},\n    \"par_seconds\": {par_seconds:.6},\n    \"parallel_speedup\": {sweep_speedup:.3},\n    \"bit_identical\": true,\n    \"per_point\": [\n",
        grid.len(),
        args.threads
    );
    for (i, (point, (secs, _))) in grid.iter().zip(&timed_par).enumerate() {
        let events = prepared[i / SchedulerKind::ALL.len()].events;
        let _ = write!(
            out,
            "      {{ \"workload\": \"{}\", \"scheduler\": \"{}\", \"seconds\": {secs:.6}, \"events_per_sec\": {:.1} }}{}",
            point.benchmark.name(),
            point.scheduler.name(),
            events as f64 / secs,
            if i + 1 < timed_par.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  }\n}\n");

    std::fs::write(&out_path, out).expect("write benchmark artifact");
    eprintln!("bench: wrote {out_path}");
}
