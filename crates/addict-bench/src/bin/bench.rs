//! `bench`: the replay-throughput trajectory artifact.
//!
//! Replays the TPC-C evaluation traces under all four schedulers, timing
//! three modes against each other:
//!
//! * **flat** — per-block execution over flat `Vec<TraceEvent>` traces,
//! * **segment** — the segment-granular fast path (PR 1),
//! * **interned** — segment-granular replay over the arena-backed
//!   [`InternedWorkload`] form, whose deduplicated `SlicePool` holds each
//!   distinct event slice once (PR 3),
//!
//! then times the **full scheduler grid** through the sweep engine at one
//! thread vs `--threads N`, with the interned grid sharing one `Arc`'d
//! pool across all points. Writes `BENCH_3.json` with events/sec and
//! sim-cycles/sec per scheduler and mode, the trace-memory footprint
//! (flat vs interned resident bytes, pool dedup ratio), and the
//! parallel-sweep wall times + speedup.
//!
//! Determinism guards run on every invocation (CI's `--smoke` included)
//! and can fail the process:
//! * flat, segment, and **interned** execution must produce bit-identical
//!   simulation output (a speedup can never be bought with accuracy), and
//! * the 1-thread and N-thread sweeps must produce bit-identical
//!   per-scheduler `MachineStats` and makespans (parallelism can never
//!   change a result).
//!
//! Usage: `cargo run --release --bin bench -- [n_xcts] [out.json]
//! [--threads N] [--smoke]` (defaults: 400 transactions, `BENCH_3.json`;
//! `--smoke` is the CI-sized run: 60 transactions, one rep,
//! `bench_smoke.json`).

use std::fmt::Write as _;
use std::time::Instant;

use addict_bench::{
    migration_map, parse_bench_args, profile_and_eval_on, run_grid, run_point, run_sweep,
    SweepPoint, SweepTraces,
};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{InternedWorkload, TraceEvent, XctTrace};
use addict_workloads::Benchmark;

/// Block-granular events in a trace set (instruction runs expanded).
fn total_events(traces: &[XctTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
            _ => 1,
        })
        .sum()
}

struct ModeTiming {
    seconds: f64,
    events_per_sec: f64,
    sim_cycles_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheduler/mode, timed sequentially on
/// the calling thread (per-scheduler throughput must not be polluted by
/// concurrent runs contending for the host's cores).
fn time_mode(
    run: impl Fn() -> ReplayResult,
    events: u64,
    reps: usize,
) -> (ModeTiming, ReplayResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run();
        let s = t.elapsed().as_secs_f64();
        if s < best {
            best = s;
        }
        result = Some(r);
    }
    let result = result.expect("reps >= 1");
    let timing = ModeTiming {
        seconds: best,
        events_per_sec: events as f64 / best,
        sim_cycles_per_sec: result.total_cycles / best,
    };
    (timing, result)
}

fn json_mode(out: &mut String, label: &str, t: &ModeTiming) {
    let _ = write!(
        out,
        "    \"{label}\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"sim_cycles_per_sec\": {:.1} }}",
        t.seconds, t.events_per_sec, t.sim_cycles_per_sec
    );
}

/// Assert two replays produced bit-identical simulation output.
fn assert_identical(a: &ReplayResult, b: &ReplayResult, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(
        a.total_cycles.to_bits(),
        b.total_cycles.to_bits(),
        "{what}: makespan diverged"
    );
    assert_eq!(a.latencies.len(), b.latencies.len(), "{what}");
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: latency diverged");
    }
}

fn main() {
    let args = parse_bench_args(400);
    let n = args.n_xcts;
    let out_path = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            "bench_smoke.json".to_owned()
        } else {
            "BENCH_3.json".to_owned()
        }
    });
    // Best-of-N per mode: this container is a single shared core whose
    // attainable throughput drifts on minute timescales, so each mode
    // samples a wide window and keeps its fastest rep.
    let reps = if args.smoke { 1 } else { 15 };

    eprintln!(
        "bench: generating {n}+{n} TPC-C traces on {} thread(s)...",
        args.threads
    );
    let (profile, eval) = profile_and_eval_on(Benchmark::TpcC, n, n, args.threads);
    let interned = InternedWorkload::from_flat(&eval);
    let iset = interned.as_set();
    let cfg = ReplayConfig::paper_default();
    let map = migration_map(&profile, &cfg);
    let events = total_events(&eval.xcts);
    let footprint = interned.footprint();
    eprintln!(
        "bench: {} eval transactions, {} block-granular events, {} cores, {} sweep threads",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores,
        args.threads
    );
    eprintln!(
        "bench: trace bytes {} flat -> {} interned ({:.2}x smaller; pool dedup {:.1}x over {} unique slices)",
        footprint.flat_bytes,
        footprint.resident_bytes(),
        footprint.reduction(),
        footprint.dedup_ratio(),
        footprint.unique_slices
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"artifact\": \"BENCH_3\",\n  \"workload\": \"TPC-C\",\n  \"n_xcts\": {},\n  \"events\": {},\n  \"n_cores\": {},\n  \"reps_best_of\": {reps},\n",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores
    );
    let _ = write!(
        out,
        "  \"trace_memory\": {{\n    \"flat_bytes\": {},\n    \"interned_resident_bytes\": {},\n    \"pool_bytes\": {},\n    \"per_trace_bytes\": {},\n    \"reduction\": {:.3},\n    \"unique_slices\": {},\n    \"slices_interned\": {},\n    \"dedup_ratio\": {:.2}\n  }},\n  \"schedulers\": [\n",
        footprint.flat_bytes,
        footprint.resident_bytes(),
        footprint.pool_bytes,
        footprint.trace_bytes,
        footprint.reduction(),
        footprint.unique_slices,
        footprint.slices_interned,
        footprint.dedup_ratio()
    );

    let mut segment_results: Vec<ReplayResult> = Vec::new();
    for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
        let flat_cfg = ReplayConfig {
            segment_exec: false,
            ..cfg.clone()
        };
        let seg_cfg = ReplayConfig {
            segment_exec: true,
            ..cfg.clone()
        };
        // Warm up caches/allocator before timing.
        let _ = run_scheduler(*kind, &eval.xcts, Some(&map), &seg_cfg);
        let (flat_t, flat_r) = time_mode(
            || run_scheduler(*kind, &eval.xcts, Some(&map), &flat_cfg),
            events,
            reps,
        );
        let (seg_t, seg_r) = time_mode(
            || run_scheduler(*kind, &eval.xcts, Some(&map), &seg_cfg),
            events,
            reps,
        );
        let (int_t, int_r) = time_mode(
            || run_scheduler(*kind, &iset, Some(&map), &seg_cfg),
            events,
            reps,
        );

        // Equivalence guards: neither fast path may change the simulation.
        assert_identical(&seg_r, &flat_r, &format!("{}: segment path", kind.name()));
        assert_identical(&int_r, &flat_r, &format!("{}: interned path", kind.name()));

        let speedup = flat_t.seconds / seg_t.seconds;
        let int_speedup = flat_t.seconds / int_t.seconds;
        eprintln!(
            "bench: {:<9} flat {:>9.0} ev/s | segment {:>9.0} ev/s | interned {:>9.0} ev/s | interned speedup {:.2}x",
            kind.name(),
            flat_t.events_per_sec,
            seg_t.events_per_sec,
            int_t.events_per_sec,
            int_speedup
        );

        let _ = write!(
            out,
            "  {{\n    \"scheduler\": \"{}\",\n    \"instructions\": {},\n    \"total_sim_cycles\": {:.1},\n",
            kind.name(),
            seg_r.instructions,
            seg_r.total_cycles
        );
        json_mode(&mut out, "flat", &flat_t);
        out.push_str(",\n");
        json_mode(&mut out, "segment", &seg_t);
        out.push_str(",\n");
        json_mode(&mut out, "interned", &int_t);
        let _ = write!(
            out,
            ",\n    \"segment_speedup\": {speedup:.3},\n    \"interned_speedup\": {int_speedup:.3}\n  }}"
        );
        out.push_str(if i + 1 < SchedulerKind::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
        segment_results.push(seg_r);
    }
    out.push_str("  ],\n");

    // Parallel-sweep scaling: the full scheduler grid through the sweep
    // engine, sequential vs `--threads N`, on the **interned** traces —
    // every point borrows the same Arc'd pool, so N workers replay out of
    // one read-only arena. Bit-identical checks against both the 1-thread
    // sweep and the sequentially timed flat runs above.
    let grid: Vec<SweepPoint<'_>> = SchedulerKind::ALL
        .iter()
        .map(|&scheduler| SweepPoint {
            benchmark: Benchmark::TpcC,
            scheduler,
            replay_cfg: cfg.clone(),
            label: "interned-grid",
            traces: SweepTraces::Interned(iset),
            map: Some(&map),
        })
        .collect();
    let t = Instant::now();
    let seq = run_sweep(&grid, 1);
    let seq_seconds = t.elapsed().as_secs_f64();
    // The parallel leg times each point inside its worker, so the artifact
    // records per-scheduler throughput *as achieved under the sweep* (on a
    // contended host this is lower than the isolated timings above — that
    // contention is exactly what the artifact should show).
    let t = Instant::now();
    let timed_par: Vec<(f64, ReplayResult)> = run_grid(&grid, args.threads, |_, p| {
        let t = Instant::now();
        let r = run_point(p);
        (t.elapsed().as_secs_f64(), r)
    });
    let par_seconds = t.elapsed().as_secs_f64();
    for (((point, s), (_, p)), reference) in
        grid.iter().zip(&seq).zip(&timed_par).zip(&segment_results)
    {
        assert_identical(s, p, &format!("{}: parallel sweep", point.describe()));
        assert_eq!(
            s.stats,
            reference.stats,
            "{}: interned sweep drifted from direct flat run",
            point.describe()
        );
    }
    let sweep_speedup = seq_seconds / par_seconds;
    eprintln!(
        "bench: interned sweep grid ({} points, one shared pool) {:.3}s at 1 thread | {:.3}s at {} threads | speedup {:.2}x | results bit-identical to flat",
        grid.len(),
        seq_seconds,
        par_seconds,
        args.threads,
        sweep_speedup
    );
    let _ = write!(
        out,
        "  \"sweep\": {{\n    \"points\": {},\n    \"traces\": \"interned (one shared pool)\",\n    \"threads\": {},\n    \"seq_seconds\": {seq_seconds:.6},\n    \"par_seconds\": {par_seconds:.6},\n    \"parallel_speedup\": {sweep_speedup:.3},\n    \"bit_identical\": true,\n    \"per_scheduler\": [\n",
        grid.len(),
        args.threads
    );
    for (i, (kind, (secs, _))) in SchedulerKind::ALL.iter().zip(&timed_par).enumerate() {
        let _ = write!(
            out,
            "      {{ \"scheduler\": \"{}\", \"seconds\": {secs:.6}, \"events_per_sec\": {:.1} }}{}",
            kind.name(),
            events as f64 / secs,
            if i + 1 < timed_par.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  }\n}\n");

    std::fs::write(&out_path, out).expect("write benchmark artifact");
    eprintln!("bench: wrote {out_path}");
}
