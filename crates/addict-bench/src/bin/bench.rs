//! `bench`: the replay-throughput trajectory artifact.
//!
//! Replays the TPC-C evaluation traces under all four schedulers, timing
//! the per-block *flat* path against the segment-granular fast path, and
//! then times the **full scheduler grid** executed through the sweep
//! engine at one thread vs `--threads N`. Writes `BENCH_2.json` with
//! events/sec and sim-cycles/sec per scheduler, the segment-over-flat
//! speedup, and the parallel-sweep wall times + speedup (thread count
//! recorded, so artifacts from different hosts stay comparable).
//!
//! Two determinism guards run on every invocation and can fail the
//! process:
//! * flat and segment execution must produce bit-identical simulation
//!   output (a speedup can never be bought with accuracy), and
//! * the 1-thread and N-thread sweeps must produce bit-identical
//!   per-scheduler `MachineStats` and makespans (parallelism can never
//!   change a result).
//!
//! Usage: `cargo run --release --bin bench -- [n_xcts] [out.json]
//! [--threads N] [--smoke]` (defaults: 400 transactions, `BENCH_2.json`;
//! `--smoke` is the CI-sized run: 60 transactions, one rep,
//! `bench_smoke.json`).

use std::fmt::Write as _;
use std::time::Instant;

use addict_bench::{
    migration_map, parse_bench_args, profile_and_eval, run_grid, run_sweep, SweepPoint,
};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{TraceEvent, XctTrace};
use addict_workloads::Benchmark;

/// Block-granular events in a trace set (instruction runs expanded).
fn total_events(traces: &[XctTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
            _ => 1,
        })
        .sum()
}

struct ModeTiming {
    seconds: f64,
    events_per_sec: f64,
    sim_cycles_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheduler/mode, timed sequentially on
/// the calling thread (per-scheduler throughput must not be polluted by
/// concurrent runs contending for the host's cores).
fn time_mode(
    kind: SchedulerKind,
    traces: &[XctTrace],
    map: &addict_core::algorithm1::MigrationMap,
    cfg: &ReplayConfig,
    events: u64,
    reps: usize,
) -> (ModeTiming, ReplayResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_scheduler(kind, traces, Some(map), cfg);
        let s = t.elapsed().as_secs_f64();
        if s < best {
            best = s;
        }
        result = Some(r);
    }
    let result = result.expect("reps >= 1");
    let timing = ModeTiming {
        seconds: best,
        events_per_sec: events as f64 / best,
        sim_cycles_per_sec: result.total_cycles / best,
    };
    (timing, result)
}

fn json_mode(out: &mut String, label: &str, t: &ModeTiming) {
    let _ = write!(
        out,
        "    \"{label}\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"sim_cycles_per_sec\": {:.1} }}",
        t.seconds, t.events_per_sec, t.sim_cycles_per_sec
    );
}

fn main() {
    let args = parse_bench_args(400);
    let n = args.n_xcts;
    let out_path = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            "bench_smoke.json".to_owned()
        } else {
            "BENCH_2.json".to_owned()
        }
    });
    let reps = if args.smoke { 1 } else { 3 };

    eprintln!("bench: generating {n}+{n} TPC-C traces...");
    let (profile, eval) = profile_and_eval(Benchmark::TpcC, n, n);
    let cfg = ReplayConfig::paper_default();
    let map = migration_map(&profile, &cfg);
    let events = total_events(&eval.xcts);
    eprintln!(
        "bench: {} eval transactions, {} block-granular events, {} cores, {} sweep threads",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores,
        args.threads
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"artifact\": \"BENCH_2\",\n  \"workload\": \"TPC-C\",\n  \"n_xcts\": {},\n  \"events\": {},\n  \"n_cores\": {},\n  \"reps_best_of\": {reps},\n  \"schedulers\": [\n",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores
    );

    let mut segment_results: Vec<ReplayResult> = Vec::new();
    for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
        let flat_cfg = ReplayConfig {
            segment_exec: false,
            ..cfg.clone()
        };
        let seg_cfg = ReplayConfig {
            segment_exec: true,
            ..cfg.clone()
        };
        // Warm up caches/allocator before timing.
        let _ = run_scheduler(*kind, &eval.xcts, Some(&map), &seg_cfg);
        let (flat_t, flat_r) = time_mode(*kind, &eval.xcts, &map, &flat_cfg, events, reps);
        let (seg_t, seg_r) = time_mode(*kind, &eval.xcts, &map, &seg_cfg, events, reps);

        // Equivalence guard: the fast path must not change the simulation.
        assert_eq!(
            seg_r.stats,
            flat_r.stats,
            "{}: segment path diverged",
            kind.name()
        );
        assert_eq!(
            seg_r.total_cycles.to_bits(),
            flat_r.total_cycles.to_bits(),
            "{}: makespan diverged",
            kind.name()
        );

        let speedup = flat_t.seconds / seg_t.seconds;
        eprintln!(
            "bench: {:<9} flat {:>10.0} ev/s | segment {:>10.0} ev/s | speedup {:.2}x",
            kind.name(),
            flat_t.events_per_sec,
            seg_t.events_per_sec,
            speedup
        );

        let _ = write!(
            out,
            "  {{\n    \"scheduler\": \"{}\",\n    \"instructions\": {},\n    \"total_sim_cycles\": {:.1},\n",
            kind.name(),
            seg_r.instructions,
            seg_r.total_cycles
        );
        json_mode(&mut out, "flat", &flat_t);
        out.push_str(",\n");
        json_mode(&mut out, "segment", &seg_t);
        let _ = write!(out, ",\n    \"segment_speedup\": {speedup:.3}\n  }}");
        out.push_str(if i + 1 < SchedulerKind::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
        segment_results.push(seg_r);
    }
    out.push_str("  ],\n");

    // Parallel-sweep scaling: the full scheduler grid through the sweep
    // engine, sequential vs `--threads N`, with a bit-identical check
    // against both each other and the sequentially timed runs above.
    let grid: Vec<SweepPoint<'_>> = SchedulerKind::ALL
        .iter()
        .map(|&scheduler| SweepPoint {
            benchmark: Benchmark::TpcC,
            scheduler,
            replay_cfg: cfg.clone(),
            label: "grid",
            traces: &eval.xcts,
            map: Some(&map),
        })
        .collect();
    let t = Instant::now();
    let seq = run_sweep(&grid, 1);
    let seq_seconds = t.elapsed().as_secs_f64();
    // The parallel leg times each point inside its worker, so the artifact
    // records per-scheduler throughput *as achieved under the sweep* (on a
    // contended host this is lower than the isolated timings above — that
    // contention is exactly what the artifact should show).
    let t = Instant::now();
    let timed_par: Vec<(f64, ReplayResult)> = run_grid(&grid, args.threads, |_, p| {
        let t = Instant::now();
        let r = run_scheduler(p.scheduler, p.traces, p.map, &p.replay_cfg);
        (t.elapsed().as_secs_f64(), r)
    });
    let par_seconds = t.elapsed().as_secs_f64();
    for (((point, s), (_, p)), reference) in
        grid.iter().zip(&seq).zip(&timed_par).zip(&segment_results)
    {
        assert_eq!(
            s.stats,
            p.stats,
            "{}: parallel sweep diverged",
            point.describe()
        );
        assert_eq!(
            s.total_cycles.to_bits(),
            p.total_cycles.to_bits(),
            "{}: parallel sweep makespan diverged",
            point.describe()
        );
        assert_eq!(
            s.stats,
            reference.stats,
            "{}: sweep result drifted from direct run",
            point.describe()
        );
    }
    let sweep_speedup = seq_seconds / par_seconds;
    eprintln!(
        "bench: sweep grid ({} points) {:.3}s at 1 thread | {:.3}s at {} threads | speedup {:.2}x | results bit-identical",
        grid.len(),
        seq_seconds,
        par_seconds,
        args.threads,
        sweep_speedup
    );
    let _ = write!(
        out,
        "  \"sweep\": {{\n    \"points\": {},\n    \"threads\": {},\n    \"seq_seconds\": {seq_seconds:.6},\n    \"par_seconds\": {par_seconds:.6},\n    \"parallel_speedup\": {sweep_speedup:.3},\n    \"bit_identical\": true,\n    \"per_scheduler\": [\n",
        grid.len(),
        args.threads
    );
    for (i, (kind, (secs, _))) in SchedulerKind::ALL.iter().zip(&timed_par).enumerate() {
        let _ = write!(
            out,
            "      {{ \"scheduler\": \"{}\", \"seconds\": {secs:.6}, \"events_per_sec\": {:.1} }}{}",
            kind.name(),
            events as f64 / secs,
            if i + 1 < timed_par.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  }\n}\n");

    std::fs::write(&out_path, out).expect("write benchmark artifact");
    eprintln!("bench: wrote {out_path}");
}
