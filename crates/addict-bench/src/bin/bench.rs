//! `bench`: the replay-throughput trajectory artifact.
//!
//! Replays the TPC-C evaluation traces under all four schedulers, timing
//! the per-block *flat* path against the segment-granular fast path, and
//! writes `BENCH_1.json` with events/sec and sim-cycles/sec per scheduler
//! plus the segment-over-flat speedup. Both modes are also cross-checked
//! for bit-identical simulation output on every run, so the artifact can
//! never record a speedup bought with accuracy.
//!
//! Usage: `cargo run --release --bin bench [n_xcts] [out.json]`
//! (defaults: 400 transactions, `BENCH_1.json` in the current directory).

use std::fmt::Write as _;
use std::time::Instant;

use addict_bench::{arg_xcts, migration_map, profile_and_eval};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{TraceEvent, XctTrace};
use addict_workloads::Benchmark;

/// Block-granular events in a trace set (instruction runs expanded).
fn total_events(traces: &[XctTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
            _ => 1,
        })
        .sum()
}

struct ModeTiming {
    seconds: f64,
    events_per_sec: f64,
    sim_cycles_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheduler/mode.
fn time_mode(
    kind: SchedulerKind,
    traces: &[XctTrace],
    map: &addict_core::algorithm1::MigrationMap,
    cfg: &ReplayConfig,
    events: u64,
    reps: usize,
) -> (ModeTiming, ReplayResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_scheduler(kind, traces, Some(map), cfg);
        let s = t.elapsed().as_secs_f64();
        if s < best {
            best = s;
        }
        result = Some(r);
    }
    let result = result.expect("reps >= 1");
    let timing = ModeTiming {
        seconds: best,
        events_per_sec: events as f64 / best,
        sim_cycles_per_sec: result.total_cycles / best,
    };
    (timing, result)
}

fn json_mode(out: &mut String, label: &str, t: &ModeTiming) {
    let _ = write!(
        out,
        "    \"{label}\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"sim_cycles_per_sec\": {:.1} }}",
        t.seconds, t.events_per_sec, t.sim_cycles_per_sec
    );
}

fn main() {
    let n = arg_xcts(400);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_1.json".to_owned());
    let reps = 3;

    eprintln!("bench: generating {n}+{n} TPC-C traces...");
    let (profile, eval) = profile_and_eval(Benchmark::TpcC, n, n);
    let cfg = ReplayConfig::paper_default();
    let map = migration_map(&profile, &cfg);
    let events = total_events(&eval.xcts);
    eprintln!(
        "bench: {} eval transactions, {} block-granular events, {} cores",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"artifact\": \"BENCH_1\",\n  \"workload\": \"TPC-C\",\n  \"n_xcts\": {},\n  \"events\": {},\n  \"n_cores\": {},\n  \"reps_best_of\": {reps},\n  \"schedulers\": [\n",
        eval.xcts.len(),
        events,
        cfg.sim.n_cores
    );

    for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
        let flat_cfg = ReplayConfig {
            segment_exec: false,
            ..cfg.clone()
        };
        let seg_cfg = ReplayConfig {
            segment_exec: true,
            ..cfg.clone()
        };
        // Warm up caches/allocator before timing.
        let _ = run_scheduler(*kind, &eval.xcts, Some(&map), &seg_cfg);
        let (flat_t, flat_r) = time_mode(*kind, &eval.xcts, &map, &flat_cfg, events, reps);
        let (seg_t, seg_r) = time_mode(*kind, &eval.xcts, &map, &seg_cfg, events, reps);

        // Equivalence guard: the fast path must not change the simulation.
        assert_eq!(
            seg_r.stats,
            flat_r.stats,
            "{}: segment path diverged",
            kind.name()
        );
        assert_eq!(
            seg_r.total_cycles.to_bits(),
            flat_r.total_cycles.to_bits(),
            "{}: makespan diverged",
            kind.name()
        );

        let speedup = flat_t.seconds / seg_t.seconds;
        eprintln!(
            "bench: {:<9} flat {:>10.0} ev/s | segment {:>10.0} ev/s | speedup {:.2}x",
            kind.name(),
            flat_t.events_per_sec,
            seg_t.events_per_sec,
            speedup
        );

        let _ = write!(
            out,
            "  {{\n    \"scheduler\": \"{}\",\n    \"instructions\": {},\n    \"total_sim_cycles\": {:.1},\n",
            kind.name(),
            seg_r.instructions,
            seg_r.total_cycles
        );
        json_mode(&mut out, "flat", &flat_t);
        out.push_str(",\n");
        json_mode(&mut out, "segment", &seg_t);
        let _ = write!(out, ",\n    \"segment_speedup\": {speedup:.3}\n  }}");
        out.push_str(if i + 1 < SchedulerKind::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&out_path, out).expect("write benchmark artifact");
    eprintln!("bench: wrote {out_path}");
}
