//! `bench`: the replay-throughput trajectory artifact.
//!
//! For every selected benchmark (`--benchmarks`, default: the whole
//! registry — the TPC trio plus the spec-driven TATP and YCSB mixes),
//! replays the evaluation traces under all five schedulers, timing four
//! modes against each other:
//!
//! * **flat** — per-block, per-event execution over flat
//!   `Vec<TraceEvent>` traces (the reference path),
//! * **segment** — the segment-granular instruction fast path (PR 1),
//! * **data_run** — segment-granular instructions **plus** run-granular
//!   data: consecutive data accesses execute whole inside the machine,
//!   private leading hits consumed without a coherence-directory
//!   transaction (PR 5),
//! * **interned** — both fast paths over the arena-backed
//!   [`InternedWorkload`] form, whose deduplicated `SlicePool` holds each
//!   distinct event slice once (PR 3),
//!
//! then times the **full (benchmark × scheduler) grid** through the sweep
//! engine at one thread vs `--threads N`, with the interned grid sharing
//! one `Arc`'d pool per workload. Writes `BENCH_10.json` with events/sec
//! and sim-cycles/sec per workload, scheduler, and mode, the trace-memory
//! footprint (flat vs interned resident bytes, delta-encoded address
//! bytes, pool dedup ratio), the parallel-sweep wall times + speedup, a
//! `service` section timing the same job cold vs warm through the
//! replay-as-a-service layer's trace-pool cache (PR 7; see SERVICE.md),
//! and a `shards` section laddering **intra-replay decode sharding**
//! (`ReplayConfig::shards`) over 1 / 2 / 4 / `--shards` workers per
//! scheduler (PR 10).
//!
//! The interned evaluation traces come from the **streamed pipeline**
//! (`generate_interned_chunked`: generate → intern → retire flat traces,
//! chunk by chunk), and `--scaling` appends the trace-memory-vs-throughput
//! ladder: streamed generation and interned replay at 400 / 10k / 100k /
//! ... up to `--xcts`, with per-rung footprint, events/s and peak RSS —
//! the million-transaction run the flat path cannot hold in memory.
//!
//! Determinism guards run on every invocation (CI's `--smoke` included)
//! and can fail the process:
//! * the streamed, delta-encoded eval workload must **decode back
//!   bit-identical** to the flat-generated one (the `streaming-equivalence`
//!   CI gate),
//! * flat, segment, **data_run**, and **interned** execution must produce
//!   bit-identical simulation output (a speedup can never be bought with
//!   accuracy) — the `data-run-equivalence` CI gate, and
//! * the 1-thread and N-thread sweeps must produce bit-identical
//!   per-scheduler `MachineStats` and makespans (parallelism can never
//!   change a result) — for the spec-driven workloads exactly as for the
//!   handwritten ones, and
//! * every **sharded** replay in the `shards` ladder (and, under
//!   `--scaling --shards N`, the gated ladder rungs) must be bit-identical
//!   to the serial engine's — the `shard-equivalence` CI gate.
//!
//! Usage: `cargo run --release --bin bench -- [n_xcts] [out.json]
//! [--xcts N] [--threads N] [--shards N] [--benchmarks tpcb,tatp,...]
//! [--smoke] [--scaling]` (defaults: 400 transactions, `BENCH_10.json`;
//! `--smoke` is the CI-sized run: 60 transactions, one rep,
//! `bench_smoke.json`; `--scaling` caps the fixed-size matrix at 400 and
//! ladders the first selected benchmark up to `--xcts`, replaying rungs
//! with `--shards` decode workers).

use std::fmt::Write as _;
use std::time::Instant;

use addict_bench::job::total_events_interned;
use addict_bench::{
    generate, generate_interned_chunked, migration_map, parse_bench_args, profile_eval_ranges,
    run_grid, run_job, run_point, run_sweep, GenRange, JobSpec, SweepPoint, SweepTraces, TracePool,
    DEFAULT_GEN_CHUNK, EVAL_SEED,
};
use addict_core::algorithm1::MigrationMap;
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_trace::{InternedWorkload, TraceEvent, WorkloadTrace, XctTrace};
use addict_workloads::Benchmark;

/// Block-granular events in a trace set (instruction runs expanded).
fn total_events(traces: &[XctTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            TraceEvent::Instr { n_blocks, .. } => u64::from(*n_blocks),
            _ => 1,
        })
        .sum()
}

/// Peak resident set size of this process so far (Linux `VmHWM`), if the
/// platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Assert the streamed generate→intern pipeline's decoded form is
/// bit-identical to the flat-generated workload — the runtime
/// decoded-vs-flat gate (`streaming-equivalence` in CI).
fn assert_decodes_to(interned: &InternedWorkload, flat: &WorkloadTrace, what: &str) {
    let decoded = interned.flatten();
    assert_eq!(
        decoded.xcts.len(),
        flat.xcts.len(),
        "{what}: streamed pipeline trace count diverged"
    );
    for (i, (d, f)) in decoded.xcts.iter().zip(&flat.xcts).enumerate() {
        assert_eq!(d.xct_type, f.xct_type, "{what}: trace {i} type diverged");
        assert_eq!(
            d.events, f.events,
            "{what}: streamed+decoded trace {i} diverged from flat"
        );
    }
}

struct ModeTiming {
    seconds: f64,
    events_per_sec: f64,
    sim_cycles_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheduler/mode, timed sequentially on
/// the calling thread (per-scheduler throughput must not be polluted by
/// concurrent runs contending for the host's cores).
fn time_mode(
    run: impl Fn() -> ReplayResult,
    events: u64,
    reps: usize,
) -> (ModeTiming, ReplayResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run();
        let s = t.elapsed().as_secs_f64();
        if s < best {
            best = s;
        }
        result = Some(r);
    }
    let result = result.expect("reps >= 1");
    let timing = ModeTiming {
        seconds: best,
        events_per_sec: events as f64 / best,
        sim_cycles_per_sec: result.total_cycles / best,
    };
    (timing, result)
}

fn json_mode(out: &mut String, label: &str, t: &ModeTiming) {
    let _ = write!(
        out,
        "        \"{label}\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"sim_cycles_per_sec\": {:.1} }}",
        t.seconds, t.events_per_sec, t.sim_cycles_per_sec
    );
}

/// Assert two replays produced bit-identical simulation output.
fn assert_identical(a: &ReplayResult, b: &ReplayResult, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(
        a.total_cycles.to_bits(),
        b.total_cycles.to_bits(),
        "{what}: makespan diverged"
    );
    assert_eq!(a.latencies.len(), b.latencies.len(), "{what}");
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: latency diverged");
    }
}

/// One benchmark's prepared replay inputs.
struct Prepared {
    bench: Benchmark,
    eval: WorkloadTrace,
    interned: InternedWorkload,
    map: MigrationMap,
    events: u64,
}

fn main() {
    let args = parse_bench_args(400);
    // In scaling mode the fixed-size matrix stays at its standard 400 so
    // the ladder's base rung has a reference; the big `--xcts` applies to
    // the ladder only.
    let n = if args.scaling {
        args.n_xcts.min(400)
    } else {
        args.n_xcts
    };
    let out_path = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            "bench_smoke.json".to_owned()
        } else {
            "BENCH_10.json".to_owned()
        }
    });
    // Best-of-N per mode: this container is a single shared core whose
    // attainable throughput drifts on minute timescales, so each mode
    // samples a wide window and keeps its fastest rep.
    let reps = if args.smoke { 1 } else { 15 };
    let cfg = ReplayConfig::paper_default();
    let bench_names: Vec<&str> = args.benchmarks.iter().map(|b| b.name()).collect();

    eprintln!(
        "bench: generating {n}+{n} traces for {} on {} thread(s)...",
        bench_names.join(", "),
        args.threads
    );
    // All (benchmark × profile/eval) ranges generate in one parallel wave
    // (one private storage engine per worker).
    let ranges: Vec<GenRange> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let mut generated = generate(&ranges, args.threads).into_iter();
    let prepared: Vec<Prepared> = args
        .benchmarks
        .iter()
        .map(|&bench| {
            let profile = generated.next().expect("one profile range per benchmark");
            let eval = generated.next().expect("one eval range per benchmark");
            // The interned eval comes from the streamed pipeline — its own
            // engine, chunked generate→intern→retire — and must decode
            // back bit-identical to the flat-generated eval above: the
            // runtime decoded-vs-flat gate.
            let interned = generate_interned_chunked(
                &[GenRange::new(bench, n, EVAL_SEED)],
                args.threads,
                DEFAULT_GEN_CHUNK,
            )
            .pop()
            .expect("one streamed eval range");
            assert_decodes_to(&interned, &eval, bench.name());
            let map = migration_map(&profile, &cfg);
            let events = total_events(&eval.xcts);
            Prepared {
                bench,
                eval,
                interned,
                map,
                events,
            }
        })
        .collect();
    eprintln!(
        "bench: streamed pipeline (chunk {DEFAULT_GEN_CHUNK}) decoded bit-identical to flat generation for {}",
        bench_names.join(", ")
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"artifact\": \"BENCH_10\",\n  \"n_xcts\": {n},\n  \"n_cores\": {},\n  \"reps_best_of\": {reps},\n  \"gen_chunk\": {DEFAULT_GEN_CHUNK},\n  \"workloads\": [\n",
        cfg.sim.n_cores
    );

    // Per-workload, per-scheduler mode timings with the flat/segment/
    // data_run/interned equivalence guards. The stored results come from
    // the data_run mode — the same configuration the sweep below runs —
    // and anchor its bit-identity assert.
    let mut reference_results: Vec<Vec<ReplayResult>> = Vec::new();
    for (wi, p) in prepared.iter().enumerate() {
        let footprint = p.interned.footprint();
        eprintln!(
            "bench: {} — {} eval transactions, {} block-granular events; trace bytes {} flat -> {} interned ({:.2}x smaller; dedup {:.1}x over {} unique slices; {} data addresses in {} delta bytes, {:.2}x under raw)",
            p.bench.name(),
            p.eval.xcts.len(),
            p.events,
            footprint.flat_bytes,
            footprint.resident_bytes(),
            footprint.reduction(),
            footprint.dedup_ratio(),
            footprint.unique_slices,
            footprint.data_accesses,
            footprint.data_bytes,
            footprint.address_reduction()
        );
        let _ = write!(
            out,
            "  {{\n    \"workload\": \"{}\",\n    \"n_xcts\": {},\n    \"events\": {},\n",
            p.bench.name(),
            p.eval.xcts.len(),
            p.events
        );
        let _ = write!(
            out,
            "    \"trace_memory\": {{\n      \"flat_bytes\": {},\n      \"interned_resident_bytes\": {},\n      \"pool_bytes\": {},\n      \"per_trace_bytes\": {},\n      \"data_address_bytes\": {},\n      \"data_addresses\": {},\n      \"address_reduction\": {:.3},\n      \"reduction\": {:.3},\n      \"unique_slices\": {},\n      \"slices_interned\": {},\n      \"dedup_ratio\": {:.2}\n    }},\n    \"schedulers\": [\n",
            footprint.flat_bytes,
            footprint.resident_bytes(),
            footprint.pool_bytes,
            footprint.trace_bytes,
            footprint.data_bytes,
            footprint.data_accesses,
            footprint.address_reduction(),
            footprint.reduction(),
            footprint.unique_slices,
            footprint.slices_interned,
            footprint.dedup_ratio()
        );

        let iset = p.interned.as_set();
        let mut run_results = Vec::new();
        for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
            // The reference path disables both fast paths; `segment` adds
            // instruction runs; `data_run` adds data runs on top; the
            // interned mode runs with both (the production configuration).
            let flat_cfg = ReplayConfig {
                segment_exec: false,
                data_run_exec: false,
                ..cfg.clone()
            };
            let seg_cfg = ReplayConfig {
                segment_exec: true,
                data_run_exec: false,
                ..cfg.clone()
            };
            let run_cfg = ReplayConfig {
                segment_exec: true,
                data_run_exec: true,
                ..cfg.clone()
            };
            // Warm up caches/allocator before timing.
            let _ = run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &run_cfg);
            let (flat_t, flat_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &flat_cfg),
                p.events,
                reps,
            );
            let (seg_t, seg_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &seg_cfg),
                p.events,
                reps,
            );
            let (run_t, run_r) = time_mode(
                || run_scheduler(*kind, &p.eval.xcts, Some(&p.map), &run_cfg),
                p.events,
                reps,
            );
            let (int_t, int_r) = time_mode(
                || run_scheduler(*kind, &iset, Some(&p.map), &run_cfg),
                p.events,
                reps,
            );

            // Equivalence guards: no fast path may change the simulation,
            // on spec-driven workloads exactly as on the trio. The
            // data_run assert is CI's `data-run-equivalence` gate.
            let what = |path| format!("{}/{}: {path} path", p.bench.name(), kind.name());
            assert_identical(&seg_r, &flat_r, &what("segment"));
            assert_identical(&run_r, &flat_r, &what("data_run"));
            assert_identical(&int_r, &flat_r, &what("interned"));

            let speedup = flat_t.seconds / seg_t.seconds;
            let run_speedup = flat_t.seconds / run_t.seconds;
            let int_speedup = flat_t.seconds / int_t.seconds;
            eprintln!(
                "bench: {:<6} {:<9} flat {:>9.0} ev/s | segment {:>9.0} ev/s | data_run {:>9.0} ev/s | interned {:>9.0} ev/s | data_run speedup {:.2}x",
                p.bench.name(),
                kind.name(),
                flat_t.events_per_sec,
                seg_t.events_per_sec,
                run_t.events_per_sec,
                int_t.events_per_sec,
                run_speedup
            );

            let _ = write!(
                out,
                "      {{\n        \"scheduler\": \"{}\",\n        \"instructions\": {},\n        \"total_sim_cycles\": {:.1},\n",
                kind.name(),
                run_r.instructions,
                run_r.total_cycles
            );
            json_mode(&mut out, "flat", &flat_t);
            out.push_str(",\n");
            json_mode(&mut out, "segment", &seg_t);
            out.push_str(",\n");
            json_mode(&mut out, "data_run", &run_t);
            out.push_str(",\n");
            json_mode(&mut out, "interned", &int_t);
            let _ = write!(
                out,
                ",\n        \"segment_speedup\": {speedup:.3},\n        \"data_run_speedup\": {run_speedup:.3},\n        \"interned_speedup\": {int_speedup:.3}\n      }}"
            );
            out.push_str(if i + 1 < SchedulerKind::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
            run_results.push(run_r);
        }
        out.push_str("    ]\n  }");
        out.push_str(if wi + 1 < prepared.len() { ",\n" } else { "\n" });
        reference_results.push(run_results);
    }
    out.push_str("  ],\n");

    // Parallel-sweep scaling: the full (benchmark × scheduler) grid
    // through the sweep engine, sequential vs `--threads N`, on the
    // **interned** traces — each workload's points borrow its Arc'd pool,
    // so N workers replay out of read-only arenas. Bit-identical checks
    // against both the 1-thread sweep and the sequentially timed flat
    // runs above.
    let grid: Vec<SweepPoint<'_>> = prepared
        .iter()
        .flat_map(|p| {
            SchedulerKind::ALL.iter().map(|&scheduler| SweepPoint {
                benchmark: p.bench,
                scheduler,
                replay_cfg: cfg.clone(),
                label: "interned-grid",
                traces: SweepTraces::Interned(p.interned.as_set()),
                map: Some(&p.map),
            })
        })
        .collect();
    let t = Instant::now();
    let seq = run_sweep(&grid, 1);
    let seq_seconds = t.elapsed().as_secs_f64();
    // The parallel leg times each point inside its worker, so the artifact
    // records per-scheduler throughput *as achieved under the sweep* (on a
    // contended host this is lower than the isolated timings above — that
    // contention is exactly what the artifact should show).
    let t = Instant::now();
    let timed_par: Vec<(f64, ReplayResult)> = run_grid(&grid, args.threads, |_, p| {
        let t = Instant::now();
        let r = run_point(p);
        (t.elapsed().as_secs_f64(), r)
    });
    let par_seconds = t.elapsed().as_secs_f64();
    let references = reference_results.iter().flatten();
    for (((point, s), (_, par)), reference) in grid.iter().zip(&seq).zip(&timed_par).zip(references)
    {
        assert_identical(s, par, &format!("{}: parallel sweep", point.describe()));
        assert_eq!(
            s.stats,
            reference.stats,
            "{}: interned sweep drifted from direct flat run",
            point.describe()
        );
    }
    let sweep_speedup = seq_seconds / par_seconds;
    eprintln!(
        "bench: interned sweep grid ({} points over {} workloads) {:.3}s at 1 thread | {:.3}s at {} threads | speedup {:.2}x | results bit-identical to flat",
        grid.len(),
        prepared.len(),
        seq_seconds,
        par_seconds,
        args.threads,
        sweep_speedup
    );
    let _ = write!(
        out,
        "  \"sweep\": {{\n    \"points\": {},\n    \"traces\": \"interned (one shared pool per workload)\",\n    \"threads\": {},\n    \"seq_seconds\": {seq_seconds:.6},\n    \"par_seconds\": {par_seconds:.6},\n    \"parallel_speedup\": {sweep_speedup:.3},\n    \"bit_identical\": true,\n    \"per_point\": [\n",
        grid.len(),
        args.threads
    );
    for (i, (point, (secs, _))) in grid.iter().zip(&timed_par).enumerate() {
        let events = prepared[i / SchedulerKind::ALL.len()].events;
        let _ = write!(
            out,
            "      {{ \"workload\": \"{}\", \"scheduler\": \"{}\", \"seconds\": {secs:.6}, \"events_per_sec\": {:.1} }}{}",
            point.benchmark.name(),
            point.scheduler.name(),
            events as f64 / secs,
            if i + 1 < timed_par.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  },\n");

    service_section(&mut out, &args, &prepared[0], n, &reference_results[0]);
    out.push_str(",\n");
    htm_section(&mut out, &prepared, &reference_results);
    out.push_str(",\n");
    shards_section(&mut out, &args, &cfg, &prepared[0], reps);

    if args.scaling {
        out.push_str(",\n");
        scaling_section(&mut out, &args, &cfg, &prepared[0], reps);
    } else {
        out.push('\n');
    }
    out.push_str("}\n");

    std::fs::write(&out_path, out).expect("write benchmark artifact");
    eprintln!("bench: wrote {out_path}");
}

/// The `service` section: the first selected benchmark's (scheduler ×
/// paper-default) job executed twice through the replay-as-a-service
/// layer — once against a cold [`TracePool`] (both trace ranges
/// generate) and once warm (pure cache hits, zero regeneration). Records
/// cold vs warm job latency and the cache counters, and asserts the
/// service path's contracts on every run: cold and warm results
/// serialize **byte-identical**, and every job point is bit-identical to
/// the directly-timed matrix reference above (the service adds caching
/// and transport, never semantics).
fn service_section(
    out: &mut String,
    args: &addict_bench::BenchArgs,
    p0: &Prepared,
    n: usize,
    reference: &[ReplayResult],
) {
    let mut spec = JobSpec::new(vec![p0.bench], n);
    spec.threads = args.threads;
    let pool = TracePool::unbounded();
    let quiet = |_: &str| {};
    let t = Instant::now();
    let cold = run_job(&spec, &pool, &quiet).expect("cold service job");
    let cold_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = run_job(&spec, &pool, &quiet).expect("warm service job");
    let warm_seconds = t.elapsed().as_secs_f64();

    let stats = pool.stats();
    assert_eq!(
        (stats.misses, stats.generations, stats.hits),
        (2, 2, 2),
        "service: cold job must generate profile+eval once, warm job must hit both"
    );
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "service: cold and warm jobs must serialize byte-identical"
    );
    for (point, reference) in cold.points.iter().zip(reference) {
        assert_identical(
            &point.result,
            reference,
            &format!(
                "{}/{}: service job vs matrix",
                p0.bench.name(),
                point.scheduler.name()
            ),
        );
        assert_eq!(point.events, p0.events, "service: event count diverged");
    }

    let warm_speedup = cold_seconds / warm_seconds;
    eprintln!(
        "bench: service job ({} x {} schedulers @ {n}) cold {cold_seconds:.3}s | warm {warm_seconds:.3}s | warm speedup {warm_speedup:.1}x | cache {}H/{}M | results byte-identical",
        p0.bench.name(),
        cold.points.len(),
        stats.hits,
        stats.misses
    );
    let _ = write!(
        out,
        "  \"service\": {{\n    \"workload\": \"{}\",\n    \"schedulers\": {},\n    \"n_xcts\": {n},\n    \"threads\": {},\n    \"cold_seconds\": {cold_seconds:.6},\n    \"warm_seconds\": {warm_seconds:.6},\n    \"warm_speedup\": {warm_speedup:.3},\n    \"cache\": {{ \"hits\": {}, \"misses\": {}, \"generations\": {} }},\n    \"byte_identical\": true,\n    \"bit_identical_to_matrix\": true\n  }}",
        p0.bench.name(),
        cold.points.len(),
        args.threads,
        stats.hits,
        stats.misses,
        stats.generations
    );
}

/// The `htm` section: per-workload speculation outcomes of the HTMX
/// scheduler against the ADDICT reference. The abort counters come out of
/// the stored data-run matrix results (`ReplayResult::spec`, all-zero for
/// the non-speculative schedulers — asserted here), so the section is a
/// pure function of the same replays the matrix already timed: abort
/// rates by cause, retries, fallbacks, discarded speculative cycles, and
/// the simulated-makespan ratio vs ADDICT (above 1.0 = speculation
/// overhead cost cycles; the interesting workloads are the short-window,
/// low-conflict ones like TATP where bounded HTM fits).
fn htm_section(out: &mut String, prepared: &[Prepared], reference_results: &[Vec<ReplayResult>]) {
    let idx_of = |k: SchedulerKind| {
        SchedulerKind::ALL
            .iter()
            .position(|&x| x == k)
            .expect("registered scheduler")
    };
    let (hi, ai) = (idx_of(SchedulerKind::Htmx), idx_of(SchedulerKind::Addict));
    let _ = write!(
        out,
        "  \"htm\": {{\n    \"max_spec_lines\": {},\n    \"per_workload\": [\n",
        addict_sim::MAX_SPEC_LINES
    );
    for (wi, (p, results)) in prepared.iter().zip(reference_results).enumerate() {
        let htmx = &results[hi];
        let addict = &results[ai];
        for (kind, r) in SchedulerKind::ALL.iter().zip(results) {
            assert!(
                *kind == SchedulerKind::Htmx || r.spec.begins == 0,
                "{}/{}: non-speculative scheduler reported speculation",
                p.bench.name(),
                kind.name()
            );
        }
        let s = &htmx.spec;
        let cycles_vs_addict = htmx.total_cycles / addict.total_cycles;
        eprintln!(
            "bench: htm    {:<6} {} xcts | begins {} | commits {} | aborts {} (conflict {} / capacity {}) | abort rate {:.3} | fallbacks {} | discarded {:.0} cycles | cycles vs ADDICT {:.3}x",
            p.bench.name(),
            htmx.n_xcts,
            s.begins,
            s.commits,
            s.aborts(),
            s.aborts_conflict,
            s.aborts_capacity,
            s.abort_rate(),
            s.fallbacks,
            s.discarded_cycles,
            cycles_vs_addict
        );
        let _ = write!(
            out,
            "      {{ \"workload\": \"{}\", \"n_xcts\": {}, \"begins\": {}, \"commits\": {}, \"aborts_conflict\": {}, \"aborts_capacity\": {}, \"abort_rate\": {:.6}, \"retries\": {}, \"fallbacks\": {}, \"discarded_cycles\": {:.1}, \"htmx_total_cycles\": {:.1}, \"addict_total_cycles\": {:.1}, \"cycles_vs_addict\": {cycles_vs_addict:.6} }}{}",
            p.bench.name(),
            htmx.n_xcts,
            s.begins,
            s.commits,
            s.aborts_conflict,
            s.aborts_capacity,
            s.abort_rate(),
            s.retries,
            s.fallbacks,
            s.discarded_cycles,
            htmx.total_cycles,
            addict.total_cycles,
            if wi + 1 < prepared.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  }");
}

/// The `shards` section: the intra-replay decode-sharding ladder on the
/// first selected benchmark. Every scheduler replays the interned eval
/// traces at 1 / 2 / 4 decode shards (plus `--shards` when it names
/// another rung), and each sharded result is asserted bit-identical to
/// the serial engine's — the runtime `shard-equivalence` CI gate, across
/// all five schedulers. Sharding moves trace *decoding* off the merge
/// thread but leaves the discrete-event loop serial, so it is a latency
/// knob, not a semantics knob: on a single shared core the expected
/// reading is "no slower", with the win appearing on hosts with idle
/// cores and decode-heavy (interned, delta-encoded) traces.
fn shards_section(
    out: &mut String,
    args: &addict_bench::BenchArgs,
    cfg: &ReplayConfig,
    p0: &Prepared,
    base_reps: usize,
) {
    let mut ladder = vec![1usize, 2, 4];
    if !ladder.contains(&args.shards) {
        ladder.push(args.shards);
        ladder.sort_unstable();
    }
    // Shard handoff keeps the replay deterministic, not the wall clock;
    // best-of a few reps is enough to see the trend without re-running
    // the full matrix budget.
    let reps = base_reps.min(5);
    let iset = p0.interned.as_set();
    let _ = write!(
        out,
        "  \"shards\": {{\n    \"workload\": \"{}\",\n    \"ladder\": {ladder:?},\n    \"reps_best_of\": {reps},\n    \"bit_identical\": true,\n    \"schedulers\": [\n",
        p0.bench.name()
    );
    for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"scheduler\": \"{}\", \"points\": [ ",
            kind.name()
        );
        let mut serial: Option<(ModeTiming, ReplayResult)> = None;
        for (j, &shards) in ladder.iter().enumerate() {
            let shard_cfg = ReplayConfig {
                segment_exec: true,
                data_run_exec: true,
                shards,
                ..cfg.clone()
            };
            let (timing, r) = time_mode(
                || run_scheduler(*kind, &iset, Some(&p0.map), &shard_cfg),
                p0.events,
                reps,
            );
            if let Some((_, base)) = &serial {
                assert_identical(
                    &r,
                    base,
                    &format!("{}/{}: {shards}-shard replay", p0.bench.name(), kind.name()),
                );
            }
            let _ = write!(
                out,
                "{}{{ \"shards\": {shards}, \"seconds\": {:.6}, \"events_per_sec\": {:.1} }}",
                if j > 0 { ", " } else { "" },
                timing.seconds,
                timing.events_per_sec
            );
            if serial.is_none() {
                serial = Some((timing, r));
            }
        }
        let (base_t, _) = serial.expect("ladder starts at 1 shard");
        eprintln!(
            "bench: shards {:<6} {:<9} serial {:>9.0} ev/s | ladder {:?} bit-identical ({} reps best-of)",
            p0.bench.name(),
            kind.name(),
            base_t.events_per_sec,
            ladder,
            reps
        );
        let _ = write!(
            out,
            " ] }}{}",
            if i + 1 < SchedulerKind::ALL.len() {
                ",\n"
            } else {
                "\n"
            }
        );
    }
    out.push_str("    ]\n  }");
}

/// The `--scaling` ladder: streamed generate→intern→replay of the first
/// selected benchmark at 400 / 10k / 100k / ... up to `--xcts`
/// transactions, recording per-rung trace memory, generation and replay
/// wall time, events/s per scheduler, and the process's peak RSS. The
/// flat trace set never materializes — each rung's eval exists only in
/// streamed interned form (at 1M TPC-B transactions the flat form alone
/// would be ~4 GB of events) — and rungs small enough to afford a flat
/// reference (≤ 10k) are decoded and replayed against it bit-identically
/// before being timed. Rung replays run with `--shards` decode workers
/// (the long single replays are exactly where intra-replay sharding is
/// aimed), so under `--shards N` the gated rungs double as the
/// shard-equivalence check at scale: N-shard interned vs serial flat.
fn scaling_section(
    out: &mut String,
    args: &addict_bench::BenchArgs,
    cfg: &ReplayConfig,
    p0: &Prepared,
    base_reps: usize,
) {
    const LADDER: [usize; 4] = [400, 10_000, 100_000, 1_000_000];
    let bench = p0.bench;
    let rungs: Vec<usize> = LADDER
        .iter()
        .copied()
        .filter(|&r| r < args.n_xcts)
        .chain([args.n_xcts])
        .collect();
    eprintln!(
        "bench: scaling ladder {rungs:?} for {} (streamed pipeline, chunk {DEFAULT_GEN_CHUNK}, profile fixed at {} traces)",
        bench.name(),
        p0.eval.xcts.len()
    );
    let run_cfg = ReplayConfig {
        segment_exec: true,
        data_run_exec: true,
        shards: args.shards,
        ..cfg.clone()
    };
    let flat_cfg = ReplayConfig {
        segment_exec: false,
        data_run_exec: false,
        ..cfg.clone()
    };
    let _ = write!(
        out,
        "  \"scaling\": {{\n    \"workload\": \"{}\",\n    \"gen_chunk\": {DEFAULT_GEN_CHUNK},\n    \"shards\": {},\n    \"rungs\": [\n",
        bench.name(),
        args.shards
    );
    for (ri, &rung) in rungs.iter().enumerate() {
        let t = Instant::now();
        let iw = generate_interned_chunked(
            &[GenRange::new(bench, rung, EVAL_SEED)],
            args.threads,
            DEFAULT_GEN_CHUNK,
        )
        .pop()
        .expect("one ladder range");
        let gen_seconds = t.elapsed().as_secs_f64();
        let fp = iw.footprint();
        let events = total_events_interned(&iw);
        let iset = iw.as_set();
        eprintln!(
            "bench: scaling {} @ {rung} — generated+interned in {gen_seconds:.1}s; {} events; resident {} B ({} B/xct, addresses {:.2}x under raw)",
            bench.name(),
            events,
            fp.resident_bytes(),
            fp.resident_bytes() / rung.max(1),
            fp.address_reduction()
        );
        // Rungs that fit flat get the full decoded-vs-flat gate before
        // any timing; beyond that the equivalence is carried by these
        // gated rungs plus chunk-invariance (the pipeline's output does
        // not depend on scale, only on the transaction stream).
        let verified = rung <= 10_000;
        if verified {
            let flat = generate(&[GenRange::new(bench, rung, EVAL_SEED)], args.threads)
                .pop()
                .expect("one flat reference range");
            assert_decodes_to(&iw, &flat, &format!("{} scaling@{rung}", bench.name()));
            for kind in SchedulerKind::ALL {
                let fr = run_scheduler(kind, &flat.xcts, Some(&p0.map), &flat_cfg);
                let ir = run_scheduler(kind, &iset, Some(&p0.map), &run_cfg);
                assert_identical(
                    &ir,
                    &fr,
                    &format!("{}/{} scaling@{rung}", bench.name(), kind.name()),
                );
            }
            eprintln!("bench: scaling @ {rung} decoded + replayed bit-identical to flat");
        }
        // Small rungs take best-of like the fixed-size matrix; big rungs
        // run once — a single 10^8-event replay is its own steady state.
        let reps = if rung > 10_000 { 1 } else { base_reps.min(5) };
        let _ = write!(
            out,
            "      {{\n        \"n_xcts\": {rung},\n        \"events\": {events},\n        \"gen_seconds\": {gen_seconds:.3},\n        \"decoded_vs_flat\": \"{}\",\n        \"trace_memory\": {{ \"resident_bytes\": {}, \"pool_bytes\": {}, \"per_trace_bytes\": {}, \"data_address_bytes\": {}, \"data_addresses\": {}, \"address_reduction\": {:.3} }},\n",
            if verified { "verified" } else { "gated_at_smaller_rungs" },
            fp.resident_bytes(),
            fp.pool_bytes,
            fp.trace_bytes,
            fp.data_bytes,
            fp.data_accesses,
            fp.address_reduction()
        );
        out.push_str("        \"schedulers\": [\n");
        for (i, kind) in SchedulerKind::ALL.iter().enumerate() {
            let (timing, _) = time_mode(
                || run_scheduler(*kind, &iset, Some(&p0.map), &run_cfg),
                events,
                reps,
            );
            eprintln!(
                "bench: scaling {:<6} @ {rung:>8} {:<9} {:>9.0} ev/s ({:.2}s)",
                bench.name(),
                kind.name(),
                timing.events_per_sec,
                timing.seconds
            );
            let _ = write!(
                out,
                "          {{ \"scheduler\": \"{}\", \"reps\": {reps}, \"seconds\": {:.3}, \"events_per_sec\": {:.1} }}{}",
                kind.name(),
                timing.seconds,
                timing.events_per_sec,
                if i + 1 < SchedulerKind::ALL.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        let rss = peak_rss_bytes().unwrap_or(0);
        let _ = write!(
            out,
            "        ],\n        \"peak_rss_bytes\": {rss}\n      }}{}",
            if ri + 1 < rungs.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n  }\n");
}
