//! Figure 7: effect of changing server load (batch size) on ADDICT —
//! total execution cycles and L1-I MPKI over Baseline, for batch sizes
//! 2, 4, 8, 16, 32 (Section 4.5).
//!
//! The (benchmark × batch size) grid fans out through the sweep engine
//! (`--threads N` / `ADDICT_THREADS`). Traces are generated in parallel
//! (one storage engine per worker, all six profile/eval ranges at once)
//! and replayed **interned**: every grid point of a benchmark borrows the
//! same `Arc`-shared slice pool, so the sweep's whole working set is the
//! deduplicated arena, not per-point trace copies.

use addict_bench::{
    header, norm, parse_bench_args, profile_eval_ranges, run_sweep, SweepPoint, SweepTraces,
};
use addict_core::algorithm1::find_migration_points_interned;
use addict_core::replay::ReplayConfig;
use addict_core::sched::SchedulerKind;

const BATCHES: [usize; 5] = [2, 4, 8, 16, 32];

fn main() {
    let args = parse_bench_args(600);
    let n = args.n_xcts;
    header("Figure 7", "batch-size sweep: ADDICT over Baseline", n);

    // Every selected benchmark's (profile, eval) ranges generate in one
    // parallel wave; the interned workloads share a single master pool.
    let ranges: Vec<_> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let workloads = addict_bench::generate_interned(&ranges, args.threads);
    let data: Vec<_> = args
        .benchmarks
        .iter()
        .zip(workloads.chunks_exact(2))
        .map(|(&bench, pair)| {
            let map = find_migration_points_interned(
                pair[0].as_set(),
                ReplayConfig::paper_default().sim.l1i,
            );
            (bench, &pair[1], map)
        })
        .collect();

    // Per benchmark: the Baseline reference, then ADDICT at each batch size.
    let mut grid: Vec<SweepPoint<'_>> = Vec::new();
    for (bench, eval, map) in &data {
        grid.push(SweepPoint {
            benchmark: *bench,
            scheduler: SchedulerKind::Baseline,
            replay_cfg: ReplayConfig::paper_default(),
            label: "baseline",
            traces: SweepTraces::Interned(eval.as_set()),
            map: Some(map),
        });
        for batch in BATCHES {
            grid.push(SweepPoint {
                benchmark: *bench,
                scheduler: SchedulerKind::Addict,
                replay_cfg: ReplayConfig::paper_default().with_batch_size(batch),
                label: "batch",
                traces: SweepTraces::Interned(eval.as_set()),
                map: Some(map),
            });
        }
    }
    let results = run_sweep(&grid, args.threads);

    println!(
        "\n{:<8} {:>6} {:>14} {:>14}",
        "bench", "batch", "exec cycles", "L1-I mpki"
    );
    let per_bench = 1 + BATCHES.len();
    for (chunk, (bench, ..)) in results.chunks_exact(per_bench).zip(&data) {
        let (base, sweeps) = chunk.split_first().expect("baseline plus batch points");
        for (batch, r) in BATCHES.iter().zip(sweeps) {
            println!(
                "{:<8} {:>6} {:>14.2} {:>14.2}",
                bench.name(),
                batch,
                norm(r.total_cycles, base.total_cycles),
                norm(r.stats.l1i_mpki(), base.stats.l1i_mpki()),
            );
        }
        println!();
    }
    println!("Paper: L1-I reduction roughly flat in batch size; total-execution");
    println!("improvement grows from batch >= 8 (cross-batch prefetching).");
}
