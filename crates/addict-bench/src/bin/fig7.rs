//! Figure 7: effect of changing server load (batch size) on ADDICT —
//! total execution cycles and L1-I MPKI over Baseline, for batch sizes
//! 2, 4, 8, 16, 32 (Section 4.5).

use addict_bench::{arg_xcts, header, migration_map, norm, profile_and_eval};
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_workloads::Benchmark;

fn main() {
    let n = arg_xcts(600);
    header("Figure 7", "batch-size sweep: ADDICT over Baseline", n);

    println!(
        "\n{:<8} {:>6} {:>14} {:>14}",
        "bench", "batch", "exec cycles", "L1-I mpki"
    );
    for bench in Benchmark::ALL {
        let (profile, eval) = profile_and_eval(bench, n, n);
        let base_cfg = ReplayConfig::paper_default();
        let map = migration_map(&profile, &base_cfg);
        let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &base_cfg);
        for batch in [2usize, 4, 8, 16, 32] {
            let cfg = ReplayConfig::paper_default().with_batch_size(batch);
            let r = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
            println!(
                "{:<8} {:>6} {:>14.2} {:>14.2}",
                bench.name(),
                batch,
                norm(r.total_cycles, base.total_cycles),
                norm(r.stats.l1i_mpki(), base.stats.l1i_mpki()),
            );
        }
        println!();
    }
    println!("Paper: L1-I reduction roughly flat in batch size; total-execution");
    println!("improvement grows from batch >= 8 (cross-batch prefetching).");
}
