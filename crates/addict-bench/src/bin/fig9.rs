//! Figure 9: context switches / thread migrations per 1000 instructions
//! (left) and the execution-cycle share spent on that overhead (right).

use addict_bench::{
    generate, header, migration_map, parse_bench_args, profile_eval_ranges, run_all,
};
use addict_core::replay::ReplayConfig;

fn main() {
    let args = parse_bench_args(600);
    let n = args.n_xcts;
    header(
        "Figure 9",
        "switch rate + overhead share of execution cycles",
        n,
    );
    let cfg = ReplayConfig::paper_default();

    // All (benchmark × profile/eval) ranges generate in one parallel wave.
    let ranges: Vec<_> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let mut generated = generate(&ranges, args.threads).into_iter();

    println!(
        "\n{:<8} {:<9} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "bench", "sched", "switches/ki", "base%", "i-stall%", "d-stall%", "ovh%"
    );
    let mut avg: std::collections::HashMap<String, (f64, f64, usize)> =
        std::collections::HashMap::new();
    for bench in args.benchmarks.iter().copied() {
        let profile = generated.next().expect("one profile range per benchmark");
        let eval = generated.next().expect("one eval range per benchmark");
        let map = migration_map(&profile, &cfg);
        for r in run_all(&eval, &map, &cfg) {
            let (base, istall, dstall, ovh) = r.stats.cycle_breakdown();
            println!(
                "{:<8} {:<9} {:>12.3} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.2}%",
                bench.name(),
                r.scheduler,
                r.stats.switches_per_ki(),
                100.0 * base,
                100.0 * istall,
                100.0 * dstall,
                100.0 * ovh
            );
            let e = avg.entry(r.scheduler.clone()).or_insert((0.0, 0.0, 0));
            e.0 += r.stats.switches_per_ki();
            e.1 += ovh;
            e.2 += 1;
        }
        println!();
    }
    println!("Average across workloads (the figure's right-hand breakdown):");
    for sched in ["STREX", "SLICC", "ADDICT"] {
        if let Some((sw, ovh, k)) = avg.get(sched) {
            println!(
                "  {:<9} switches/ki {:>6.3}   overhead {:>5.2}% of cycles (rest {:>5.2}%)",
                sched,
                sw / *k as f64,
                100.0 * ovh / *k as f64,
                100.0 * (1.0 - ovh / *k as f64)
            );
        }
    }
    println!("\nPaper: ADDICT migrates 85% less than STREX and 60% less than SLICC;");
    println!("even STREX spends only ~3% of cycles on context switches.");
}
