//! Figure 5: ADDICT's impact on instruction and data misses — L1-I, L1-D,
//! and L2 (shared LLC) misses per 1000 instructions, normalized over
//! Baseline, for STREX, SLICC, and ADDICT on the three benchmarks.

use addict_bench::{arg_xcts, header, migration_map, norm, profile_and_eval, run_all};
use addict_core::replay::ReplayConfig;
use addict_workloads::Benchmark;

fn main() {
    let n = arg_xcts(600);
    header(
        "Figure 5",
        "L1-I / L1-D / L2 MPKI normalized over Baseline",
        n,
    );
    let cfg = ReplayConfig::paper_default();

    println!(
        "\n{:<8} {:<9} {:>10} {:>10} {:>10}   (normalized; Baseline = 1.00)",
        "bench", "sched", "L1-I", "L1-D", "L2"
    );
    for bench in Benchmark::ALL {
        let (profile, eval) = profile_and_eval(bench, n, n);
        let map = migration_map(&profile, &cfg);
        let results = run_all(&eval, &map, &cfg);
        let base = &results[0];
        for r in &results {
            println!(
                "{:<8} {:<9} {:>10.2} {:>10.2} {:>10.2}   (abs: {:.2} / {:.2} / {:.3} mpki)",
                bench.name(),
                r.scheduler,
                norm(r.stats.l1i_mpki(), base.stats.l1i_mpki()),
                norm(r.stats.l1d_mpki(), base.stats.l1d_mpki()),
                norm(r.stats.llc_mpki(), base.stats.llc_mpki()),
                r.stats.l1i_mpki(),
                r.stats.l1d_mpki(),
                r.stats.llc_mpki(),
            );
        }
        println!();
    }
    println!("Paper: L1-I reduction ADDICT 85% > SLICC 60% > STREX 20%;");
    println!("L1-D increase SLICC ~40% / ADDICT ~25%, STREX slightly better;");
    println!("L2 ADDICT/SLICC ~-20%, STREX ~+50% (needs >LLC-sized data; see EXPERIMENTS.md).");
}
