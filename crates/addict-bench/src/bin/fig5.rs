//! Figure 5: ADDICT's impact on instruction and data misses — L1-I, L1-D,
//! and L2 (shared LLC) misses per 1000 instructions, normalized over
//! Baseline, for STREX, SLICC, and ADDICT on the selected benchmarks
//! (`--benchmarks`, default: the whole registry; the paper's figure shows
//! the TPC trio).

use addict_bench::{
    generate, header, migration_map, norm, parse_bench_args, profile_eval_ranges, run_all,
};
use addict_core::replay::ReplayConfig;

fn main() {
    let args = parse_bench_args(600);
    let n = args.n_xcts;
    header(
        "Figure 5",
        "L1-I / L1-D / L2 MPKI normalized over Baseline",
        n,
    );
    let cfg = ReplayConfig::paper_default();

    // All (benchmark × profile/eval) ranges generate in one parallel wave.
    let ranges: Vec<_> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let mut generated = generate(&ranges, args.threads).into_iter();

    println!(
        "\n{:<8} {:<9} {:>10} {:>10} {:>10}   (normalized; Baseline = 1.00)",
        "bench", "sched", "L1-I", "L1-D", "L2"
    );
    for bench in args.benchmarks.iter().copied() {
        let profile = generated.next().expect("one profile range per benchmark");
        let eval = generated.next().expect("one eval range per benchmark");
        let map = migration_map(&profile, &cfg);
        let results = run_all(&eval, &map, &cfg);
        let base = &results[0];
        for r in &results {
            println!(
                "{:<8} {:<9} {:>10.2} {:>10.2} {:>10.2}   (abs: {:.2} / {:.2} / {:.3} mpki)",
                bench.name(),
                r.scheduler,
                norm(r.stats.l1i_mpki(), base.stats.l1i_mpki()),
                norm(r.stats.l1d_mpki(), base.stats.l1d_mpki()),
                norm(r.stats.llc_mpki(), base.stats.llc_mpki()),
                r.stats.l1i_mpki(),
                r.stats.l1d_mpki(),
                r.stats.llc_mpki(),
            );
        }
        println!();
    }
    println!("Paper: L1-I reduction ADDICT 85% > SLICC 60% > STREX 20%;");
    println!("L1-D increase SLICC ~40% / ADDICT ~25%, STREX slightly better;");
    println!("L2 ADDICT/SLICC ~-20%, STREX ~+50% (needs >LLC-sized data; see EXPERIMENTS.md).");
}
