//! Ablation bench for the DESIGN.md §3 design choices (beyond the paper):
//!
//! * dynamic core reassignment on/off (Section 3.2.3),
//! * frequency-proportional replication on/off,
//! * OoO data-miss hiding factor sweep,
//! * batching by type vs mixed batches (via batch size 1 grouping).

use addict_bench::{arg_xcts, header, migration_map, norm, profile_and_eval};
use addict_core::plan::{AssignmentPlan, PlanConfig};
use addict_core::replay::ReplayConfig;
use addict_core::sched::{addict, run_scheduler, SchedulerKind};
use addict_workloads::Benchmark;

fn main() {
    let n = arg_xcts(400);
    header("Ablation", "ADDICT design-choice ablations (TPC-C)", n);
    let (profile, eval) = profile_and_eval(Benchmark::TpcC, n, n);
    let cfg = ReplayConfig::paper_default();
    let map = migration_map(&profile, &cfg);
    let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);

    println!(
        "\n{:<44} {:>12} {:>12}",
        "variant", "exec cycles", "L1-I mpki"
    );
    let report = |label: &str, r: &addict_core::replay::ReplayResult| {
        println!(
            "{:<44} {:>12.2} {:>12.2}",
            label,
            norm(r.total_cycles, base.total_cycles),
            norm(r.stats.l1i_mpki(), base.stats.l1i_mpki())
        );
    };

    // Full design.
    let plan = AssignmentPlan::build(&map, PlanConfig::new(cfg.sim.n_cores));
    let full = addict::run_with_options(&eval.xcts, &plan, &cfg, false);
    report("ADDICT (replication, no stealing)", &full);

    // Dynamic reassignment (idle-core stealing) on.
    let steal = addict::run_with_options(&eval.xcts, &plan, &cfg, true);
    report("ADDICT + dynamic idle-core stealing", &steal);

    // No replication: one core per slot.
    let plan_norep = AssignmentPlan::build(
        &map,
        PlanConfig {
            n_cores: cfg.sim.n_cores,
            replicate: false,
        },
    );
    let norep = addict::run_with_options(&eval.xcts, &plan_norep, &cfg, false);
    report("ADDICT without slot replication", &norep);

    // No replication but stealing compensates.
    let norep_steal = addict::run_with_options(&eval.xcts, &plan_norep, &cfg, true);
    report("ADDICT no replication + stealing", &norep_steal);

    // OoO hiding-factor sweep: how much of the conclusion rests on the
    // asymmetry between instruction and data stalls.
    println!("\nOoO on-chip data-miss hiding sweep (ADDICT exec cycles over Baseline):");
    for hide in [0.0, 0.35, 0.7, 0.9] {
        let mut sim = cfg.sim.clone();
        sim.ooo_hide_onchip = hide;
        let c = ReplayConfig {
            sim,
            ..ReplayConfig::paper_default()
        };
        let b = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &c);
        let a = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &c);
        println!(
            "  hide={hide:.2}: {:.2}",
            norm(a.total_cycles, b.total_cycles)
        );
    }

    // Next-line L1-I prefetcher (commodity-server default; orthogonal to
    // ADDICT per the paper's related work).
    println!("\nNext-line L1-I prefetcher (normalized L1-I mpki / exec cycles over the no-prefetch Baseline):");
    {
        let mut sim = cfg.sim.clone();
        sim.l1i_next_line_prefetch = true;
        let c = ReplayConfig {
            sim,
            ..ReplayConfig::paper_default()
        };
        let b = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &c);
        let a = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &c);
        println!(
            "  Baseline+NL: l1i {:.2}, cycles {:.2} | ADDICT+NL: l1i {:.2}, cycles {:.2}",
            norm(b.stats.l1i_mpki(), base.stats.l1i_mpki()),
            norm(b.total_cycles, base.total_cycles),
            norm(a.stats.l1i_mpki(), base.stats.l1i_mpki()),
            norm(a.total_cycles, base.total_cycles)
        );
    }

    // Migration-cost sensitivity (the paper estimates ~90 cycles).
    println!("\nMigration-cost sweep (ADDICT exec cycles over Baseline):");
    for cost in [0.0, 90.0, 450.0, 1800.0] {
        let mut sim = cfg.sim.clone();
        sim.migration_cycles = cost;
        let c = ReplayConfig {
            sim,
            ..ReplayConfig::paper_default()
        };
        let b = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &c);
        let a = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &c);
        println!(
            "  cost={cost:>6.0} cycles: {:.2}",
            norm(a.total_cycles, b.total_cycles)
        );
    }
}
