//! Ablation bench for the DESIGN.md §3 design choices (beyond the paper):
//!
//! * dynamic core reassignment on/off (Section 3.2.3),
//! * frequency-proportional replication on/off,
//! * OoO data-miss hiding factor sweep,
//! * batching by type vs mixed batches (via batch size 1 grouping).
//!
//! All variants form one grid executed by the sweep engine's generic layer
//! (`run_grid`, `--threads N` / `ADDICT_THREADS`): the plan-level variants
//! call into `addict::run_with_options` directly, the config sweeps go
//! through `run_scheduler`, and every run shares the traces, migration
//! map, and prebuilt plans immutably.

use addict_bench::{header, migration_map, norm, parse_bench_args, profile_and_eval_on, run_grid};
use addict_core::algorithm1::MigrationMap;
use addict_core::plan::{AssignmentPlan, PlanConfig};
use addict_core::replay::{ReplayConfig, ReplayResult};
use addict_core::sched::{addict, run_scheduler, SchedulerKind};
use addict_trace::XctTrace;
use addict_workloads::Benchmark;

/// One ablation grid cell.
enum Variant<'a> {
    /// ADDICT with an explicit assignment plan and stealing flag.
    Planned {
        label: &'static str,
        plan: &'a AssignmentPlan,
        steal: bool,
    },
    /// A scheduler under a modified replay config (paired with its own
    /// Baseline so the normalization shares the config).
    Configured {
        scheduler: SchedulerKind,
        cfg: Box<ReplayConfig>,
    },
}

// The grid cells (holding plan references) cross into worker threads.
const _: () = {
    const fn shared<T: Send + Sync>() {}
    shared::<Variant<'_>>();
    shared::<AssignmentPlan>();
};

fn main() {
    let args = parse_bench_args(400);
    let n = args.n_xcts;
    // Ablations run on one workload: TPC-C by default (the paper's main
    // evaluation mix), or the single benchmark named by `--benchmarks`.
    // An explicit multi-entry filter is an error, not a silent fallback.
    let bench = match args.benchmarks.as_slice() {
        [one] => *one,
        _ if !args.benchmarks_explicit => Benchmark::TpcC,
        other => {
            eprintln!(
                "error: ablation runs one workload; pass a single --benchmarks entry (got {})",
                other.iter().map(|b| b.name()).collect::<Vec<_>>().join(",")
            );
            std::process::exit(2);
        }
    };
    header(
        "Ablation",
        &format!("ADDICT design-choice ablations ({})", bench.name()),
        n,
    );
    let (profile, eval) = profile_and_eval_on(bench, n, n, args.threads);
    let cfg = ReplayConfig::paper_default();
    let map: MigrationMap = migration_map(&profile, &cfg);
    let traces: &[XctTrace] = &eval.xcts;

    let plan = AssignmentPlan::build(&map, PlanConfig::new(cfg.sim.n_cores));
    let plan_norep = AssignmentPlan::build(
        &map,
        PlanConfig {
            n_cores: cfg.sim.n_cores,
            replicate: false,
        },
    );

    let with_sim = |mutate: &dyn Fn(&mut addict_sim::SimConfig)| {
        let mut sim = cfg.sim.clone();
        mutate(&mut sim);
        ReplayConfig {
            sim,
            ..ReplayConfig::paper_default()
        }
    };

    let mut grid: Vec<Variant<'_>> = vec![
        Variant::Configured {
            scheduler: SchedulerKind::Baseline,
            cfg: Box::new(cfg.clone()),
        },
        Variant::Planned {
            label: "ADDICT (replication, no stealing)",
            plan: &plan,
            steal: false,
        },
        Variant::Planned {
            label: "ADDICT + dynamic idle-core stealing",
            plan: &plan,
            steal: true,
        },
        Variant::Planned {
            label: "ADDICT without slot replication",
            plan: &plan_norep,
            steal: false,
        },
        Variant::Planned {
            label: "ADDICT no replication + stealing",
            plan: &plan_norep,
            steal: true,
        },
    ];
    let head_rows = grid.len();

    // OoO hiding, next-line prefetch, and migration-cost sensitivity: each
    // config contributes a (Baseline, ADDICT) pair normalized within itself.
    let mut pair = |c: ReplayConfig| {
        grid.push(Variant::Configured {
            scheduler: SchedulerKind::Baseline,
            cfg: Box::new(c.clone()),
        });
        grid.push(Variant::Configured {
            scheduler: SchedulerKind::Addict,
            cfg: Box::new(c),
        });
    };
    const HIDES: [f64; 4] = [0.0, 0.35, 0.7, 0.9];
    for hide in HIDES {
        pair(with_sim(&|s| s.ooo_hide_onchip = hide));
    }
    pair(with_sim(&|s| s.l1i_next_line_prefetch = true));
    const COSTS: [f64; 4] = [0.0, 90.0, 450.0, 1800.0];
    for cost in COSTS {
        pair(with_sim(&|s| s.migration_cycles = cost));
    }

    let results = run_grid(&grid, args.threads, |_, v| match v {
        Variant::Planned { plan, steal, .. } => {
            addict::run_with_options(traces, plan, &cfg, *steal)
        }
        Variant::Configured { scheduler, cfg } => {
            run_scheduler(*scheduler, traces, Some(&map), cfg)
        }
    });

    let base = &results[0];
    println!(
        "\n{:<44} {:>12} {:>12}",
        "variant", "exec cycles", "L1-I mpki"
    );
    let report = |label: &str, r: &ReplayResult| {
        println!(
            "{:<44} {:>12.2} {:>12.2}",
            label,
            norm(r.total_cycles, base.total_cycles),
            norm(r.stats.l1i_mpki(), base.stats.l1i_mpki())
        );
    };
    for (v, r) in grid.iter().zip(&results).take(head_rows).skip(1) {
        let Variant::Planned { label, .. } = v else {
            unreachable!("head rows are plan variants");
        };
        report(label, r);
    }

    // The paired rows: results come back in grid order, so each config's
    // (Baseline, ADDICT) pair sits at a fixed offset.
    let mut pairs = results[head_rows..].chunks_exact(2);
    println!("\nOoO on-chip data-miss hiding sweep (ADDICT exec cycles over Baseline):");
    for hide in HIDES {
        let [b, a] = pairs.next().expect("one pair per hide factor") else {
            unreachable!("chunks_exact(2)");
        };
        println!(
            "  hide={hide:.2}: {:.2}",
            norm(a.total_cycles, b.total_cycles)
        );
    }

    println!("\nNext-line L1-I prefetcher (normalized L1-I mpki / exec cycles over the no-prefetch Baseline):");
    {
        let [b, a] = pairs.next().expect("the prefetcher pair") else {
            unreachable!("chunks_exact(2)");
        };
        println!(
            "  Baseline+NL: l1i {:.2}, cycles {:.2} | ADDICT+NL: l1i {:.2}, cycles {:.2}",
            norm(b.stats.l1i_mpki(), base.stats.l1i_mpki()),
            norm(b.total_cycles, base.total_cycles),
            norm(a.stats.l1i_mpki(), base.stats.l1i_mpki()),
            norm(a.total_cycles, base.total_cycles)
        );
    }

    println!("\nMigration-cost sweep (ADDICT exec cycles over Baseline):");
    for cost in COSTS {
        let [b, a] = pairs.next().expect("one pair per migration cost") else {
            unreachable!("chunks_exact(2)");
        };
        println!(
            "  cost={cost:>6.0} cycles: {:.2}",
            norm(a.total_cycles, b.total_cycles)
        );
    }
}
