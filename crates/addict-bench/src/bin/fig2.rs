//! Figure 2: overlaps in instruction and data footprints across different
//! instantiations of the transactions in a workload mix, transactions of
//! the same type, and database operations.

use addict_analysis::{overlap_histogram, OverlapHistogram, OverlapScope};
use addict_bench::{arg_xcts, header, profile_and_eval};
use addict_trace::{OpKind, WorkloadTrace, XctTypeId};
use addict_workloads::{tpcc, tpce, Benchmark};

fn row(label: &str, h: Option<(OverlapHistogram, OverlapHistogram)>) {
    let Some((i, d)) = h else {
        println!("  {label:<28} (no instances)");
        return;
    };
    let fmt = |h: &OverlapHistogram| {
        format!(
            "[0,30) {:>4.1}%  [30,60) {:>4.1}%  [60,90) {:>4.1}%  [90,100) {:>4.1}%  100 {:>4.1}%",
            h.buckets[0] * 100.0,
            h.buckets[1] * 100.0,
            h.buckets[2] * 100.0,
            h.buckets[3] * 100.0,
            h.buckets[4] * 100.0
        )
    };
    println!(
        "  {:<28} instr ({:>5} inst, {:>6} blk): {}",
        label,
        i.instances,
        i.footprint_blocks,
        fmt(&i)
    );
    println!(
        "  {:<28} data  ({:>5} inst, {:>6} blk): {}",
        "",
        d.instances,
        d.footprint_blocks,
        fmt(&d)
    );
    println!(
        "  {:<28} instr >=90% common: {:>5.1}%   data >=90% common: {:>5.1}%",
        "",
        i.common_share(0.9) * 100.0,
        d.common_share(0.9) * 100.0
    );
}

fn pies(trace: &WorkloadTrace, scopes: &[(&str, OverlapScope)]) {
    for (label, scope) in scopes {
        row(label, overlap_histogram(trace, *scope));
    }
}

fn main() {
    let n = arg_xcts(1000);
    header("Figure 2", "instruction/data footprint overlap pies", n);

    // TPC-B: single transaction type; the figure shows its operations and
    // the whole mix.
    let (tpcb, _) = profile_and_eval(Benchmark::TpcB, n, 0);
    println!("\nTPC-B (mix = AccountUpdate):");
    pies(
        &tpcb,
        &[
            ("insert (mix)", OverlapScope::Op(OpKind::Insert)),
            ("update (mix)", OverlapScope::Op(OpKind::Update)),
            ("probe (mix)", OverlapScope::Op(OpKind::Probe)),
            ("all (mix)", OverlapScope::Mix),
        ],
    );

    // TPC-C: the figure's NewOrder column plus the mix.
    let (tpcc_t, _) = profile_and_eval(Benchmark::TpcC, n, 0);
    let no = tpcc::NEW_ORDER;
    println!("\nTPC-C (NewOrder = most frequent type):");
    pies(
        &tpcc_t,
        &[
            (
                "NewOrder insert",
                OverlapScope::OpInType(no, OpKind::Insert),
            ),
            (
                "NewOrder update",
                OverlapScope::OpInType(no, OpKind::Update),
            ),
            ("NewOrder probe", OverlapScope::OpInType(no, OpKind::Probe)),
            ("NewOrder (same-type)", OverlapScope::XctType(no)),
            ("all (mix)", OverlapScope::Mix),
        ],
    );

    // TPC-E: the figure's TradeStatus column plus the mix.
    let (tpce_t, _) = profile_and_eval(Benchmark::TpcE, n, 0);
    let ts = tpce::TRADE_STATUS;
    println!("\nTPC-E (TradeStatus = most frequent type, 19% of mix):");
    pies(
        &tpce_t,
        &[
            (
                "TradeStatus probe",
                OverlapScope::OpInType(ts, OpKind::Probe),
            ),
            ("TradeStatus scan", OverlapScope::OpInType(ts, OpKind::Scan)),
            ("TradeStatus (same-type)", OverlapScope::XctType(ts)),
            ("all (mix)", OverlapScope::Mix),
        ],
    );

    // Section 2.2.2: where the few commonly accessed data blocks live.
    println!("\nSources of shared data (Section 2.2.2, TPC-C mix):");
    println!(
        "  {:<12} {:>10} {:>12} {:>10} {:>14}",
        "region", "blocks", "accesses", "read %", ">=50% common"
    );
    let sources = addict_analysis::data_sources(&tpcc_t);
    for region in addict_analysis::DataRegion::ALL {
        if let Some(s) = sources.get(&region) {
            println!(
                "  {:<12} {:>10} {:>12} {:>9.0}% {:>13.1}%",
                region.name(),
                s.footprint_blocks,
                s.accesses,
                100.0 * s.read_share(),
                100.0 * s.common_share()
            );
        }
    }
    println!("  (paper: metadata, lock manager, buffer pool, index roots are the");
    println!("   commonly accessed — mostly read — data; record pages are private)");

    println!("\nPaper's headline numbers for comparison:");
    println!("  same-type instruction overlap 53-98% (TradeStatus: 98%)");
    println!("  probe/update op overlap >=90% (TPC-B), >=70% (TPC-C NewOrder)");
    println!("  insert op overlap ~50-60%  |  data overlap at most 6%");

    // Machine-checkable summary for EXPERIMENTS.md.
    let ts_overlap = overlap_histogram(&tpce_t, OverlapScope::XctType(ts))
        .map(|(i, _)| i.common_share(0.9) * 100.0)
        .unwrap_or(0.0);
    let mix_data = overlap_histogram(&tpcc_t, OverlapScope::Mix)
        .map(|(_, d)| d.common_share(0.9) * 100.0)
        .unwrap_or(0.0);
    println!("\nSummary: TradeStatus same-type instr overlap {ts_overlap:.1}% | TPC-C mix data >=90% common {mix_data:.1}%");
    let _ = XctTypeId(0);
}
