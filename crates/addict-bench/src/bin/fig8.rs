//! Figure 8: (a) ADDICT on a deeper memory hierarchy — an extra 256 KB
//! private L2 per core, the shared cache becoming an L3 (Section 4.6);
//! (b) ADDICT's impact on average per-core power (Section 4.7).
//!
//! The whole (benchmark × hierarchy × scheduler) grid fans out through the
//! sweep engine (`--threads N` / `ADDICT_THREADS`); trace generation fans
//! out the same way (one storage engine per worker) and the grid replays
//! the interned trace form out of one shared slice pool. Algorithm 1's
//! migration map depends only on the L1-I geometry, which the deep
//! hierarchy does not change, so one map per benchmark is computed up
//! front and shared by every grid point.

use addict_bench::{
    header, norm, parse_bench_args, profile_eval_ranges, run_sweep, SweepPoint, SweepTraces,
};
use addict_core::algorithm1::find_migration_points_interned;
use addict_core::replay::ReplayConfig;
use addict_core::sched::SchedulerKind;
use addict_sim::SimConfig;

fn main() {
    let args = parse_bench_args(600);
    let n = args.n_xcts;
    header(
        "Figure 8",
        "deeper hierarchy (a) + power (b): ADDICT over Baseline",
        n,
    );

    // Every selected benchmark's (profile, eval) ranges generate in one
    // parallel wave — one storage engine per worker — and the interned
    // workloads share a single Arc'd slice pool across the whole grid.
    let ranges: Vec<_> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let workloads = addict_bench::generate_interned(&ranges, args.threads);
    let data: Vec<_> = args
        .benchmarks
        .iter()
        .zip(workloads.chunks_exact(2))
        .map(|(&bench, pair)| {
            let map = find_migration_points_interned(
                pair[0].as_set(),
                ReplayConfig::paper_default().sim.l1i,
            );
            (bench, &pair[1], map)
        })
        .collect();

    let mut grid: Vec<SweepPoint<'_>> = Vec::new();
    for (bench, eval, map) in &data {
        for (label, sim) in [
            ("shallow", SimConfig::paper_default()),
            ("deep", SimConfig::paper_deep()),
        ] {
            for scheduler in [SchedulerKind::Baseline, SchedulerKind::Addict] {
                grid.push(SweepPoint {
                    benchmark: *bench,
                    scheduler,
                    replay_cfg: ReplayConfig {
                        sim: sim.clone(),
                        ..ReplayConfig::paper_default()
                    },
                    label,
                    traces: SweepTraces::Interned(eval.as_set()),
                    map: Some(map),
                });
            }
        }
    }
    let results = run_sweep(&grid, args.threads);

    println!(
        "\n{:<8} {:>16} {:>16} {:>15} {:>12}",
        "bench", "shallow cycles", "deep cycles", "power (shallow)", "power (deep)"
    );
    for (chunk, (bench, ..)) in results.chunks_exact(4).zip(&data) {
        // Grid order is fixed by construction; destructure it directly
        // rather than matching on labels.
        let [base_shallow, addict_shallow, base_deep, addict_deep] = chunk else {
            unreachable!("four grid points per benchmark");
        };
        println!(
            "{:<8} {:>16.2} {:>16.2} {:>15.2} {:>12.2}",
            bench.name(),
            norm(addict_shallow.total_cycles, base_shallow.total_cycles),
            norm(addict_deep.total_cycles, base_deep.total_cycles),
            norm(
                addict_shallow.power.per_core_power_w,
                base_shallow.power.per_core_power_w
            ),
            norm(
                addict_deep.power.per_core_power_w,
                base_deep.power.per_core_power_w
            ),
        );
    }
    println!("\nPaper: 45% average improvement on the shallow hierarchy drops to");
    println!("~15% on the deep one (the 256 KB private L2 holds Shore-MT's whole");
    println!("128-256 KB instruction footprint); power ~= 1.1x Baseline.");
}
