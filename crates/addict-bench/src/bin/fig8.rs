//! Figure 8: (a) ADDICT on a deeper memory hierarchy — an extra 256 KB
//! private L2 per core, the shared cache becoming an L3 (Section 4.6);
//! (b) ADDICT's impact on average per-core power (Section 4.7).

use addict_bench::{arg_xcts, header, migration_map, norm, profile_and_eval};
use addict_core::replay::ReplayConfig;
use addict_core::sched::{run_scheduler, SchedulerKind};
use addict_sim::SimConfig;
use addict_workloads::Benchmark;

fn main() {
    let n = arg_xcts(600);
    header(
        "Figure 8",
        "deeper hierarchy (a) + power (b): ADDICT over Baseline",
        n,
    );

    println!(
        "\n{:<8} {:>16} {:>16} {:>14}",
        "bench", "shallow cycles", "deep cycles", "power (shallow)"
    );
    for bench in Benchmark::ALL {
        let (profile, eval) = profile_and_eval(bench, n, n);

        let mut ratios = Vec::new();
        let mut power_ratio = 0.0;
        for (label, sim) in [
            ("shallow", SimConfig::paper_default()),
            ("deep", SimConfig::paper_deep()),
        ] {
            let cfg = ReplayConfig {
                sim,
                ..ReplayConfig::paper_default()
            };
            let map = migration_map(&profile, &cfg);
            let base = run_scheduler(SchedulerKind::Baseline, &eval.xcts, Some(&map), &cfg);
            let addict = run_scheduler(SchedulerKind::Addict, &eval.xcts, Some(&map), &cfg);
            ratios.push(norm(addict.total_cycles, base.total_cycles));
            if label == "shallow" {
                power_ratio = norm(addict.power.per_core_power_w, base.power.per_core_power_w);
            }
        }
        println!(
            "{:<8} {:>16.2} {:>16.2} {:>14.2}",
            bench.name(),
            ratios[0],
            ratios[1],
            power_ratio
        );
    }
    println!("\nPaper: 45% average improvement on the shallow hierarchy drops to");
    println!("~15% on the deep one (the 256 KB private L2 holds Shore-MT's whole");
    println!("128-256 KB instruction footprint); power ~= 1.1x Baseline.");
}
