//! Figure 4: percentage of database-operation instances whose migration
//! points exactly match the ones ADDICT picked during profiling, as the
//! number of transaction traces grows (1000 vs 10000 in the paper).

use addict_bench::{header, migration_map, PROFILE_SEED};
use addict_core::replay::ReplayConfig;
use addict_trace::{OpKind, XctTypeId};
use addict_workloads::{collect_traces, tpcc, Benchmark};

fn main() {
    // Scaled defaults: the paper profiles on 1000 and validates on up to
    // 10000 further traces. First argv overrides the smaller count.
    let base: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let large = base * 10;
    header("Figure 4", "migration-point stability vs trace count", base);
    let cfg = ReplayConfig::paper_default();

    let cases: [(Benchmark, XctTypeId, &str); 3] = [
        (
            Benchmark::TpcB,
            addict_workloads::tpcb::ACCOUNT_UPDATE,
            "TPC-B AccountUpdate",
        ),
        (Benchmark::TpcC, tpcc::NEW_ORDER, "TPC-C NewOrder"),
        (Benchmark::TpcC, tpcc::PAYMENT, "TPC-C Payment"),
    ];

    println!(
        "\n{:<22} {:<8} {:>12} {:>12}",
        "transaction",
        "op",
        format!("{base} traces"),
        format!("{large} traces")
    );
    for (bench, ty, label) in cases {
        let (mut engine, mut workload) = bench.setup();
        let profile = collect_traces(&mut engine, workload.as_mut(), base, PROFILE_SEED);
        let map = migration_map(&profile, &cfg);
        // Fresh traces after the profiling window, evaluated in two sizes
        // (streamed in chunks to bound memory, like the paper's 10k runs).
        let small = collect_traces(&mut engine, workload.as_mut(), base, PROFILE_SEED + 100);
        let mut printed_any = false;
        for op in [
            OpKind::Probe,
            OpKind::Update,
            OpKind::Insert,
            OpKind::Scan,
            OpKind::Delete,
        ] {
            let Some(s_small) = map.stability(&small.xcts, cfg.sim.l1i, ty, op) else {
                continue;
            };
            // Accumulate the large set in chunks.
            let mut matched = 0.0f64;
            let mut chunks = 0usize;
            for chunk in 0..10 {
                let t = collect_traces(
                    &mut engine,
                    workload.as_mut(),
                    base,
                    PROFILE_SEED + 200 + chunk as u64,
                );
                if let Some(s) = map.stability(&t.xcts, cfg.sim.l1i, ty, op) {
                    matched += s;
                    chunks += 1;
                }
            }
            let s_large = if chunks > 0 {
                matched / chunks as f64
            } else {
                0.0
            };
            println!(
                "{:<22} {:<8} {:>11.1}% {:>11.1}%",
                if printed_any { "" } else { label },
                op.name(),
                s_small * 100.0,
                s_large * 100.0
            );
            printed_any = true;
        }
    }
    println!("\nPaper: probe/update stable in >=90% of instances; insert ~45-55%");
    println!("(most varied instruction stream); stability flat from 1000 to 10000.");
}
