//! Figure 6: impact on performance — total execution cycles to complete
//! the traces (left) and average transaction latency (right), normalized
//! over Baseline.

use addict_bench::{
    generate, header, migration_map, norm, parse_bench_args, profile_eval_ranges, run_all,
};
use addict_core::replay::ReplayConfig;

fn main() {
    let args = parse_bench_args(600);
    let n = args.n_xcts;
    header(
        "Figure 6",
        "total execution cycles + avg transaction latency",
        n,
    );
    let cfg = ReplayConfig::paper_default();

    // All (benchmark × profile/eval) ranges generate in one parallel wave.
    let ranges: Vec<_> = args
        .benchmarks
        .iter()
        .flat_map(|&b| profile_eval_ranges(b, n, n))
        .collect();
    let mut generated = generate(&ranges, args.threads).into_iter();

    println!(
        "\n{:<8} {:<9} {:>12} {:>12}   (normalized; Baseline = 1.00)",
        "bench", "sched", "exec cycles", "latency"
    );
    for bench in args.benchmarks.iter().copied() {
        let profile = generated.next().expect("one profile range per benchmark");
        let eval = generated.next().expect("one eval range per benchmark");
        let map = migration_map(&profile, &cfg);
        let results = run_all(&eval, &map, &cfg);
        let base = &results[0];
        for r in &results {
            println!(
                "{:<8} {:<9} {:>12.2} {:>12.2}   (abs: {:.2e} cycles, {:.2e} cyc/xct)",
                bench.name(),
                r.scheduler,
                norm(r.total_cycles, base.total_cycles),
                norm(r.avg_latency_cycles, base.avg_latency_cycles),
                r.total_cycles,
                r.avg_latency_cycles,
            );
        }
        println!();
    }
    println!("Paper: exec-time reduction ADDICT 45% > SLICC 35% > STREX 17%;");
    println!("latency increase: STREX 7-8x worst, ADDICT lowest (~1.6x).");
    println!("Note: our Baseline latency contains no queueing by construction,");
    println!("so mechanism/Baseline latency ratios overstate (EXPERIMENTS.md).");
}
