//! Figure 1: flow graph of the common database operations with the
//! percentage of instruction footprint per significant code part, measured
//! over transactions of the TPC-C mix.

use addict_analysis::op_flow;
use addict_bench::{arg_xcts, header, profile_and_eval};
use addict_trace::OpKind;
use addict_workloads::Benchmark;

fn main() {
    let n = arg_xcts(1000);
    header(
        "Figure 1",
        "operation flow-graph footprint percentages (TPC-C mix)",
        n,
    );
    let (trace, _) = profile_and_eval(Benchmark::TpcC, n, 0);

    for op in [
        OpKind::Probe,
        OpKind::Scan,
        OpKind::Update,
        OpKind::Insert,
        OpKind::Delete,
    ] {
        let edges = op_flow(&trace, op);
        if edges.is_empty() {
            continue;
        }
        println!(
            "\n{}:",
            match op {
                OpKind::Probe => "index probe",
                OpKind::Scan => "index scan",
                OpKind::Update => "update tuple",
                OpKind::Insert => "insert tuple",
                OpKind::Delete => "delete tuple (paper omits: \"similar to insert\")",
            }
        );
        println!(
            "  {:<22} -> {:<26} {:>9} {:>7} path",
            "from", "to", "measured", "paper"
        );
        for e in edges {
            println!(
                "  {:<22} -> {:<26} {:>8.1}% {:>6.1}% {}",
                e.from,
                e.to,
                e.measured_pct,
                e.paper_pct,
                if e.conditional { "(conditional)" } else { "" }
            );
        }
    }
}
