//! Table 1: the simulated system parameters.

use addict_sim::SimConfig;

fn main() {
    let c = SimConfig::paper_default();
    println!("Table 1: System Parameters (simulated)");
    println!("---------------------------------------------------------");
    println!(
        "Processing   {} OoO cores, {:.1} GHz",
        c.n_cores, c.clock_ghz
    );
    println!(
        "Cores        base CPI {:.2} (6-wide, 4-IPC practical peak)",
        c.base_cpi
    );
    println!(
        "Private L1   {} KB I + {} KB D, 64 B blocks, {}-way",
        c.l1i.size_bytes / 1024,
        c.l1d.size_bytes / 1024,
        c.l1i.ways
    );
    println!(
        "             {:.0}-cycle load-to-use (folded into base CPI), MESI for L1-D",
        c.l1_hit_cycles
    );
    println!(
        "L2 NUCA      shared, {} MB per core ({} MB total), {}-way",
        c.llc_per_core.size_bytes / (1024 * 1024),
        c.llc_total_bytes() / (1024 * 1024),
        c.llc_per_core.ways
    );
    println!(
        "             64 B blocks, {} banks, {:.0}-cycle hit latency",
        c.n_cores, c.llc_hit_cycles
    );
    println!(
        "Interconnect 2D torus, {:.0}-cycle hop latency",
        c.hop_cycles
    );
    println!(
        "Memory       {:.0} ns latency ({:.0} cycles at {:.1} GHz)",
        c.mem_latency_ns,
        c.mem_latency_cycles(),
        c.clock_ghz
    );
    println!(
        "Migration    {:.0} cycles per thread migration (~6 cache lines via LLC)",
        c.migration_cycles
    );
    println!(
        "Deep option  +{} KB private L2, {:.0}-cycle hit (Section 4.6)",
        c.l2_private.size_bytes / 1024,
        c.l2_private_hit_cycles
    );
    println!(
        "OoO hiding   on-chip data-miss {:.0}% hidden, off-chip {:.0}% hidden",
        c.ooo_hide_onchip * 100.0,
        c.ooo_hide_offchip * 100.0
    );
}
