//! Figure 3: average number of accesses to each memory address per
//! instance of TPC-B's AccountUpdate transaction and insert-tuple
//! operation, ordered by cross-instance commonality.

use addict_analysis::{reuse_profile, ReusePoint};
use addict_bench::{arg_xcts, header, profile_and_eval};
use addict_trace::OpKind;
use addict_workloads::{tpcb, Benchmark};

fn summarize(title: &str, points: &[ReusePoint]) {
    // Bucket the x-axis (commonality) as the figure's left-to-right order.
    let buckets = [
        (0.0, 0.3),
        (0.3, 0.6),
        (0.6, 0.9),
        (0.9, 1.0 - 1e-9),
        (1.0 - 1e-9, 1.1),
    ];
    println!("  {title}");
    println!(
        "    {:<18} {:>8} {:>12}",
        "commonality", "blocks", "avg reuse"
    );
    for (lo, hi) in buckets {
        let sel: Vec<&ReusePoint> = points
            .iter()
            .filter(|p| p.commonality >= lo && p.commonality < hi)
            .collect();
        if sel.is_empty() {
            continue;
        }
        let avg = sel.iter().map(|p| p.avg_reuse).sum::<f64>() / sel.len() as f64;
        let label = if lo >= 1.0 - 1e-9 {
            "100% (all inst.)".to_owned()
        } else {
            format!("[{:.0}%,{:.0}%)", lo * 100.0, hi * 100.0)
        };
        println!("    {:<18} {:>8} {:>12.1}", label, sel.len(), avg);
    }
    let (common, rest) = addict_analysis::reuse::ReuseProfile::common_vs_rest(points);
    println!(
        "    -> blocks in ALL instances reuse {common:.1}x/instance vs {rest:.1}x for the rest ({})",
        if common > rest { "paper's trend holds" } else { "TREND VIOLATED" }
    );
}

fn main() {
    let n = arg_xcts(1000);
    header(
        "Figure 3",
        "per-instance reuse vs cross-instance commonality (TPC-B)",
        n,
    );
    let (trace, _) = profile_and_eval(Benchmark::TpcB, n, 0);

    println!("\nAccountUpdate transaction:");
    let p = reuse_profile(&trace, tpcb::ACCOUNT_UPDATE, None).expect("traces present");
    summarize("instruction cache blocks", &p.instr);
    summarize("data cache blocks", &p.data);

    println!("\ninsert-tuple operation:");
    let p = reuse_profile(&trace, tpcb::ACCOUNT_UPDATE, Some(OpKind::Insert))
        .expect("insert instances present");
    summarize("instruction cache blocks", &p.instr);
    summarize("data cache blocks", &p.data);

    println!("\nPaper's observation: addresses common across instances are also the");
    println!("most frequently reused within each instance (Section 2.3).");
}
