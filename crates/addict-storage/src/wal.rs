//! The write-ahead log: monotone LSNs, an in-memory tail window, and flush
//! accounting.
//!
//! The log tail is one of the few *written* shared data structures in the
//! system — every transaction appends to it, which is why log-buffer blocks
//! show up among the commonly accessed data of Section 2.2.2. The engine
//! maps each append's byte offset to a log-buffer block via
//! `addict_trace::layout::log_block`.

use crate::rid::Rid;

/// What a log record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPayload {
    /// Transaction begin.
    XctBegin,
    /// Transaction commit.
    XctCommit,
    /// Transaction abort.
    XctAbort,
    /// Record update (before/after images elided; size accounted).
    Update {
        /// Table updated.
        table: u32,
        /// Record updated.
        rid: Rid,
    },
    /// Record insertion.
    Insert {
        /// Table inserted into.
        table: u32,
        /// New record's location.
        rid: Rid,
    },
    /// Record deletion.
    Delete {
        /// Table deleted from.
        table: u32,
        /// Old record's location.
        rid: Rid,
    },
    /// Heap/index page allocation.
    PageAlloc {
        /// The new page.
        page: u64,
    },
    /// B+-tree structural modification (split/merge/root change).
    Smo {
        /// Index undergoing the SMO.
        index: u32,
    },
}

impl LogPayload {
    /// Approximate serialized size in bytes (drives log-tail advancement).
    pub fn size(&self) -> u64 {
        match self {
            LogPayload::XctBegin | LogPayload::XctCommit | LogPayload::XctAbort => 24,
            LogPayload::Update { .. } => 120,
            LogPayload::Insert { .. } => 140,
            LogPayload::Delete { .. } => 96,
            LogPayload::PageAlloc { .. } => 48,
            LogPayload::Smo { .. } => 160,
        }
    }
}

/// One log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number (monotone from 1).
    pub lsn: u64,
    /// Owning transaction.
    pub xct: u64,
    /// Payload.
    pub payload: LogPayload,
    /// Byte offset of this record in the log stream.
    pub offset: u64,
}

/// The log manager.
#[derive(Debug)]
pub struct LogManager {
    records: Vec<LogRecord>,
    next_lsn: u64,
    tail_bytes: u64,
    durable_lsn: u64,
    appended_total: u64,
    /// Resident-window bound: older records are dropped once flushed so
    /// population runs do not grow memory without bound.
    max_resident: usize,
}

impl LogManager {
    /// A log manager keeping at most `max_resident` records in memory.
    pub fn new(max_resident: usize) -> Self {
        assert!(max_resident > 0);
        LogManager {
            records: Vec::new(),
            next_lsn: 1,
            tail_bytes: 0,
            durable_lsn: 0,
            appended_total: 0,
            max_resident,
        }
    }

    /// Append a record; returns `(lsn, byte offset of the record)`.
    pub fn append(&mut self, xct: u64, payload: LogPayload) -> (u64, u64) {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let offset = self.tail_bytes;
        self.tail_bytes += payload.size();
        self.appended_total += 1;
        self.records.push(LogRecord {
            lsn,
            xct,
            payload,
            offset,
        });
        if self.records.len() > self.max_resident {
            // Simulate archiving the flushed prefix.
            let drop_to = self.records.len() - self.max_resident / 2;
            let dropped_last = self.records[drop_to - 1].lsn;
            self.durable_lsn = self.durable_lsn.max(dropped_last);
            self.records.drain(..drop_to);
        }
        (lsn, offset)
    }

    /// Force the log: everything appended so far becomes durable.
    pub fn flush(&mut self) -> u64 {
        self.durable_lsn = self.next_lsn - 1;
        self.durable_lsn
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Byte offset of the current tail.
    pub fn tail_bytes(&self) -> u64 {
        self.tail_bytes
    }

    /// Total records ever appended.
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// In-memory (unarchived) records.
    pub fn resident(&self) -> &[LogRecord] {
        &self.records
    }

    /// Records of one transaction still resident (newest run only).
    pub fn records_of(&self, xct: u64) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.xct == xct)
    }
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotone_and_dense() {
        let mut log = LogManager::default();
        let (l1, o1) = log.append(1, LogPayload::XctBegin);
        let (l2, o2) = log.append(
            1,
            LogPayload::Update {
                table: 0,
                rid: Rid::new(1, 2),
            },
        );
        let (l3, _) = log.append(2, LogPayload::XctBegin);
        assert_eq!((l1, l2, l3), (1, 2, 3));
        assert_eq!(o1, 0);
        assert_eq!(o2, LogPayload::XctBegin.size());
        assert_eq!(log.appended_total(), 3);
    }

    #[test]
    fn flush_advances_durable_lsn() {
        let mut log = LogManager::default();
        log.append(1, LogPayload::XctBegin);
        log.append(1, LogPayload::XctCommit);
        assert_eq!(log.durable_lsn(), 0);
        assert_eq!(log.flush(), 2);
        assert_eq!(log.durable_lsn(), 2);
    }

    #[test]
    fn resident_window_is_bounded() {
        let mut log = LogManager::new(100);
        for i in 0..1000 {
            log.append(i % 7, LogPayload::XctBegin);
        }
        assert!(log.resident().len() <= 100);
        assert_eq!(log.appended_total(), 1000);
        // Archived records became durable.
        assert!(log.durable_lsn() >= 900);
        // LSNs keep counting past the window.
        assert_eq!(log.next_lsn(), 1001);
    }

    #[test]
    fn per_xct_filter() {
        let mut log = LogManager::default();
        log.append(1, LogPayload::XctBegin);
        log.append(2, LogPayload::XctBegin);
        log.append(1, LogPayload::XctCommit);
        assert_eq!(log.records_of(1).count(), 2);
        assert_eq!(log.records_of(2).count(), 1);
    }

    #[test]
    fn payload_sizes_positive() {
        for p in [
            LogPayload::XctBegin,
            LogPayload::Update {
                table: 0,
                rid: Rid::new(0, 0),
            },
            LogPayload::Smo { index: 1 },
        ] {
            assert!(p.size() > 0);
        }
    }
}
