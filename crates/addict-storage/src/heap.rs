//! Heap files: an append-friendly collection of slotted pages per table,
//! with a free-space hint and explicit page allocation (the `allocate page`
//! path of Figure 1 — taken only when no existing page fits the record).

use std::collections::HashMap;

use crate::error::{StorageError, StorageResult};
use crate::page::SlottedPage;
use crate::rid::Rid;

/// Global page-id allocator shared by heaps and indexes so every page in
/// the database has a unique id (and therefore a unique data-block range).
#[derive(Debug, Default)]
pub struct PageAllocator {
    next: u64,
}

impl PageAllocator {
    /// Fresh allocator starting at page 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next page id.
    pub fn alloc(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Number of pages allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

/// Result of a heap insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapInsert {
    /// Where the record landed.
    pub rid: Rid,
    /// Whether a new page had to be allocated (drives the `allocate page`
    /// instrumentation).
    pub allocated_page: bool,
}

/// A table's record storage.
#[derive(Debug, Default)]
pub struct HeapFile {
    /// Pages in allocation order.
    pages: Vec<(u64, SlottedPage)>,
    /// page id -> index in `pages`.
    by_id: HashMap<u64, usize>,
    /// Index of the first page that might have free space (monotone hint;
    /// records are near-uniform per table so this stays accurate).
    free_hint: usize,
}

impl HeapFile {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total live records.
    pub fn n_records(&self) -> usize {
        self.pages.iter().map(|(_, p)| p.n_records()).sum()
    }

    /// Insert a record, allocating a page if no existing page fits.
    pub fn insert(
        &mut self,
        alloc: &mut PageAllocator,
        record: &[u8],
    ) -> StorageResult<HeapInsert> {
        if record.len() > crate::page::PAGE_BYTES - 64 {
            return Err(StorageError::RecordTooLarge { size: record.len() });
        }
        // Try from the hint forward.
        for i in self.free_hint..self.pages.len() {
            let (pid, page) = &mut self.pages[i];
            if page.fits(record.len()) {
                let slot = page.insert(record).expect("fits() checked");
                return Ok(HeapInsert {
                    rid: Rid::new(*pid, slot),
                    allocated_page: false,
                });
            }
            if i == self.free_hint && page.total_free() < 64 {
                // Page essentially full: advance the hint past it.
                self.free_hint += 1;
            }
        }
        // Allocate a fresh page.
        let pid = alloc.alloc();
        let mut page = SlottedPage::new();
        let slot = page
            .insert(record)
            .expect("fresh page fits any legal record");
        self.by_id.insert(pid, self.pages.len());
        self.pages.push((pid, page));
        Ok(HeapInsert {
            rid: Rid::new(pid, slot),
            allocated_page: true,
        })
    }

    /// Read a record.
    pub fn get(&self, rid: Rid) -> StorageResult<&[u8]> {
        self.page(rid.page)
            .and_then(|p| p.get(rid.slot))
            .ok_or(StorageError::InvalidRid(rid))
    }

    /// Byte offset of a record within its page (for address mapping).
    pub fn record_offset(&self, rid: Rid) -> StorageResult<usize> {
        self.page(rid.page)
            .and_then(|p| p.record_offset(rid.slot))
            .ok_or(StorageError::InvalidRid(rid))
    }

    /// Overwrite a record in place (may relocate within its page).
    pub fn update(&mut self, rid: Rid, record: &[u8]) -> StorageResult<()> {
        let page = self
            .page_mut(rid.page)
            .ok_or(StorageError::InvalidRid(rid))?;
        page.update(rid.slot, record)
            .map_err(|_| StorageError::RecordTooLarge { size: record.len() })
    }

    /// Delete a record.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<()> {
        let idx = *self
            .by_id
            .get(&rid.page)
            .ok_or(StorageError::InvalidRid(rid))?;
        if self.pages[idx].1.delete(rid.slot) {
            // Freed space: the hint may move back to reuse it.
            self.free_hint = self.free_hint.min(idx);
            Ok(())
        } else {
            Err(StorageError::InvalidRid(rid))
        }
    }

    /// Borrow a page by id.
    pub fn page(&self, page_id: u64) -> Option<&SlottedPage> {
        self.by_id.get(&page_id).map(|&i| &self.pages[i].1)
    }

    /// Mutably borrow a page by id.
    pub fn page_mut(&mut self, page_id: u64) -> Option<&mut SlottedPage> {
        let i = *self.by_id.get(&page_id)?;
        Some(&mut self.pages[i].1)
    }

    /// Iterate `(rid, record)` over all live records.
    pub fn iter(&self) -> impl Iterator<Item = (Rid, &[u8])> {
        self.pages
            .iter()
            .flat_map(|(pid, page)| page.iter().map(move |(slot, r)| (Rid::new(*pid, slot), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let ins = h.insert(&mut alloc, b"record-1").unwrap();
        assert!(ins.allocated_page, "first insert allocates");
        assert_eq!(h.get(ins.rid).unwrap(), b"record-1");
        let ins2 = h.insert(&mut alloc, b"record-2").unwrap();
        assert!(!ins2.allocated_page, "second insert reuses the page");
        assert_eq!(h.n_pages(), 1);
        assert_eq!(h.n_records(), 2);
    }

    #[test]
    fn allocates_new_pages_as_needed() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let rec = [9u8; 2000];
        let mut allocations = 0;
        for _ in 0..20 {
            if h.insert(&mut alloc, &rec).unwrap().allocated_page {
                allocations += 1;
            }
        }
        // 8 KB page holds 4 x 2 KB records -> 5 pages for 20 records.
        assert_eq!(h.n_pages(), 5);
        assert_eq!(allocations, 5);
        assert_eq!(alloc.allocated(), 5);
    }

    #[test]
    fn update_and_delete() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let rid = h.insert(&mut alloc, b"before").unwrap().rid;
        h.update(rid, b"after!").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"after!");
        h.delete(rid).unwrap();
        assert_eq!(h.get(rid), Err(StorageError::InvalidRid(rid)));
        assert_eq!(h.delete(rid), Err(StorageError::InvalidRid(rid)));
    }

    #[test]
    fn deleted_space_is_reused() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let rec = [1u8; 2000];
        let mut rids = Vec::new();
        for _ in 0..8 {
            rids.push(h.insert(&mut alloc, &rec).unwrap().rid);
        }
        let pages_before = h.n_pages();
        h.delete(rids[0]).unwrap();
        let ins = h.insert(&mut alloc, &rec).unwrap();
        assert!(!ins.allocated_page, "freed slot should be reused");
        assert_eq!(h.n_pages(), pages_before);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let huge = vec![0u8; 9000];
        assert!(matches!(
            h.insert(&mut alloc, &huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn iter_covers_all_records() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        for i in 0..100u8 {
            h.insert(&mut alloc, &[i; 300]).unwrap();
        }
        assert_eq!(h.iter().count(), 100);
        let mut seen: Vec<u8> = h.iter().map(|(_, r)| r[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn record_offset_within_page() {
        let mut alloc = PageAllocator::new();
        let mut h = HeapFile::new();
        let rid = h.insert(&mut alloc, b"xyz").unwrap().rid;
        let off = h.record_offset(rid).unwrap();
        assert!(off < crate::page::PAGE_BYTES);
    }
}
