//! The lock manager: hierarchical two-phase locking with S/X/IS/IX modes,
//! lock upgrade, and waits-for deadlock detection.
//!
//! Shore-MT's lock manager is one of the shared structures the paper's
//! characterization highlights (Section 2.2.2): its hash-table buckets are
//! among the few data blocks touched by nearly every transaction. The
//! [`LockManager::bucket_of`] mapping feeds those data-block addresses to
//! the trace recorder.
//!
//! The engine interleaves transactions on one thread, so conflicts surface
//! as [`AcquireOutcome::Conflict`] rather than blocking; callers decide
//! whether to abort (wait-die) or retry. The waits-for graph and its cycle
//! detector implement real deadlock detection for callers that model
//! waiting.

use std::collections::{HashMap, HashSet};

/// Lock modes, including intention modes for table-level locks
/// (hierarchical locking, as in Shore-MT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table level).
    IS,
    /// Intention exclusive (table level).
    IX,
    /// Shared.
    S,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Classic compatibility matrix (no SIX; the workloads never need it).
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, X) | (X, S) | (X, X) => false,
        }
    }

    /// Does holding `self` already imply `other`?
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (X, _) => true,
            (S, S) | (S, IS) => true,
            (IX, IX) | (IX, IS) => true,
            (IS, IS) => true,
            _ => self == other,
        }
    }
}

/// A lockable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Whole table.
    Table(u32),
    /// One record, identified by table and key.
    Record {
        /// Owning table.
        table: u32,
        /// Key (or packed rid) of the record.
        key: u64,
    },
}

/// Number of hash buckets in the lock table (power of two).
pub const LOCK_BUCKETS: u64 = 4096;

/// Outcome of an acquire request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted (or already held at a covering mode).
    Granted {
        /// Hash bucket touched (for data-address mapping).
        bucket: u64,
        /// Whether this was an upgrade of an existing weaker lock.
        upgraded: bool,
    },
    /// Conflicting holders prevent the grant.
    Conflict {
        /// Hash bucket touched.
        bucket: u64,
        /// Transactions holding incompatible locks.
        holders: Vec<u64>,
    },
}

#[derive(Debug, Default)]
struct LockEntry {
    /// `(xct, mode)` pairs currently granted.
    holders: Vec<(u64, LockMode)>,
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<Resource, LockEntry>,
    held: HashMap<u64, Vec<Resource>>,
    waits_for: HashMap<u64, HashSet<u64>>,
}

impl LockManager {
    /// Empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hash bucket of a resource (the data block the engine reports).
    pub fn bucket_of(resource: Resource) -> u64 {
        // FNV-1a over the resource's discriminating fields.
        let (a, b) = match resource {
            Resource::Table(t) => (u64::from(t), u64::MAX),
            Resource::Record { table, key } => (u64::from(table), key),
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in a.to_le_bytes().iter().chain(b.to_le_bytes().iter()) {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h % LOCK_BUCKETS
    }

    /// Request `mode` on `resource` for `xct`.
    pub fn acquire(&mut self, xct: u64, resource: Resource, mode: LockMode) -> AcquireOutcome {
        let bucket = Self::bucket_of(resource);
        let entry = self.table.entry(resource).or_default();

        // Re-entrant / covered request?
        if let Some(&(_, held_mode)) = entry.holders.iter().find(|(x, _)| *x == xct) {
            if held_mode.covers(mode) {
                return AcquireOutcome::Granted {
                    bucket,
                    upgraded: false,
                };
            }
            // Upgrade: allowed only if every other holder is compatible
            // with the stronger mode.
            let conflicting: Vec<u64> = entry
                .holders
                .iter()
                .filter(|(x, m)| *x != xct && !m.compatible(mode))
                .map(|(x, _)| *x)
                .collect();
            if conflicting.is_empty() {
                let slot = entry
                    .holders
                    .iter_mut()
                    .find(|(x, _)| *x == xct)
                    .expect("holder just found");
                slot.1 = mode;
                return AcquireOutcome::Granted {
                    bucket,
                    upgraded: true,
                };
            }
            return AcquireOutcome::Conflict {
                bucket,
                holders: conflicting,
            };
        }

        let conflicting: Vec<u64> = entry
            .holders
            .iter()
            .filter(|(_, m)| !m.compatible(mode))
            .map(|(x, _)| *x)
            .collect();
        if !conflicting.is_empty() {
            return AcquireOutcome::Conflict {
                bucket,
                holders: conflicting,
            };
        }
        entry.holders.push((xct, mode));
        self.held.entry(xct).or_default().push(resource);
        AcquireOutcome::Granted {
            bucket,
            upgraded: false,
        }
    }

    /// Release everything `xct` holds (2PL release-at-commit). Returns the
    /// resources released, in acquisition order.
    pub fn release_all(&mut self, xct: u64) -> Vec<Resource> {
        self.clear_wait(xct);
        let resources = self.held.remove(&xct).unwrap_or_default();
        for r in &resources {
            if let Some(entry) = self.table.get_mut(r) {
                entry.holders.retain(|(x, _)| *x != xct);
                if entry.holders.is_empty() {
                    self.table.remove(r);
                }
            }
        }
        resources
    }

    /// Locks currently held by `xct`.
    pub fn held_by(&self, xct: u64) -> &[Resource] {
        self.held.get(&xct).map_or(&[], Vec::as_slice)
    }

    /// The mode `xct` holds on `resource`, if any.
    pub fn mode_of(&self, xct: u64, resource: Resource) -> Option<LockMode> {
        self.table
            .get(&resource)?
            .holders
            .iter()
            .find(|(x, _)| *x == xct)
            .map(|&(_, m)| m)
    }

    /// Record that `waiter` is blocked on `holders` (for callers modeling
    /// waiting instead of aborting).
    pub fn record_wait(&mut self, waiter: u64, holders: &[u64]) {
        self.waits_for
            .entry(waiter)
            .or_default()
            .extend(holders.iter().copied());
    }

    /// Clear `waiter`'s wait edges (after the lock is granted or dropped).
    pub fn clear_wait(&mut self, waiter: u64) {
        self.waits_for.remove(&waiter);
    }

    /// Would adding edges `waiter -> holders` close a cycle in the waits-for
    /// graph? (Deadlock detection by DFS.)
    pub fn would_deadlock(&self, waiter: u64, holders: &[u64]) -> bool {
        // Deadlock iff some holder can already reach `waiter`.
        let mut stack: Vec<u64> = holders.to_vec();
        let mut seen = HashSet::new();
        while let Some(x) = stack.pop() {
            if x == waiter {
                return true;
            }
            if seen.insert(x) {
                if let Some(next) = self.waits_for.get(&x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Number of distinct locked resources (diagnostics).
    pub fn n_locked(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const T: Resource = Resource::Table(1);
    const R1: Resource = Resource::Record { table: 1, key: 100 };

    fn granted(o: &AcquireOutcome) -> bool {
        matches!(o, AcquireOutcome::Granted { .. })
    }

    #[test]
    fn compatibility_matrix() {
        assert!(IS.compatible(IX) && IX.compatible(IS));
        assert!(IS.compatible(S) && S.compatible(IS));
        assert!(!IS.compatible(X) && !X.compatible(IS));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S) && !S.compatible(IX));
        assert!(S.compatible(S));
        assert!(!S.compatible(X) && !X.compatible(X));
    }

    #[test]
    fn shared_locks_coexist_exclusive_conflicts() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.acquire(1, R1, S)));
        assert!(granted(&lm.acquire(2, R1, S)));
        match lm.acquire(3, R1, X) {
            AcquireOutcome::Conflict { holders, .. } => {
                let mut h = holders;
                h.sort_unstable();
                assert_eq!(h, vec![1, 2]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn reentrant_and_covered_requests_granted() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.acquire(1, R1, X)));
        // X covers S: no new lock needed.
        assert!(matches!(
            lm.acquire(1, R1, S),
            AcquireOutcome::Granted {
                upgraded: false,
                ..
            }
        ));
        assert_eq!(lm.held_by(1).len(), 1);
    }

    #[test]
    fn upgrade_s_to_x_when_sole_holder() {
        let mut lm = LockManager::new();
        lm.acquire(1, R1, S);
        assert!(matches!(
            lm.acquire(1, R1, X),
            AcquireOutcome::Granted { upgraded: true, .. }
        ));
        assert_eq!(lm.mode_of(1, R1), Some(X));
        // Now xct 2 cannot even get S.
        assert!(!granted(&lm.acquire(2, R1, S)));
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let mut lm = LockManager::new();
        lm.acquire(1, R1, S);
        lm.acquire(2, R1, S);
        match lm.acquire(1, R1, X) {
            AcquireOutcome::Conflict { holders, .. } => assert_eq!(holders, vec![2]),
            other => panic!("expected conflict, got {other:?}"),
        }
        // Xct 1 still holds S.
        assert_eq!(lm.mode_of(1, R1), Some(S));
    }

    #[test]
    fn intention_locks_on_table() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.acquire(1, T, IX)));
        assert!(granted(&lm.acquire(2, T, IX)), "IX is compatible with IX");
        assert!(!granted(&lm.acquire(3, T, S)), "S conflicts with IX");
        assert!(granted(&lm.acquire(3, T, IS)), "IS is compatible with IX");
    }

    #[test]
    fn release_all_frees_everything() {
        let mut lm = LockManager::new();
        lm.acquire(1, T, IX);
        lm.acquire(1, R1, X);
        let released = lm.release_all(1);
        assert_eq!(released.len(), 2);
        assert_eq!(lm.n_locked(), 0);
        assert!(granted(&lm.acquire(2, R1, X)));
    }

    #[test]
    fn deadlock_cycle_detected() {
        let mut lm = LockManager::new();
        // 1 waits for 2, 2 waits for 3.
        lm.record_wait(1, &[2]);
        lm.record_wait(2, &[3]);
        // 3 waiting on 1 closes the cycle.
        assert!(lm.would_deadlock(3, &[1]));
        // 3 waiting on an unrelated xct does not.
        assert!(!lm.would_deadlock(3, &[99]));
        // Clearing 2's wait breaks the path.
        lm.clear_wait(2);
        assert!(!lm.would_deadlock(3, &[1]));
    }

    #[test]
    fn self_wait_is_immediate_deadlock() {
        let lm = LockManager::new();
        assert!(lm.would_deadlock(7, &[7]));
    }

    #[test]
    fn bucket_mapping_is_stable_and_bounded() {
        let b1 = LockManager::bucket_of(R1);
        let b2 = LockManager::bucket_of(R1);
        assert_eq!(b1, b2);
        assert!(b1 < LOCK_BUCKETS);
        // Different records usually hash differently.
        let other = Resource::Record { table: 1, key: 101 };
        assert_ne!(LockManager::bucket_of(other), b1);
    }
}
