//! # addict-storage
//!
//! A Shore-MT-like single-node OLTP storage manager, built from scratch as
//! the substrate for the ADDICT reproduction (Tözün et al., VLDB 2014).
//!
//! The paper runs TPC workloads on Shore-MT and traces the storage-manager
//! routines every transaction funnels through. This crate provides the same
//! component stack:
//!
//! * [`page`] — 8 KB slotted pages holding real record bytes,
//! * [`heap`] — heap files with a free-space map and page allocation,
//! * [`bufferpool`] — a pin-counting buffer pool with clock eviction,
//! * [`btree`] — B+-trees with splits, merges, and root SMOs,
//! * [`lock`] — a 2PL lock manager (S/X/IS/IX modes, upgrade, waits-for
//!   deadlock detection),
//! * [`wal`] — a write-ahead log with monotone LSNs,
//! * [`recovery`] — an ARIES-style analysis/redo/undo pass over the log,
//! * [`engine`] — the transaction manager exposing the paper's five
//!   database operations (index probe, index scan, update tuple, insert
//!   tuple, delete tuple).
//!
//! Every routine is instrumented with the `addict-trace` recorder: as a
//! transaction executes, the engine emits the instruction-block walk of
//! each routine it enters (per the calibrated
//! [`addict_trace::codemap::CodeMap`]) and a data-block access for every
//! page, lock bucket, log slot, and buffer-pool frame it actually touches.
//! Traces are therefore shaped by the engine's real control flow — index
//! descents per level, page allocations only when heaps fill, structural
//! modifications only when nodes split.
//!
//! The engine is single-threaded by design (`&mut self` operations): the
//! paper's methodology replays collected traces on a simulated multicore,
//! so concurrency lives in the replay scheduler, not in trace collection.
//! The lock manager still implements real conflict semantics for multiple
//! in-flight transactions interleaved on one thread.

pub mod btree;
pub mod bufferpool;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod heap;
pub mod lock;
pub mod page;
pub mod recovery;
pub mod rid;
pub mod wal;

pub use catalog::{IndexId, TableId};
pub use engine::{Engine, EngineConfig, XctId};
pub use error::{StorageError, StorageResult};
pub use rid::Rid;
