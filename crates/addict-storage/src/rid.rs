//! Record identifiers: `(page, slot)` pairs, packable into a `u64` so they
//! can live as B+-tree values.

/// A record id: which page, which slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Owning page id.
    pub page: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a rid.
    pub fn new(page: u64, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Pack into a `u64` (page in the high 48 bits, slot in the low 16).
    ///
    /// # Panics
    /// Panics if the page id exceeds 48 bits.
    pub fn pack(self) -> u64 {
        assert!(self.page < (1 << 48), "page id overflows rid packing");
        (self.page << 16) | u64::from(self.slot)
    }

    /// Unpack from a `u64`.
    pub fn unpack(v: u64) -> Self {
        Rid {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for rid in [
            Rid::new(0, 0),
            Rid::new(1, 65535),
            Rid::new((1 << 48) - 1, 7),
        ] {
            assert_eq!(Rid::unpack(rid.pack()), rid);
        }
    }

    #[test]
    fn pack_orders_by_page_then_slot() {
        assert!(Rid::new(1, 0).pack() < Rid::new(2, 0).pack());
        assert!(Rid::new(1, 3).pack() < Rid::new(1, 4).pack());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_page_rejected() {
        let _ = Rid::new(1 << 48, 0).pack();
    }
}
