//! Storage-manager error types.

use crate::rid::Rid;

/// Errors surfaced by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Key not present in the index.
    KeyNotFound {
        /// The missing key.
        key: u64,
    },
    /// Inserting a key that already exists in a unique index.
    DuplicateKey {
        /// The duplicate key.
        key: u64,
    },
    /// A record id points at nothing.
    InvalidRid(Rid),
    /// Record bytes do not fit in any page.
    RecordTooLarge {
        /// Record size in bytes.
        size: usize,
    },
    /// Unknown table id.
    NoSuchTable(u32),
    /// Unknown index id.
    NoSuchIndex(u32),
    /// Unknown transaction id (already finished, or never begun).
    NoSuchXct(u64),
    /// Lock request denied because a conflicting transaction holds it and
    /// wait-die policy says the requester must abort.
    LockConflict {
        /// The transaction that must back off.
        loser: u64,
        /// A transaction currently holding the lock.
        holder: u64,
    },
    /// Waiting for this lock would close a cycle in the waits-for graph.
    Deadlock {
        /// The requesting transaction.
        waiter: u64,
    },
    /// Buffer pool has no evictable frame (all pinned).
    BufferPoolExhausted,
    /// Operation attempted on a transaction that already aborted.
    XctAborted(u64),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::KeyNotFound { key } => write!(f, "key {key} not found"),
            StorageError::DuplicateKey { key } => write!(f, "duplicate key {key}"),
            StorageError::InvalidRid(rid) => write!(f, "invalid rid {rid:?}"),
            StorageError::RecordTooLarge { size } => write!(f, "record of {size} bytes too large"),
            StorageError::NoSuchTable(t) => write!(f, "no such table {t}"),
            StorageError::NoSuchIndex(i) => write!(f, "no such index {i}"),
            StorageError::NoSuchXct(x) => write!(f, "no such transaction {x}"),
            StorageError::LockConflict { loser, holder } => {
                write!(f, "lock conflict: xct {loser} must abort (holder {holder})")
            }
            StorageError::Deadlock { waiter } => write!(f, "deadlock detected for xct {waiter}"),
            StorageError::BufferPoolExhausted => write!(f, "buffer pool exhausted"),
            StorageError::XctAborted(x) => write!(f, "transaction {x} already aborted"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias.
pub type StorageResult<T> = Result<T, StorageError>;
