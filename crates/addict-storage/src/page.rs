//! Slotted pages: the 8 KB on-"disk" record container.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0..8      page LSN (u64 little endian)
//! 8..10     number of slots (u16)
//! 10..12    free_end: start of the record area (u16)
//! 12..16    reserved
//! 16..      slot array, 4 bytes per slot: record offset (u16), length (u16)
//! ...       free space
//! free_end..8192   record bytes, growing downward
//! ```
//!
//! A slot with length `0` is a tombstone and can be reused. Updates that fit
//! shrink in place; growing updates relocate within the page. When
//! fragmentation blocks an insert that total free space allows, the page
//! compacts itself.

/// Page size in bytes; must agree with `addict_trace::layout::PAGE_BYTES`
/// (checked by a test below) so data-block addresses line up.
pub const PAGE_BYTES: usize = 8192;

/// Page-local allocation failure: not enough space even after compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSpace;

const HEADER_BYTES: usize = 16;
const SLOT_BYTES: usize = 4;

/// An 8 KB slotted page holding raw record bytes.
#[derive(Clone)]
pub struct SlottedPage {
    buf: Box<[u8]>,
    /// Bytes occupied by deleted/shrunk records, reclaimable by compaction.
    dead_bytes: usize,
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("n_slots", &self.n_slots())
            .field("records", &self.n_records())
            .field("contiguous_free", &self.contiguous_free())
            .finish()
    }
}

impl SlottedPage {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut page = SlottedPage {
            buf: vec![0u8; PAGE_BYTES].into_boxed_slice(),
            dead_bytes: 0,
        };
        page.set_free_end(PAGE_BYTES as u16);
        page
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// The page LSN (WAL coupling: set after every logged change).
    pub fn page_lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[0..8].try_into().expect("8 bytes"))
    }

    /// Set the page LSN.
    pub fn set_page_lsn(&mut self, lsn: u64) {
        self.buf[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn n_slots(&self) -> u16 {
        self.read_u16(8)
    }

    fn set_n_slots(&mut self, n: u16) {
        self.write_u16(8, n);
    }

    fn free_end(&self) -> usize {
        usize::from(self.read_u16(10))
    }

    fn set_free_end(&mut self, v: u16) {
        self.write_u16(10, v);
    }

    fn slot_at(&self, slot: u16) -> (usize, usize) {
        let base = HEADER_BYTES + usize::from(slot) * SLOT_BYTES;
        (
            usize::from(self.read_u16(base)),
            usize::from(self.read_u16(base + 2)),
        )
    }

    fn set_slot(&mut self, slot: u16, offset: usize, len: usize) {
        let base = HEADER_BYTES + usize::from(slot) * SLOT_BYTES;
        self.write_u16(base, offset as u16);
        self.write_u16(base + 2, len as u16);
    }

    /// End of the slot array / start of free space.
    fn free_start(&self) -> usize {
        HEADER_BYTES + usize::from(self.n_slots()) * SLOT_BYTES
    }

    /// Contiguous free bytes between the slot array and the record area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Total reclaimable free bytes (contiguous + dead).
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.dead_bytes
    }

    /// Number of live records.
    pub fn n_records(&self) -> usize {
        (0..self.n_slots())
            .filter(|&s| self.slot_at(s).1 > 0)
            .count()
    }

    /// Would `insert` of `len` bytes succeed?
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.find_tombstone().is_some() {
            0
        } else {
            SLOT_BYTES
        };
        self.total_free() >= len + slot_cost
    }

    fn find_tombstone(&self) -> Option<u16> {
        (0..self.n_slots()).find(|&s| self.slot_at(s).1 == 0)
    }

    /// Insert a record; returns its slot.
    ///
    /// # Errors
    /// [`NoSpace`] if the record cannot fit even after compaction.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16, NoSpace> {
        assert!(!record.is_empty(), "empty records are not representable");
        assert!(
            record.len() <= PAGE_BYTES - HEADER_BYTES - SLOT_BYTES,
            "record exceeds page"
        );
        let reuse = self.find_tombstone();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_BYTES };
        if self.contiguous_free() < record.len() + slot_cost {
            if self.total_free() < record.len() + slot_cost {
                return Err(NoSpace);
            }
            self.compact();
            if self.contiguous_free() < record.len() + slot_cost {
                return Err(NoSpace);
            }
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.n_slots();
                self.set_n_slots(s + 1);
                s
            }
        };
        let offset = self.free_end() - record.len();
        self.buf[offset..offset + record.len()].copy_from_slice(record);
        self.set_free_end(offset as u16);
        self.set_slot(slot, offset, record.len());
        Ok(slot)
    }

    /// Read a record's bytes.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let (offset, len) = self.slot_at(slot);
        (len > 0).then(|| &self.buf[offset..offset + len])
    }

    /// Byte offset of a record within the page (for data-block address
    /// mapping), if live.
    pub fn record_offset(&self, slot: u16) -> Option<usize> {
        if slot >= self.n_slots() {
            return None;
        }
        let (offset, len) = self.slot_at(slot);
        (len > 0).then_some(offset)
    }

    /// Overwrite a record. Shrinks in place; grows by relocating within the
    /// page (compacting if needed).
    ///
    /// # Errors
    /// [`NoSpace`] if growth cannot be accommodated. The original record is
    /// left intact in that case.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Result<(), NoSpace> {
        assert!(!record.is_empty(), "empty records are not representable");
        if slot >= self.n_slots() || self.slot_at(slot).1 == 0 {
            return Err(NoSpace);
        }
        let (offset, len) = self.slot_at(slot);
        if record.len() <= len {
            // In place; tail bytes become dead.
            self.buf[offset..offset + record.len()].copy_from_slice(record);
            self.set_slot(slot, offset, record.len());
            self.dead_bytes += len - record.len();
            return Ok(());
        }
        // Relocate: free the old copy first so compaction can reclaim it.
        if self.contiguous_free() < record.len() && self.total_free() + len < record.len() {
            return Err(NoSpace);
        }
        self.set_slot(slot, 0, 0);
        self.dead_bytes += len;
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        if self.contiguous_free() < record.len() {
            // Roll back the tombstone; data bytes were untouched.
            self.set_slot(slot, offset, len);
            self.dead_bytes -= len;
            return Err(NoSpace);
        }
        let new_offset = self.free_end() - record.len();
        self.buf[new_offset..new_offset + record.len()].copy_from_slice(record);
        self.set_free_end(new_offset as u16);
        self.set_slot(slot, new_offset, record.len());
        Ok(())
    }

    /// Delete a record; its slot becomes a tombstone. Returns whether the
    /// slot was live.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.n_slots() {
            return false;
        }
        let (_, len) = self.slot_at(slot);
        if len == 0 {
            return false;
        }
        self.set_slot(slot, 0, 0);
        self.dead_bytes += len;
        true
    }

    /// Squeeze out dead bytes, preserving slot ids.
    fn compact(&mut self) {
        let mut live: Vec<(u16, usize, usize)> = (0..self.n_slots())
            .filter_map(|s| {
                let (off, len) = self.slot_at(s);
                (len > 0).then_some((s, off, len))
            })
            .collect();
        // Pack from the end of the page downward, processing records from
        // highest offset first so moves never overlap incorrectly.
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut cursor = PAGE_BYTES;
        for (slot, off, len) in live {
            cursor -= len;
            self.buf.copy_within(off..off + len, cursor);
            self.set_slot(slot, cursor, len);
        }
        self.set_free_end(cursor as u16);
        self.dead_bytes = 0;
    }

    /// Iterate live records as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1), Some(&b"hello"[..]));
        assert_eq!(p.get(s2), Some(&b"world!"[..]));
        assert_eq!(p.n_records(), 2);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"aaaa").unwrap();
        let _s2 = p.insert(b"bbbb").unwrap();
        assert!(p.delete(s1));
        assert_eq!(p.get(s1), None);
        assert!(!p.delete(s1), "double delete is a no-op");
        let s3 = p.insert(b"cccc").unwrap();
        assert_eq!(s3, s1, "tombstone slot reused");
        assert_eq!(p.get(s3), Some(&b"cccc"[..]));
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"0123456789").unwrap();
        p.update(s, b"abc").unwrap();
        assert_eq!(p.get(s), Some(&b"abc"[..]));
        p.update(s, b"a-much-longer-record-body").unwrap();
        assert_eq!(p.get(s), Some(&b"a-much-longer-record-body"[..]));
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(
            n >= 70,
            "8 KB page should hold at least 70 x 104-byte entries, got {n}"
        );
        assert_eq!(p.insert(&rec), Err(NoSpace));
        // Deleting one makes room for exactly one more.
        assert!(p.delete(0));
        p.insert(&rec).unwrap();
        assert_eq!(p.insert(&rec), Err(NoSpace));
    }

    #[test]
    fn compaction_reclaims_fragmentation() {
        let mut p = SlottedPage::new();
        let small = [1u8; 64];
        let mut slots = Vec::new();
        while p.fits(small.len()) {
            slots.push(p.insert(&small).unwrap());
        }
        // Free every other record: plenty of total space, all fragmented.
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(s);
            }
        }
        // A record larger than any single hole still fits via compaction.
        let big = [2u8; 1000];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s), Some(&big[..]));
        // Survivors are intact.
        for (i, &s2) in slots.iter().enumerate() {
            if i % 2 == 1 && s2 != s {
                assert_eq!(
                    p.get(s2),
                    Some(&small[..]),
                    "slot {s2} corrupted by compaction"
                );
            }
        }
    }

    #[test]
    fn failed_grow_leaves_record_intact() {
        let mut p = SlottedPage::new();
        let s = p.insert(&[3u8; 100]).unwrap();
        // Fill the rest.
        while p.fits(100) {
            p.insert(&[4u8; 100]).unwrap();
        }
        let huge = vec![5u8; 4000];
        assert_eq!(p.update(s, &huge), Err(NoSpace));
        assert_eq!(p.get(s), Some(&[3u8; 100][..]));
    }

    #[test]
    fn page_lsn_roundtrip() {
        let mut p = SlottedPage::new();
        assert_eq!(p.page_lsn(), 0);
        p.set_page_lsn(0xDEADBEEF);
        assert_eq!(p.page_lsn(), 0xDEADBEEF);
        // LSN survives inserts and compaction.
        p.insert(b"x").unwrap();
        assert_eq!(p.page_lsn(), 0xDEADBEEF);
    }

    #[test]
    fn iter_yields_live_records_only() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let live: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(live, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn page_size_agrees_with_trace_layout() {
        assert_eq!(PAGE_BYTES as u64, addict_trace::layout::PAGE_BYTES);
    }

    #[test]
    fn record_offset_points_at_bytes() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"needle").unwrap();
        let off = p.record_offset(s).unwrap();
        assert!((HEADER_BYTES..PAGE_BYTES).contains(&off));
        assert_eq!(p.record_offset(99), None);
    }
}
