//! The catalog: tables, their heap files, and their indexes.
//!
//! Catalog entries are the "metadata information" Section 2.2.2 lists among
//! the few data blocks shared by nearly all transactions; the engine emits
//! a metadata-block read whenever an operation resolves a table or index.

use crate::btree::BTree;
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, PageAllocator};

/// Identifier of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// A table: name, heap storage, and the ids of its indexes.
#[derive(Debug)]
pub struct TableDef {
    /// Table id.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Record storage.
    pub heap: HeapFile,
    /// Indexes over this table, in creation order.
    pub indexes: Vec<IndexId>,
}

/// An index: name, owning table, and the B+-tree.
#[derive(Debug)]
pub struct IndexDef {
    /// Index id.
    pub id: IndexId,
    /// Human-readable name.
    pub name: String,
    /// Indexed table.
    pub table: TableId,
    /// The tree (key -> packed rid).
    pub btree: BTree,
}

/// The catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    indexes: Vec<IndexDef>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableDef {
            id,
            name: name.to_owned(),
            heap: HeapFile::new(),
            indexes: Vec::new(),
        });
        id
    }

    /// Create an index on `table`.
    ///
    /// # Errors
    /// [`StorageError::NoSuchTable`] for unknown tables.
    pub fn create_index(
        &mut self,
        alloc: &mut PageAllocator,
        table: TableId,
        name: &str,
        max_keys: usize,
    ) -> StorageResult<IndexId> {
        if table.0 as usize >= self.tables.len() {
            return Err(StorageError::NoSuchTable(table.0));
        }
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(IndexDef {
            id,
            name: name.to_owned(),
            table,
            btree: BTree::with_max_keys(alloc, max_keys),
        });
        self.tables[table.0 as usize].indexes.push(id);
        Ok(id)
    }

    /// Borrow a table.
    pub fn table(&self, id: TableId) -> StorageResult<&TableDef> {
        self.tables
            .get(id.0 as usize)
            .ok_or(StorageError::NoSuchTable(id.0))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, id: TableId) -> StorageResult<&mut TableDef> {
        self.tables
            .get_mut(id.0 as usize)
            .ok_or(StorageError::NoSuchTable(id.0))
    }

    /// Borrow an index.
    pub fn index(&self, id: IndexId) -> StorageResult<&IndexDef> {
        self.indexes
            .get(id.0 as usize)
            .ok_or(StorageError::NoSuchIndex(id.0))
    }

    /// Mutably borrow an index.
    pub fn index_mut(&mut self, id: IndexId) -> StorageResult<&mut IndexDef> {
        self.indexes
            .get_mut(id.0 as usize)
            .ok_or(StorageError::NoSuchIndex(id.0))
    }

    /// Mutably borrow a table and one of its indexes at the same time
    /// (insert/delete maintain both).
    pub fn table_and_index_mut(
        &mut self,
        table: TableId,
        index: IndexId,
    ) -> StorageResult<(&mut TableDef, &mut IndexDef)> {
        if table.0 as usize >= self.tables.len() {
            return Err(StorageError::NoSuchTable(table.0));
        }
        if index.0 as usize >= self.indexes.len() {
            return Err(StorageError::NoSuchIndex(index.0));
        }
        Ok((
            &mut self.tables[table.0 as usize],
            &mut self.indexes[index.0 as usize],
        ))
    }

    /// Look up a table by name (tests, examples).
    pub fn table_by_name(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexes.
    pub fn n_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// All tables.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// All indexes.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve() {
        let mut alloc = PageAllocator::new();
        let mut c = Catalog::new();
        let t = c.create_table("warehouse");
        let i = c.create_index(&mut alloc, t, "warehouse_pk", 64).unwrap();
        assert_eq!(c.table(t).unwrap().name, "warehouse");
        assert_eq!(c.index(i).unwrap().table, t);
        assert_eq!(c.table(t).unwrap().indexes, vec![i]);
        assert_eq!(c.n_tables(), 1);
        assert_eq!(c.n_indexes(), 1);
        assert!(c.table_by_name("warehouse").is_some());
        assert!(c.table_by_name("nope").is_none());
    }

    #[test]
    fn unknown_ids_error() {
        let mut alloc = PageAllocator::new();
        let mut c = Catalog::new();
        assert!(matches!(
            c.table(TableId(0)),
            Err(StorageError::NoSuchTable(0))
        ));
        assert!(matches!(
            c.index(IndexId(3)),
            Err(StorageError::NoSuchIndex(3))
        ));
        assert!(matches!(
            c.create_index(&mut alloc, TableId(9), "x", 64),
            Err(StorageError::NoSuchTable(9))
        ));
    }

    #[test]
    fn multiple_indexes_per_table() {
        let mut alloc = PageAllocator::new();
        let mut c = Catalog::new();
        let t = c.create_table("customer");
        let i1 = c.create_index(&mut alloc, t, "customer_pk", 64).unwrap();
        let i2 = c.create_index(&mut alloc, t, "customer_name", 64).unwrap();
        assert_eq!(c.table(t).unwrap().indexes, vec![i1, i2]);
        let (tbl, idx) = c.table_and_index_mut(t, i2).unwrap();
        assert_eq!(tbl.id, t);
        assert_eq!(idx.id, i2);
    }
}
