//! The buffer pool: pin-counted residency tracking with clock eviction.
//!
//! Pages themselves are owned by heap files and B+-trees (the database is
//! memory-resident, as in the paper's setup: "the buffer-pool is configured
//! to keep the whole database in memory"). The buffer pool tracks which
//! pages occupy frames, enforces pin counts, and evicts with a clock hand
//! when capacity is exceeded — the control structures whose (shared) data
//! accesses Section 2.2.2 attributes to the buffer pool.

use std::collections::HashMap;

use crate::error::{StorageError, StorageResult};

/// Outcome of fixing a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixOutcome {
    /// Frame the page occupies (drives the control-block data address).
    pub frame: u64,
    /// Whether the page was already resident.
    pub hit: bool,
    /// Page evicted to make room, if any.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: u64,
    pin_count: u32,
    dirty: bool,
    referenced: bool,
    occupied: bool,
}

const EMPTY_FRAME: Frame = Frame {
    page: 0,
    pin_count: 0,
    dirty: false,
    referenced: false,
    occupied: false,
};

/// Buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Fix calls that found the page resident.
    pub hits: u64,
    /// Fix calls that had to install the page.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Dirty evictions (would be write-backs on a disk system).
    pub dirty_evictions: u64,
}

/// A clock-eviction buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    resident: HashMap<u64, usize>,
    hand: usize,
    stats: BufferPoolStats,
}

impl BufferPool {
    /// A pool with `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            frames: vec![EMPTY_FRAME; capacity],
            resident: HashMap::with_capacity(capacity),
            hand: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Current pin count of a page (0 if not resident).
    pub fn pin_count(&self, page: u64) -> u32 {
        self.resident
            .get(&page)
            .map_or(0, |&f| self.frames[f].pin_count)
    }

    /// Fix (pin) a page, installing it if absent.
    ///
    /// # Errors
    /// [`StorageError::BufferPoolExhausted`] when every frame is pinned.
    pub fn fix(&mut self, page: u64) -> StorageResult<FixOutcome> {
        if let Some(&f) = self.resident.get(&page) {
            let frame = &mut self.frames[f];
            frame.pin_count += 1;
            frame.referenced = true;
            self.stats.hits += 1;
            return Ok(FixOutcome {
                frame: f as u64,
                hit: true,
                evicted: None,
            });
        }
        self.stats.misses += 1;
        let (f, evicted) = self.find_victim()?;
        if let Some(old) = evicted {
            self.resident.remove(&old);
            self.stats.evictions += 1;
            if self.frames[f].dirty {
                self.stats.dirty_evictions += 1;
            }
        }
        self.frames[f] = Frame {
            page,
            pin_count: 1,
            dirty: false,
            referenced: true,
            occupied: true,
        };
        self.resident.insert(page, f);
        Ok(FixOutcome {
            frame: f as u64,
            hit: false,
            evicted,
        })
    }

    /// Unfix (unpin) a page, optionally marking it dirty.
    ///
    /// # Panics
    /// Panics if the page is not resident or not pinned.
    pub fn unfix(&mut self, page: u64, dirty: bool) {
        let &f = self
            .resident
            .get(&page)
            .expect("unfix of non-resident page");
        let frame = &mut self.frames[f];
        assert!(frame.pin_count > 0, "unfix of unpinned page");
        frame.pin_count -= 1;
        frame.dirty |= dirty;
    }

    /// Find a free frame or clock victim. Returns `(frame, evicted_page)`.
    fn find_victim(&mut self) -> StorageResult<(usize, Option<u64>)> {
        // Free frame first.
        if let Some(f) = self.frames.iter().position(|fr| !fr.occupied) {
            return Ok((f, None));
        }
        // Clock: two full sweeps (first clears reference bits).
        for _ in 0..2 * self.frames.len() {
            let f = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[f];
            if frame.pin_count > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok((f, Some(frame.page)));
        }
        Err(StorageError::BufferPoolExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_hit_and_miss_accounting() {
        let mut bp = BufferPool::new(4);
        let a = bp.fix(10).unwrap();
        assert!(!a.hit);
        let b = bp.fix(10).unwrap();
        assert!(b.hit);
        assert_eq!(a.frame, b.frame);
        assert_eq!(
            bp.stats(),
            BufferPoolStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(bp.pin_count(10), 2);
    }

    #[test]
    fn eviction_prefers_unreferenced_unpinned() {
        let mut bp = BufferPool::new(2);
        bp.fix(1).unwrap();
        bp.fix(2).unwrap();
        bp.unfix(1, false);
        bp.unfix(2, false);
        // Page 3 must evict one of them.
        let out = bp.fix(3).unwrap();
        assert!(out.evicted.is_some());
        assert_eq!(bp.resident_pages(), 2);
        assert_eq!(bp.stats().evictions, 1);
    }

    #[test]
    fn pinned_pages_never_evicted() {
        let mut bp = BufferPool::new(2);
        bp.fix(1).unwrap(); // stays pinned
        bp.fix(2).unwrap();
        bp.unfix(2, false);
        let out = bp.fix(3).unwrap();
        assert_eq!(out.evicted, Some(2), "only the unpinned page is evictable");
        assert_eq!(bp.pin_count(1), 1);
    }

    #[test]
    fn exhausted_when_all_pinned() {
        let mut bp = BufferPool::new(2);
        bp.fix(1).unwrap();
        bp.fix(2).unwrap();
        assert_eq!(bp.fix(3), Err(StorageError::BufferPoolExhausted));
    }

    #[test]
    fn dirty_evictions_counted() {
        let mut bp = BufferPool::new(1);
        bp.fix(1).unwrap();
        bp.unfix(1, true);
        bp.fix(2).unwrap();
        assert_eq!(bp.stats().dirty_evictions, 1);
    }

    #[test]
    #[should_panic(expected = "unfix of unpinned")]
    fn double_unfix_panics() {
        let mut bp = BufferPool::new(2);
        bp.fix(1).unwrap();
        bp.unfix(1, false);
        bp.unfix(1, false);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut bp = BufferPool::new(3);
        for p in [1, 2, 3] {
            bp.fix(p).unwrap();
            bp.unfix(p, false);
        }
        // First eviction sweeps all reference bits clear, then takes the
        // frame the hand wrapped to (page 1).
        let out = bp.fix(4).unwrap();
        assert_eq!(out.evicted, Some(1));
        bp.unfix(4, false);
        // Re-reference page 2: its bit is set again.
        bp.fix(2).unwrap();
        bp.unfix(2, false);
        // Next eviction must skip the re-referenced page 2 and take page 3,
        // whose bit stayed clear.
        let out = bp.fix(5).unwrap();
        assert_eq!(out.evicted, Some(3), "second chance protected page 2");
        assert_eq!(bp.pin_count(2), 0);
        assert!(bp.fix(2).unwrap().hit, "page 2 survived");
    }
}
