//! Crash recovery: an ARIES-style analysis/redo/undo pass over the WAL.
//!
//! Section 3.2.5 of the paper notes that "for the cases outside the
//! regular workload run, such as recovery or database population, ADDICT
//! can either fall back to traditional scheduling or find new migration
//! points for the specific operations executed during such periods". To
//! make that a real scenario rather than a hypothetical, the storage
//! manager implements recovery over its log:
//!
//! * **Analysis** scans the resident log tail, classifying transactions as
//!   committed, aborted, or in-flight (losers) at the crash point;
//! * **Redo** counts the page-level changes whose effects must be
//!   reapplied (our pages live in memory, so redo is an accounting pass —
//!   the database *is* the materialized state);
//! * **Undo** rolls back the losers' structural intents in reverse LSN
//!   order and appends compensation records, exactly the write pattern a
//!   recovering storage manager would trace.
//!
//! The pass is deterministic and produces a [`RecoveryReport`] that tests
//! (and the recovery example) assert on.

use std::collections::{HashMap, HashSet};

use crate::wal::{LogManager, LogPayload, LogRecord};

/// Transaction status at the crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XctOutcome {
    /// Commit record found.
    Committed,
    /// Abort record found (already rolled back).
    Aborted,
    /// Neither: a loser that undo must roll back.
    InFlight,
}

/// What the recovery pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records scanned by analysis.
    pub scanned: usize,
    /// Transactions seen, by outcome.
    pub committed: Vec<u64>,
    /// Aborted before the crash.
    pub aborted: Vec<u64>,
    /// Losers rolled back by undo.
    pub losers: Vec<u64>,
    /// Page-level changes redo would reapply (update/insert/delete/alloc
    /// records of non-loser transactions).
    pub redo_records: usize,
    /// Compensation log records appended by undo.
    pub compensation_records: usize,
    /// Highest LSN seen during analysis.
    pub max_lsn: u64,
}

/// Run analysis/redo/undo over the resident log. Appends compensation
/// records for losers, then a commit record closing each loser.
pub fn recover(log: &mut LogManager) -> RecoveryReport {
    // --- Analysis -------------------------------------------------------
    let records: Vec<LogRecord> = log.resident().to_vec();
    let mut outcome: HashMap<u64, XctOutcome> = HashMap::new();
    let mut max_lsn = 0;
    for r in &records {
        max_lsn = max_lsn.max(r.lsn);
        match r.payload {
            LogPayload::XctBegin => {
                outcome.entry(r.xct).or_insert(XctOutcome::InFlight);
            }
            LogPayload::XctCommit => {
                outcome.insert(r.xct, XctOutcome::Committed);
            }
            LogPayload::XctAbort => {
                outcome.insert(r.xct, XctOutcome::Aborted);
            }
            _ => {
                outcome.entry(r.xct).or_insert(XctOutcome::InFlight);
            }
        }
    }
    let losers: HashSet<u64> = outcome
        .iter()
        .filter(|(_, &o)| o == XctOutcome::InFlight)
        .map(|(&x, _)| x)
        .collect();

    // --- Redo (accounting: pages are memory-resident) -------------------
    let redo_records = records
        .iter()
        .filter(|r| {
            !losers.contains(&r.xct)
                && matches!(
                    r.payload,
                    LogPayload::Update { .. }
                        | LogPayload::Insert { .. }
                        | LogPayload::Delete { .. }
                        | LogPayload::PageAlloc { .. }
                        | LogPayload::Smo { .. }
                )
        })
        .count();

    // --- Undo: losers in reverse LSN order ------------------------------
    let mut compensation_records = 0;
    let mut loser_changes: Vec<&LogRecord> = records
        .iter()
        .filter(|r| {
            losers.contains(&r.xct)
                && matches!(
                    r.payload,
                    LogPayload::Update { .. }
                        | LogPayload::Insert { .. }
                        | LogPayload::Delete { .. }
                )
        })
        .collect();
    loser_changes.sort_by_key(|r| std::cmp::Reverse(r.lsn));
    for r in loser_changes {
        // Compensation: the logical inverse, logged like ARIES CLRs.
        let clr = match r.payload {
            LogPayload::Update { table, rid } => LogPayload::Update { table, rid },
            LogPayload::Insert { table, rid } => LogPayload::Delete { table, rid },
            LogPayload::Delete { table, rid } => LogPayload::Insert { table, rid },
            _ => unreachable!("filtered above"),
        };
        log.append(r.xct, clr);
        compensation_records += 1;
    }
    // Close every loser with an abort record, then force the log.
    let mut loser_list: Vec<u64> = losers.iter().copied().collect();
    loser_list.sort_unstable();
    for &x in &loser_list {
        log.append(x, LogPayload::XctAbort);
    }
    log.flush();

    let mut committed: Vec<u64> = outcome
        .iter()
        .filter(|(_, &o)| o == XctOutcome::Committed)
        .map(|(&x, _)| x)
        .collect();
    committed.sort_unstable();
    let mut aborted: Vec<u64> = outcome
        .iter()
        .filter(|(_, &o)| o == XctOutcome::Aborted)
        .map(|(&x, _)| x)
        .collect();
    aborted.sort_unstable();

    RecoveryReport {
        scanned: records.len(),
        committed,
        aborted,
        losers: loser_list,
        redo_records,
        compensation_records,
        max_lsn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid::Rid;

    fn rid(p: u64) -> Rid {
        Rid::new(p, 0)
    }

    #[test]
    fn clean_log_has_no_losers() {
        let mut log = LogManager::default();
        log.append(1, LogPayload::XctBegin);
        log.append(
            1,
            LogPayload::Update {
                table: 0,
                rid: rid(1),
            },
        );
        log.append(1, LogPayload::XctCommit);
        let report = recover(&mut log);
        assert_eq!(report.committed, vec![1]);
        assert!(report.losers.is_empty());
        assert_eq!(report.redo_records, 1);
        assert_eq!(report.compensation_records, 0);
    }

    #[test]
    fn in_flight_transaction_is_rolled_back() {
        let mut log = LogManager::default();
        log.append(1, LogPayload::XctBegin);
        log.append(
            1,
            LogPayload::Insert {
                table: 0,
                rid: rid(3),
            },
        );
        log.append(
            1,
            LogPayload::Update {
                table: 0,
                rid: rid(4),
            },
        );
        // Crash: no commit.
        let before = log.appended_total();
        let report = recover(&mut log);
        assert_eq!(report.losers, vec![1]);
        assert_eq!(report.compensation_records, 2);
        assert_eq!(report.redo_records, 0, "loser changes are not redone");
        // CLRs + the closing abort were appended.
        assert_eq!(log.appended_total(), before + 2 + 1);
        // Undo compensates in reverse order: the insert's CLR (a delete)
        // comes after the update's CLR.
        let tail: Vec<_> = log.resident().iter().rev().take(3).collect();
        assert!(matches!(tail[0].payload, LogPayload::XctAbort));
        assert!(matches!(tail[1].payload, LogPayload::Delete { .. }));
    }

    #[test]
    fn mixed_outcomes_classified() {
        let mut log = LogManager::default();
        for (x, end) in [
            (1u64, Some(true)),
            (2, Some(false)),
            (3, None),
            (4, Some(true)),
        ] {
            log.append(x, LogPayload::XctBegin);
            log.append(
                x,
                LogPayload::Update {
                    table: 0,
                    rid: rid(x),
                },
            );
            match end {
                Some(true) => {
                    log.append(x, LogPayload::XctCommit);
                }
                Some(false) => {
                    log.append(x, LogPayload::XctAbort);
                }
                None => {}
            }
        }
        let report = recover(&mut log);
        assert_eq!(report.committed, vec![1, 4]);
        assert_eq!(report.aborted, vec![2]);
        assert_eq!(report.losers, vec![3]);
        // Redo covers committed AND already-aborted work (their CLRs were
        // logged before the crash in a real system).
        assert_eq!(report.redo_records, 3);
    }

    #[test]
    fn recovery_is_idempotent_on_its_own_output() {
        let mut log = LogManager::default();
        log.append(7, LogPayload::XctBegin);
        log.append(
            7,
            LogPayload::Insert {
                table: 1,
                rid: rid(9),
            },
        );
        let first = recover(&mut log);
        assert_eq!(first.losers, vec![7]);
        // A second crash right after recovery: the loser is now closed by
        // its abort record; nothing further to undo.
        let second = recover(&mut log);
        assert!(second.losers.is_empty());
        assert_eq!(second.compensation_records, 0);
        assert!(second.aborted.contains(&7));
    }

    #[test]
    fn durable_after_recovery() {
        let mut log = LogManager::default();
        log.append(1, LogPayload::XctBegin);
        let report = recover(&mut log);
        assert!(log.durable_lsn() >= report.max_lsn);
    }
}
