//! The transaction manager: the paper's five database operations, fully
//! instrumented.
//!
//! Every public operation brackets itself with `OpBegin`/`OpEnd` markers
//! and, while the *real* structures mutate (B+-trees descend and split,
//! heaps allocate pages, the lock table and log advance), emits:
//!
//! * the instruction-block walks of the routines executed, following the
//!   Figure 1 flow graph (conditional routines — `allocate page`,
//!   `structural modification` — only when the engine actually takes those
//!   paths), and
//! * a data-block access for every page region, lock bucket, buffer-pool
//!   frame, log slot, and catalog entry touched.
//!
//! The resulting traces are the input to ADDICT's Algorithm 1 and to every
//! replayed experiment.

use std::collections::HashMap;

use addict_trace::codemap::{CodeMap, Routine};
use addict_trace::layout;
use addict_trace::{OpKind, TraceRecorder, XctTrace, XctTypeId};

use crate::btree::{PathStep, SmoStats};
use crate::bufferpool::BufferPool;
use crate::catalog::{Catalog, IndexId, TableId};
use crate::error::{StorageError, StorageResult};
use crate::heap::PageAllocator;
use crate::lock::{AcquireOutcome, LockManager, LockMode, Resource};
use crate::rid::Rid;
use crate::wal::{LogManager, LogPayload};

/// Transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XctId(pub u64);

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer-pool frames. The paper keeps the whole database resident;
    /// the default is large enough that steady-state runs never evict.
    pub bufferpool_frames: usize,
    /// B+-tree fanout (max keys per node).
    pub btree_max_keys: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            bufferpool_frames: 1 << 20,
            btree_max_keys: 256,
        }
    }
}

#[derive(Debug)]
struct XctState {
    #[allow(dead_code)]
    ty: XctTypeId,
    active: bool,
}

/// The storage engine.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    catalog: Catalog,
    alloc: PageAllocator,
    bp: BufferPool,
    locks: LockManager,
    log: LogManager,
    rec: TraceRecorder,
    xcts: HashMap<u64, XctState>,
    next_xct: u64,
}

impl Engine {
    /// A fresh engine (tracing on).
    pub fn new(cfg: EngineConfig) -> Self {
        let bp = BufferPool::new(cfg.bufferpool_frames);
        Engine {
            cfg,
            catalog: Catalog::new(),
            alloc: PageAllocator::new(),
            bp,
            locks: LockManager::new(),
            log: LogManager::default(),
            rec: TraceRecorder::new(),
            xcts: HashMap::new(),
            next_xct: 1,
        }
    }

    /// Toggle trace capture (population runs switch it off).
    pub fn set_tracing(&mut self, on: bool) {
        self.rec.set_enabled(on);
    }

    /// Drain the traces recorded so far.
    pub fn take_traces(&mut self) -> Vec<XctTrace> {
        self.rec.take_traces()
    }

    /// The catalog (schema inspection).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Buffer-pool statistics.
    pub fn bufferpool_stats(&self) -> crate::bufferpool::BufferPoolStats {
        self.bp.stats()
    }

    /// Log-manager reference (tests, diagnostics).
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// Lock-manager reference (tests, diagnostics).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Total pages allocated.
    pub fn pages_allocated(&self) -> u64 {
        self.alloc.allocated()
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table.
    pub fn create_table(&mut self, name: &str) -> TableId {
        self.catalog.create_table(name)
    }

    /// Create an index on `table`.
    pub fn create_index(&mut self, table: TableId, name: &str) -> StorageResult<IndexId> {
        self.catalog
            .create_index(&mut self.alloc, table, name, self.cfg.btree_max_keys)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction of workload type `ty`.
    pub fn begin(&mut self, ty: XctTypeId) -> XctId {
        let id = XctId(self.next_xct);
        self.next_xct += 1;
        self.xcts.insert(id.0, XctState { ty, active: true });
        self.rec.begin_xct(id.0, ty);
        self.rec.exec(Routine::XctBegin);
        self.touch_xct_state(id, 4, true);
        let (_, off) = self.log.append(id.0, LogPayload::XctBegin);
        self.rec.exec(Routine::LogInsert);
        self.rec.data(layout::log_block(off), true);
        id
    }

    /// Commit: force the log, release all locks, close the trace.
    pub fn commit(&mut self, xct: XctId) -> StorageResult<()> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.exec(Routine::XctCommit);
        self.touch_xct_state(xct, 4, false);
        let (_, off) = self.log.append(xct.0, LogPayload::XctCommit);
        self.rec.exec(Routine::LogInsert);
        self.rec.data(layout::log_block(off), true);
        self.log.flush();
        let released = self.locks.release_all(xct.0);
        self.rec.exec(Routine::LockRelease);
        // Touch a few representative lock buckets on release; releasing
        // hundreds of locks re-touches the same code blocks anyway.
        for r in released.iter().take(8) {
            self.rec
                .data(layout::lock_bucket_block(LockManager::bucket_of(*r)), true);
        }
        self.rec.end_xct(xct.0);
        self.xcts.remove(&xct.0);
        Ok(())
    }

    /// Abort: release locks, log the abort, close the trace.
    /// (Data undo is elided — aborts only arise in lock-conflict tests.)
    pub fn abort(&mut self, xct: XctId) -> StorageResult<()> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        let (_, off) = self.log.append(xct.0, LogPayload::XctAbort);
        self.rec.exec(Routine::LogInsert);
        self.rec.data(layout::log_block(off), true);
        self.locks.release_all(xct.0);
        self.rec.exec(Routine::LockRelease);
        self.rec.end_xct(xct.0);
        self.xcts.remove(&xct.0);
        Ok(())
    }

    fn check_active(&self, xct: XctId) -> StorageResult<()> {
        match self.xcts.get(&xct.0) {
            Some(s) if s.active => Ok(()),
            Some(_) => Err(StorageError::XctAborted(xct.0)),
            None => Err(StorageError::NoSuchXct(xct.0)),
        }
    }

    // ------------------------------------------------------------------
    // Instrumentation helpers
    // ------------------------------------------------------------------

    /// Touch the transaction's private descriptor blocks (state machine,
    /// cursor objects, lock list). These are the thread-private data a
    /// migrating transaction leaves behind on its previous core — the
    /// Section 4.3 L1-D cost of computation spreading.
    fn touch_xct_state(&mut self, xct: XctId, n: u64, write: bool) {
        for i in 0..n {
            self.rec
                .data(layout::xct_state_block(xct.0, i), write && i == 0);
        }
    }

    /// Acquire a lock, emitting the lock-manager walk and bucket access.
    /// Conflicts resolve by wait-die: the requester loses unless waiting is
    /// deadlock-free, in which case the caller may retry.
    ///
    /// The lock manager's fast/slow path split is data dependent: which
    /// half of the queueing code runs depends on the bucket — one of the
    /// equal-length branch variants that give same-type transactions the
    /// partial (not total) instruction overlap of Figure 2.
    fn lock(&mut self, xct: XctId, res: Resource, mode: LockMode) -> StorageResult<()> {
        let n = CodeMap::global().n_blocks(Routine::LockAcquire);
        self.rec.exec_slice(Routine::LockAcquire, 0, n / 2);
        let outcome = self.locks.acquire(xct.0, res, mode);
        let variant = match mode {
            LockMode::S | LockMode::IS => 0,
            LockMode::X | LockMode::IX => 1,
        };
        self.rec
            .exec_slice(Routine::LockAcquire, n / 2 + variant * (n / 4), n / 4);
        // Appending to the transaction's lock list touches its descriptor.
        self.rec.data(layout::xct_state_block(xct.0, 2), true);
        match outcome {
            AcquireOutcome::Granted { bucket, .. } => {
                self.rec.data(layout::lock_bucket_block(bucket), true);
                Ok(())
            }
            AcquireOutcome::Conflict { bucket, holders } => {
                self.rec.data(layout::lock_bucket_block(bucket), false);
                if self.locks.would_deadlock(xct.0, &holders) {
                    return Err(StorageError::Deadlock { waiter: xct.0 });
                }
                self.locks.record_wait(xct.0, &holders);
                Err(StorageError::LockConflict {
                    loser: xct.0,
                    holder: holders[0],
                })
            }
        }
    }

    /// Append a log record, emitting the log-insert walk and tail write.
    fn log_emit(&mut self, xct: XctId, payload: LogPayload) {
        let (_, off) = self.log.append(xct.0, payload);
        self.rec.exec(Routine::LogInsert);
        self.rec.data(layout::log_block(off), true);
    }

    /// Fix a page in the buffer pool, emitting the fix walk, the frame
    /// control block, and the page-header read.
    fn bp_fix(&mut self, page: u64) -> StorageResult<()> {
        self.rec.exec(Routine::BpFix);
        let out = self.bp.fix(page)?;
        self.rec.data(layout::bufferpool_block(out.frame), false);
        self.rec.data(layout::page_block(page, 0), false);
        Ok(())
    }

    fn bp_unfix(&mut self, page: u64, dirty: bool) {
        self.rec.exec(Routine::BpUnfix);
        self.bp.unfix(page, dirty);
    }

    /// Emit a root-to-leaf descent: per level, buffer fix + latch + the
    /// traverse loop body + key-area touches at the search position.
    ///
    /// One quarter of the per-level loop body is a data-dependent variant
    /// (binary-search tail, boundary-key handling) selected by the node
    /// and landing position, so different descents share most — not all —
    /// of their instruction blocks.
    fn emit_descent(&mut self, path: &[PathStep]) -> StorageResult<()> {
        let n = CodeMap::global().n_blocks(Routine::BtreeTraverse);
        let quarter = n / 4;
        self.rec.exec_slice(Routine::BtreeTraverse, 0, quarter);
        for step in path {
            self.bp_fix(step.page_id)?;
            self.rec.exec(Routine::LatchAcquire);
            // Common loop body.
            self.rec
                .exec_slice(Routine::BtreeTraverse, quarter, quarter);
            // Data-dependent half-quarter variant.
            let variant = (step.page_id ^ step.pos as u64) % 2;
            self.rec.exec_slice(
                Routine::BtreeTraverse,
                2 * quarter + variant * (quarter / 2),
                quarter / 2,
            );
            // Binary search touches the middle and the landing key blocks.
            let key_area = |pos: usize| {
                let off = 128 + (pos as u64 * 16) % (layout::PAGE_BYTES - 192);
                layout::page_block(step.page_id, off)
            };
            self.rec.data(key_area(step.n_keys / 2), false);
            self.rec.data(key_area(step.pos), false);
            self.rec.exec(Routine::LatchRelease);
            self.bp_unfix(step.page_id, false);
        }
        self.rec
            .exec_slice(Routine::BtreeTraverse, 3 * quarter, n - 3 * quarter);
        Ok(())
    }

    /// Emit structural-modification work (splits, new roots, merges).
    fn emit_smo(&mut self, xct: XctId, index: IndexId, smo: &SmoStats) {
        if !smo.any() {
            return;
        }
        for _ in 0..smo.splits + smo.merges {
            self.rec.exec_part(Routine::StructuralModification, 0, 2);
            self.rec.exec(Routine::LatchAcquire);
            self.rec.exec(Routine::LatchRelease);
        }
        for _ in 0..smo.pages_allocated {
            self.rec.exec(Routine::AllocatePage);
            self.rec.exec(Routine::BpFix);
            self.log_emit(xct, LogPayload::PageAlloc { page: 0 });
        }
        if smo.new_root || smo.root_collapsed || smo.borrows > 0 {
            self.rec.exec_part(Routine::StructuralModification, 1, 2);
        }
        self.log_emit(xct, LogPayload::Smo { index: index.0 });
    }

    /// Emit record-page touches covering the record's full block span
    /// (reading a 250-byte row touches four cache blocks).
    fn emit_record_touch(&mut self, rid: Rid, offset: usize, len: usize, write: bool) {
        let first = layout::page_block(rid.page, offset as u64);
        let last = layout::page_block(rid.page, (offset + len.max(1) - 1) as u64);
        for b in first.0..=last.0.min(first.0 + 7) {
            self.rec.data(addict_sim::BlockAddr(b), write);
        }
    }

    /// Emit the tuple-format decode/encode walk: half common, half chosen
    /// by the record's size class.
    fn emit_tuple_layout(&mut self, len: usize) {
        let n = CodeMap::global().n_blocks(Routine::TupleLayout);
        self.rec.exec_slice(Routine::TupleLayout, 0, n / 2);
        let variant = (len / 64) as u64 % 2;
        self.rec
            .exec_slice(Routine::TupleLayout, n / 2 + variant * (n / 4), n / 4);
    }

    // ------------------------------------------------------------------
    // The five database operations
    // ------------------------------------------------------------------

    /// `index probe` (Figure 1): point lookup by key. Returns the tuple
    /// bytes, or `None` when the key does not exist (the paper's "flag
    /// indicating the key is not found").
    pub fn index_probe(
        &mut self,
        xct: XctId,
        index: IndexId,
        key: u64,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Probe);
        let result = self.index_probe_inner(xct, index, key);
        self.rec.end_op();
        result
    }

    fn index_probe_inner(
        &mut self,
        xct: XctId,
        index: IndexId,
        key: u64,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.rec
            .data(layout::metadata_block(u64::from(index.0)), false);
        self.touch_xct_state(xct, 3, true);
        self.rec.exec_part(Routine::FindKey, 0, 2);
        self.rec.exec_part(Routine::BtreeLookup, 0, 2);

        let idx = self.catalog.index(index)?;
        let table = idx.table;
        let probe = idx.btree.probe(key);
        self.emit_descent(&probe.path)?;
        self.rec.exec_part(Routine::BtreeLookup, 1, 2);

        let Some(packed) = probe.value else {
            self.rec.exec_part(Routine::FindKey, 1, 2);
            return Ok(None);
        };
        let rid = Rid::unpack(packed);

        // Lock the record (by rid, the record's identity), then fetch it.
        self.lock(
            xct,
            Resource::Record {
                table: table.0,
                key: packed,
            },
            LockMode::S,
        )?;
        self.rec.exec(Routine::RecordFetch);
        self.bp_fix(rid.page)?;
        let (bytes, offset) = {
            let t = self.catalog.table(table)?;
            let bytes = t.heap.get(rid)?.to_vec();
            let offset = t.heap.record_offset(rid)?;
            (bytes, offset)
        };
        self.emit_record_touch(rid, offset, bytes.len(), false);
        self.emit_tuple_layout(bytes.len());
        self.bp_unfix(rid.page, false);
        self.rec.exec_part(Routine::FindKey, 1, 2);
        Ok(Some(bytes))
    }

    /// Probe variant returning the rid instead of the bytes (workloads
    /// chain probe -> update on the same record, as TPC transactions do).
    pub fn index_probe_rid(
        &mut self,
        xct: XctId,
        index: IndexId,
        key: u64,
    ) -> StorageResult<Option<Rid>> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Probe);
        let result = self.index_probe_rid_inner(xct, index, key);
        self.rec.end_op();
        result
    }

    fn index_probe_rid_inner(
        &mut self,
        xct: XctId,
        index: IndexId,
        key: u64,
    ) -> StorageResult<Option<Rid>> {
        self.rec
            .data(layout::metadata_block(u64::from(index.0)), false);
        self.touch_xct_state(xct, 3, true);
        self.rec.exec_part(Routine::FindKey, 0, 2);
        self.rec.exec_part(Routine::BtreeLookup, 0, 2);
        let idx = self.catalog.index(index)?;
        let table = idx.table;
        let probe = idx.btree.probe(key);
        self.emit_descent(&probe.path)?;
        self.rec.exec_part(Routine::BtreeLookup, 1, 2);
        let Some(packed) = probe.value else {
            self.rec.exec_part(Routine::FindKey, 1, 2);
            return Ok(None);
        };
        self.lock(
            xct,
            Resource::Record {
                table: table.0,
                key: packed,
            },
            LockMode::S,
        )?;
        self.rec.exec_part(Routine::FindKey, 1, 2);
        Ok(Some(Rid::unpack(packed)))
    }

    /// `index scan` (Figure 1): range scan with per-bound inclusivity.
    /// Returns `(key, tuple bytes)` pairs in key order.
    pub fn index_scan(
        &mut self,
        xct: XctId,
        index: IndexId,
        lo: u64,
        lo_inclusive: bool,
        hi: u64,
        hi_inclusive: bool,
    ) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Scan);
        let result = self.index_scan_inner(xct, index, lo, lo_inclusive, hi, hi_inclusive);
        self.rec.end_op();
        result
    }

    fn index_scan_inner(
        &mut self,
        xct: XctId,
        index: IndexId,
        lo: u64,
        lo_inclusive: bool,
        hi: u64,
        hi_inclusive: bool,
    ) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        self.rec
            .data(layout::metadata_block(u64::from(index.0)), false);
        self.touch_xct_state(xct, 3, true);
        // initialize cursor: position on the start leaf.
        self.rec.exec_part(Routine::InitCursor, 0, 2);
        self.rec.exec_part(Routine::BtreeLookup, 0, 2);
        let idx = self.catalog.index(index)?;
        let table = idx.table;
        let scan = idx.btree.range(lo, lo_inclusive, hi, hi_inclusive);
        self.emit_descent(&scan.path)?;
        self.rec.exec_part(Routine::BtreeLookup, 1, 2);
        self.rec.exec_part(Routine::InitCursor, 1, 2);

        // Coarse table lock instead of one lock per fetched tuple (the
        // scalable-locking configuration the paper runs Shore-MT with).
        self.lock(xct, Resource::Table(table.0), LockMode::S)?;

        // fetch next: the short tuple loop.
        self.rec.exec(Routine::FetchNext);
        let mut out = Vec::with_capacity(scan.items.len());
        let mut current_leaf = scan.leaf_pages.first().copied();
        let mut leaf_iter = scan.leaf_pages.iter().skip(1);
        let per_leaf = (scan.items.len() / scan.leaf_pages.len().max(1)).max(1);
        for (i, &(key, packed)) in scan.items.iter().enumerate() {
            // Leaf transition roughly every `per_leaf` tuples.
            if i > 0 && i % per_leaf == 0 {
                if let Some(&next_leaf) = leaf_iter.next() {
                    self.rec.exec(Routine::LatchRelease);
                    current_leaf = Some(next_leaf);
                    self.bp_fix(next_leaf)?;
                    self.rec.exec(Routine::LatchAcquire);
                    self.bp_unfix(next_leaf, false);
                }
            }
            let fetch_n = CodeMap::global().n_blocks(Routine::FetchNext);
            let variant = (i as u64) % 2;
            self.rec.exec_slice(
                Routine::FetchNext,
                fetch_n / 4 + variant * (fetch_n / 8),
                fetch_n / 8,
            );
            if let Some(leaf) = current_leaf {
                self.rec.data(
                    layout::page_block(leaf, 128 + (i as u64 * 16) % 4096),
                    false,
                );
            }
            let rid = Rid::unpack(packed);
            let (bytes, offset) = {
                let t = self.catalog.table(table)?;
                (t.heap.get(rid)?.to_vec(), t.heap.record_offset(rid)?)
            };
            self.emit_record_touch(rid, offset, bytes.len(), false);
            self.rec.exec_part(Routine::TupleLayout, 0, 4);
            out.push((key, bytes));
        }
        Ok(out)
    }

    /// `update tuple` (Figure 1): rewrite the record at `rid`.
    pub fn update_tuple(
        &mut self,
        xct: XctId,
        table: TableId,
        rid: Rid,
        bytes: &[u8],
    ) -> StorageResult<()> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Update);
        let result = self.update_tuple_inner(xct, table, rid, bytes);
        self.rec.end_op();
        result
    }

    fn update_tuple_inner(
        &mut self,
        xct: XctId,
        table: TableId,
        rid: Rid,
        bytes: &[u8],
    ) -> StorageResult<()> {
        self.rec
            .data(layout::metadata_block(u64::from(table.0)), false);
        self.touch_xct_state(xct, 3, true);
        self.rec.exec_part(Routine::UpdateTupleApi, 0, 2);
        self.lock(
            xct,
            Resource::Record {
                table: table.0,
                key: rid.pack(),
            },
            LockMode::X,
        )?;

        // pin record page.
        self.rec.exec_part(Routine::PinRecordPage, 0, 2);
        self.bp_fix(rid.page)?;
        self.rec.exec(Routine::LatchAcquire);
        self.rec.exec_part(Routine::PinRecordPage, 1, 2);

        // update page: rewrite + log.
        let up_n = CodeMap::global().n_blocks(Routine::UpdatePage);
        self.rec.exec_slice(Routine::UpdatePage, 0, up_n / 2);
        let offset = {
            let t = self.catalog.table_mut(table)?;
            t.heap.update(rid, bytes)?;
            t.heap.record_offset(rid)?
        };
        self.emit_record_touch(rid, offset, bytes.len(), true);
        self.emit_tuple_layout(bytes.len());
        self.log_emit(
            xct,
            LogPayload::Update {
                table: table.0,
                rid,
            },
        );
        let lsn = self.log.next_lsn() - 1;
        if let Some(page) = self.catalog.table_mut(table)?.heap.page_mut(rid.page) {
            page.set_page_lsn(lsn);
        }
        let up_variant = u64::from(table.0) % 2;
        self.rec.exec_slice(
            Routine::UpdatePage,
            up_n / 2 + up_variant * (up_n / 4),
            up_n / 4,
        );

        self.rec.exec(Routine::LatchRelease);
        self.bp_unfix(rid.page, true);
        self.rec.exec_part(Routine::UpdateTupleApi, 1, 2);
        Ok(())
    }

    /// `insert tuple` (Figure 1): create the record, then an entry in every
    /// index of the table. `index_keys` supplies the key for each index
    /// (empty for index-less tables like TPC-B's History).
    pub fn insert_tuple(
        &mut self,
        xct: XctId,
        table: TableId,
        index_keys: &[(IndexId, u64)],
        bytes: &[u8],
    ) -> StorageResult<Rid> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Insert);
        let result = self.insert_tuple_inner(xct, table, index_keys, bytes);
        self.rec.end_op();
        result
    }

    fn insert_tuple_inner(
        &mut self,
        xct: XctId,
        table: TableId,
        index_keys: &[(IndexId, u64)],
        bytes: &[u8],
    ) -> StorageResult<Rid> {
        {
            let t = self.catalog.table(table)?;
            assert_eq!(
                t.indexes.len(),
                index_keys.len(),
                "insert must supply a key per index of {}",
                t.name
            );
        }
        self.rec
            .data(layout::metadata_block(u64::from(table.0)), false);
        self.touch_xct_state(xct, 3, true);
        self.rec.exec_part(Routine::InsertTupleApi, 0, 2);
        self.lock(xct, Resource::Table(table.0), LockMode::IX)?;

        // create record.
        self.rec.exec_part(Routine::CreateRecord, 0, 3);
        let ins = {
            let t = self.catalog.table_mut(table)?;
            t.heap.insert(&mut self.alloc, bytes)?
        };
        if ins.allocated_page {
            // allocate page: the conditional Figure 1 path.
            self.rec.exec(Routine::AllocatePage);
            self.rec.exec(Routine::BpFix);
            self.rec.data(layout::page_block(ins.rid.page, 0), true);
            self.log_emit(xct, LogPayload::PageAlloc { page: ins.rid.page });
        }
        let cr_n = CodeMap::global().n_blocks(Routine::CreateRecord);
        let cr_variant = u64::from(table.0) % 2;
        self.rec.exec_slice(
            Routine::CreateRecord,
            cr_n / 3 + cr_variant * (cr_n / 6),
            cr_n / 6,
        );
        self.bp_fix(ins.rid.page)?;
        let offset = self.catalog.table(table)?.heap.record_offset(ins.rid)?;
        self.emit_record_touch(ins.rid, offset, bytes.len(), true);
        self.emit_tuple_layout(bytes.len());
        self.log_emit(
            xct,
            LogPayload::Insert {
                table: table.0,
                rid: ins.rid,
            },
        );
        self.bp_unfix(ins.rid.page, true);
        self.rec.exec_part(Routine::CreateRecord, 2, 3);

        self.lock(
            xct,
            Resource::Record {
                table: table.0,
                key: ins.rid.pack(),
            },
            LockMode::X,
        )?;

        // create index entry, per index.
        let packed = ins.rid.pack();
        for &(index, key) in index_keys {
            self.rec.exec_part(Routine::CreateIndexEntry, 0, 2);
            let (path, smo, leaf_page) = {
                let idx = self.catalog.index_mut(index)?;
                debug_assert_eq!(idx.table, table, "index belongs to another table");
                let r = idx.btree.insert(&mut self.alloc, key, packed)?;
                let leaf = r.path.last().expect("path reaches a leaf").page_id;
                (r.path, r.smo, leaf)
            };
            self.emit_descent(&path)?;
            self.rec
                .data(layout::page_block(leaf_page, 128 + (key * 16) % 4096), true);
            self.emit_smo(xct, index, &smo);
            self.log_emit(
                xct,
                LogPayload::Insert {
                    table: table.0,
                    rid: ins.rid,
                },
            );
            let cie_n = CodeMap::global().n_blocks(Routine::CreateIndexEntry);
            let cie_variant = leaf_page % 2;
            self.rec.exec_slice(
                Routine::CreateIndexEntry,
                cie_n / 2 + cie_variant * (cie_n / 4),
                cie_n / 4,
            );
        }
        self.rec.exec_part(Routine::InsertTupleApi, 1, 2);
        Ok(ins.rid)
    }

    /// `delete tuple`: locate by the first index key, remove the record and
    /// every index entry.
    pub fn delete_tuple(
        &mut self,
        xct: XctId,
        table: TableId,
        index_keys: &[(IndexId, u64)],
    ) -> StorageResult<()> {
        self.check_active(xct)?;
        self.rec.switch_to(xct.0);
        self.rec.begin_op(OpKind::Delete);
        let result = self.delete_tuple_inner(xct, table, index_keys);
        self.rec.end_op();
        result
    }

    fn delete_tuple_inner(
        &mut self,
        xct: XctId,
        table: TableId,
        index_keys: &[(IndexId, u64)],
    ) -> StorageResult<()> {
        assert!(
            !index_keys.is_empty(),
            "delete locates the record through an index"
        );
        self.rec
            .data(layout::metadata_block(u64::from(table.0)), false);
        self.touch_xct_state(xct, 3, true);
        self.rec.exec_part(Routine::DeleteTupleApi, 0, 2);
        self.lock(xct, Resource::Table(table.0), LockMode::IX)?;

        // Locate through the first index.
        let (first_index, first_key) = index_keys[0];
        let packed = {
            let idx = self.catalog.index(first_index)?;
            let probe = idx.btree.probe(first_key);
            self.emit_descent(&probe.path)?;
            probe
                .value
                .ok_or(StorageError::KeyNotFound { key: first_key })?
        };
        let rid = Rid::unpack(packed);
        self.lock(
            xct,
            Resource::Record {
                table: table.0,
                key: packed,
            },
            LockMode::X,
        )?;

        // Remove the record.
        self.rec.exec(Routine::DeleteRecord);
        self.bp_fix(rid.page)?;
        let offset = self.catalog.table(table)?.heap.record_offset(rid)?;
        self.emit_record_touch(rid, offset, 1, true);
        self.emit_tuple_layout(64);
        {
            let t = self.catalog.table_mut(table)?;
            t.heap.delete(rid)?;
        }
        self.log_emit(
            xct,
            LogPayload::Delete {
                table: table.0,
                rid,
            },
        );
        self.bp_unfix(rid.page, true);

        // Remove every index entry.
        for &(index, key) in index_keys {
            self.rec.exec_part(Routine::DeleteIndexEntry, 0, 2);
            let (path, smo) = {
                let idx = self.catalog.index_mut(index)?;
                let r = idx.btree.delete(key)?;
                (r.path, r.smo)
            };
            self.emit_descent(&path)?;
            self.emit_smo(xct, index, &smo);
            self.log_emit(
                xct,
                LogPayload::Delete {
                    table: table.0,
                    rid,
                },
            );
            self.rec.exec_part(Routine::DeleteIndexEntry, 1, 2);
        }
        self.rec.exec_part(Routine::DeleteTupleApi, 1, 2);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Untraced accessors (population, verification)
    // ------------------------------------------------------------------

    /// Read a tuple without tracing or locking (test verification).
    pub fn peek(&self, table: TableId, rid: Rid) -> StorageResult<Vec<u8>> {
        Ok(self.catalog.table(table)?.heap.get(rid)?.to_vec())
    }

    /// Probe an index without tracing or locking (population, tests).
    pub fn peek_index(&self, index: IndexId, key: u64) -> StorageResult<Option<Rid>> {
        Ok(self
            .catalog
            .index(index)?
            .btree
            .probe(key)
            .value
            .map(Rid::unpack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addict_trace::TraceEvent;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            btree_max_keys: 8,
            ..Default::default()
        })
    }

    /// One table with one index and `n` populated rows keyed 0..n.
    fn populated(n: u64) -> (Engine, TableId, IndexId) {
        let mut e = engine();
        let t = e.create_table("t");
        let i = e.create_index(t, "t_pk").unwrap();
        e.set_tracing(false);
        let x = e.begin(XctTypeId(0));
        for k in 0..n {
            let payload = format!("row-{k:08}");
            e.insert_tuple(x, t, &[(i, k)], payload.as_bytes()).unwrap();
        }
        e.commit(x).unwrap();
        e.set_tracing(true);
        (e, t, i)
    }

    #[test]
    fn probe_finds_inserted_tuple() {
        let (mut e, _t, i) = populated(100);
        let x = e.begin(XctTypeId(0));
        let bytes = e.index_probe(x, i, 42).unwrap().unwrap();
        assert_eq!(bytes, b"row-00000042");
        assert_eq!(e.index_probe(x, i, 100_000).unwrap(), None);
        e.commit(x).unwrap();
    }

    #[test]
    fn probe_trace_contains_markers_and_routine_walks() {
        let (mut e, _t, i) = populated(100);
        let x = e.begin(XctTypeId(7));
        e.index_probe(x, i, 1).unwrap();
        e.commit(x).unwrap();
        let traces = e.take_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.xct_type, XctTypeId(7));
        let ops = t.op_slices();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, OpKind::Probe);
        // The probe span contains FindKey blocks and data accesses.
        let map = addict_trace::CodeMap::global();
        let span = &t.events[ops[0].1.clone()];
        let mut saw_findkey = false;
        let mut saw_data = false;
        for ev in span {
            match ev {
                TraceEvent::Instr { block, .. }
                    if map.routine_of(*block) == Some(Routine::FindKey) =>
                {
                    saw_findkey = true;
                }
                TraceEvent::Data { .. } => saw_data = true,
                _ => {}
            }
        }
        assert!(saw_findkey && saw_data);
    }

    #[test]
    fn update_rewrites_record() {
        let (mut e, t, i) = populated(50);
        let x = e.begin(XctTypeId(0));
        let rid = e.index_probe_rid(x, i, 7).unwrap().unwrap();
        e.update_tuple(x, t, rid, b"updated-row!").unwrap();
        e.commit(x).unwrap();
        assert_eq!(e.peek(t, rid).unwrap(), b"updated-row!");
    }

    #[test]
    fn insert_maintains_all_indexes() {
        let mut e = engine();
        let t = e.create_table("orders");
        let pk = e.create_index(t, "orders_pk").unwrap();
        let sk = e.create_index(t, "orders_by_customer").unwrap();
        let x = e.begin(XctTypeId(0));
        let rid = e
            .insert_tuple(x, t, &[(pk, 1000), (sk, 77)], b"order")
            .unwrap();
        e.commit(x).unwrap();
        assert_eq!(e.peek_index(pk, 1000).unwrap(), Some(rid));
        assert_eq!(e.peek_index(sk, 77).unwrap(), Some(rid));
    }

    #[test]
    fn scan_returns_range_in_order() {
        let (mut e, _t, i) = populated(200);
        let x = e.begin(XctTypeId(0));
        let rows = e.index_scan(x, i, 10, true, 15, false).unwrap();
        let keys: Vec<u64> = rows.iter().map(|r| r.0).collect();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
        assert_eq!(rows[0].1, b"row-00000010");
        e.commit(x).unwrap();
    }

    #[test]
    fn delete_removes_record_and_entries() {
        let (mut e, t, i) = populated(100);
        let x = e.begin(XctTypeId(0));
        e.delete_tuple(x, t, &[(i, 30)]).unwrap();
        assert_eq!(e.index_probe(x, i, 30).unwrap(), None);
        e.commit(x).unwrap();
        assert_eq!(e.peek_index(i, 30).unwrap(), None);
        // Other rows untouched.
        assert!(e.peek_index(i, 31).unwrap().is_some());
    }

    #[test]
    fn page_allocation_emits_allocate_walk() {
        let mut e = engine();
        let t = e.create_table("hist");
        // No index: TPC-B History-style table.
        let x = e.begin(XctTypeId(0));
        // Large rows force a page allocation quickly.
        let big = vec![1u8; 3000];
        for _ in 0..4 {
            e.insert_tuple(x, t, &[], &big).unwrap();
        }
        e.commit(x).unwrap();
        let traces = e.take_traces();
        let map = addict_trace::CodeMap::global();
        let mut alloc_walks = 0;
        for ev in &traces[0].events {
            if let TraceEvent::Instr { block, .. } = ev {
                if map.routine_of(*block) == Some(Routine::AllocatePage) {
                    alloc_walks += 1;
                }
            }
        }
        assert!(alloc_walks >= 2, "4 x 3 KB rows need at least 2 pages");
    }

    #[test]
    fn smo_walks_emitted_on_splits() {
        let mut e = engine(); // fanout 8: splits come fast
        let t = e.create_table("t");
        let i = e.create_index(t, "pk").unwrap();
        let x = e.begin(XctTypeId(0));
        for k in 0..100 {
            e.insert_tuple(x, t, &[(i, k)], b"r").unwrap();
        }
        e.commit(x).unwrap();
        let traces = e.take_traces();
        let map = addict_trace::CodeMap::global();
        let saw_smo = traces[0].events.iter().any(|ev| {
            matches!(ev, TraceEvent::Instr { block, .. }
                if map.routine_of(*block) == Some(Routine::StructuralModification))
        });
        assert!(saw_smo, "100 inserts at fanout 8 must split");
    }

    #[test]
    fn lock_conflict_surfaces_wait_die() {
        let (mut e, t, i) = populated(10);
        let x1 = e.begin(XctTypeId(0));
        let x2 = e.begin(XctTypeId(0));
        let rid = e.index_probe_rid(x1, i, 5).unwrap().unwrap();
        e.update_tuple(x1, t, rid, b"x1-version--").unwrap();
        // x2 probing the same key needs S on a record x1 holds X on.
        let err = e.index_probe(x2, i, 5).unwrap_err();
        assert!(matches!(err, StorageError::LockConflict { loser, .. } if loser == x2.0));
        e.abort(x2).unwrap();
        e.commit(x1).unwrap();
        // After release, a new transaction reads x1's version.
        let x3 = e.begin(XctTypeId(0));
        assert_eq!(e.index_probe(x3, i, 5).unwrap().unwrap(), b"x1-version--");
        e.commit(x3).unwrap();
    }

    #[test]
    fn deadlock_detected_across_two_records() {
        let (mut e, t, i) = populated(10);
        let x1 = e.begin(XctTypeId(0));
        let x2 = e.begin(XctTypeId(0));
        let rid1 = e.index_probe_rid(x1, i, 1).unwrap().unwrap();
        let rid2 = e.index_probe_rid(x2, i, 2).unwrap().unwrap();
        e.update_tuple(x1, t, rid1, b"aaaaaaaaaaaa").unwrap();
        e.update_tuple(x2, t, rid2, b"bbbbbbbbbbbb").unwrap();
        // x1 wants x2's record: conflict, x1 waits.
        assert!(matches!(
            e.update_tuple(x1, t, rid2, b"cccccccccccc"),
            Err(StorageError::LockConflict { .. })
        ));
        // x2 wanting x1's record would close the cycle.
        assert!(matches!(
            e.update_tuple(x2, t, rid1, b"dddddddddddd"),
            Err(StorageError::Deadlock { waiter }) if waiter == x2.0
        ));
        e.abort(x2).unwrap();
        e.commit(x1).unwrap();
    }

    #[test]
    fn commit_forces_log() {
        let (mut e, t, i) = populated(10);
        let x = e.begin(XctTypeId(0));
        let rid = e.index_probe_rid(x, i, 3).unwrap().unwrap();
        e.update_tuple(x, t, rid, b"new-contents").unwrap();
        let before = e.log().durable_lsn();
        e.commit(x).unwrap();
        assert!(e.log().durable_lsn() > before);
    }

    #[test]
    fn untraced_population_leaves_no_traces() {
        let (mut e, _, _) = populated(50);
        assert!(e.take_traces().is_empty(), "population must not be traced");
    }

    #[test]
    fn operations_on_finished_xct_rejected() {
        let (mut e, _t, i) = populated(10);
        let x = e.begin(XctTypeId(0));
        e.commit(x).unwrap();
        assert!(matches!(
            e.index_probe(x, i, 1),
            Err(StorageError::NoSuchXct(_))
        ));
    }
}
