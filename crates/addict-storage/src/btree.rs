//! B+-trees: the index structure behind `index probe`, `index scan`,
//! `create index entry`, and `delete index entry`.
//!
//! * Arena-based nodes (`Vec<Node>`), each bound to a globally unique page
//!   id so index descents emit real per-level data-block accesses — the
//!   upper levels and root are the shared read-mostly blocks Section 2.2.2
//!   observes, the leaves are the rarely shared ones.
//! * Full structural-modification support: leaf/internal splits, root
//!   growth, borrow-from-sibling, merges, and root collapse — the
//!   `structural modification` box of Figure 1. Every operation reports its
//!   SMO activity so the engine can emit the corresponding (conditional)
//!   instruction walks.
//! * Unique keys (`u64 -> u64`); composite workload keys are packed by the
//!   workload layer.

use crate::error::{StorageError, StorageResult};
use crate::heap::PageAllocator;

/// Node handle within one tree's arena.
pub type NodeId = usize;

/// Default maximum keys per node (both leaf and internal). An 8 KB page
/// holds ~500 key/value pairs; 256 keeps trees realistically shallow while
/// exercising splits at workload scale.
pub const DEFAULT_MAX_KEYS: usize = 256;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        keys: Vec<u64>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: Option<NodeId>,
    },
}

impl Node {
    fn n_keys(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// One step of a root-to-leaf descent (for trace emission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Page id of the node visited.
    pub page_id: u64,
    /// Key-array position the search landed on.
    pub pos: usize,
    /// Number of keys in the node (lets the engine scale block touches).
    pub n_keys: usize,
}

/// Structural-modification activity of one mutation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmoStats {
    /// Node splits performed.
    pub splits: u32,
    /// A new root was created (tree grew).
    pub new_root: bool,
    /// Keys borrowed from a sibling.
    pub borrows: u32,
    /// Node merges performed.
    pub merges: u32,
    /// The root collapsed into its single child (tree shrank).
    pub root_collapsed: bool,
    /// Pages allocated for new nodes.
    pub pages_allocated: u32,
}

impl SmoStats {
    /// Did any structural modification happen?
    pub fn any(&self) -> bool {
        self.splits > 0
            || self.new_root
            || self.borrows > 0
            || self.merges > 0
            || self.root_collapsed
    }
}

/// Result of a probe.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Root-to-leaf path visited.
    pub path: Vec<PathStep>,
    /// The value, if the key exists.
    pub value: Option<u64>,
}

/// Result of an insert.
#[derive(Debug, Clone)]
pub struct InsertResult {
    /// Root-to-leaf path visited (pre-split).
    pub path: Vec<PathStep>,
    /// Structural modifications triggered.
    pub smo: SmoStats,
}

/// Result of a delete.
#[derive(Debug, Clone)]
pub struct DeleteResult {
    /// Root-to-leaf path visited.
    pub path: Vec<PathStep>,
    /// The removed value.
    pub value: u64,
    /// Structural modifications triggered.
    pub smo: SmoStats,
}

/// Result of a range scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Root-to-leaf path to the scan's start position.
    pub path: Vec<PathStep>,
    /// Leaf page ids visited while fetching.
    pub leaf_pages: Vec<u64>,
    /// Matching `(key, value)` pairs in key order.
    pub items: Vec<(u64, u64)>,
}

/// A unique-key B+-tree.
#[derive(Debug)]
pub struct BTree {
    nodes: Vec<Node>,
    page_ids: Vec<u64>,
    free: Vec<NodeId>,
    root: NodeId,
    max_keys: usize,
    height: u32,
    len: usize,
}

impl BTree {
    /// An empty tree with the default fanout.
    pub fn new(alloc: &mut PageAllocator) -> Self {
        Self::with_max_keys(alloc, DEFAULT_MAX_KEYS)
    }

    /// An empty tree with a custom fanout (tests use tiny fanouts to force
    /// deep trees and frequent SMOs).
    pub fn with_max_keys(alloc: &mut PageAllocator, max_keys: usize) -> Self {
        assert!(max_keys >= 4, "fanout too small for rebalancing");
        let mut tree = BTree {
            nodes: Vec::new(),
            page_ids: Vec::new(),
            free: Vec::new(),
            root: 0,
            max_keys,
            height: 1,
            len: 0,
        };
        tree.root = tree.alloc_node(
            alloc,
            Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            },
        );
        tree
    }

    fn alloc_node(&mut self, alloc: &mut PageAllocator, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            // Reuse keeps the page id (a freed index page recycled).
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node);
        self.page_ids.push(alloc.alloc());
        id
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels, including the leaf level).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Page id of the root node (a hot shared block).
    pub fn root_page(&self) -> u64 {
        self.page_ids[self.root]
    }

    fn min_keys(&self) -> usize {
        self.max_keys / 2
    }

    /// Descend to the leaf for `key`, recording the path.
    fn descend(&self, key: u64) -> (Vec<PathStep>, Vec<usize>, NodeId) {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut child_idxs = Vec::with_capacity(self.height as usize);
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    path.push(PathStep {
                        page_id: self.page_ids[cur],
                        pos: idx,
                        n_keys: keys.len(),
                    });
                    child_idxs.push(idx);
                    cur = children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let pos = keys.partition_point(|&k| k < key);
                    path.push(PathStep {
                        page_id: self.page_ids[cur],
                        pos,
                        n_keys: keys.len(),
                    });
                    return (path, child_idxs, cur);
                }
            }
        }
    }

    /// Point lookup.
    pub fn probe(&self, key: u64) -> ProbeResult {
        let (path, _, leaf) = self.descend(key);
        let value = match &self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|&k| k < key);
                (pos < keys.len() && keys[pos] == key).then(|| vals[pos])
            }
            Node::Internal { .. } => unreachable!("descend ends at a leaf"),
        };
        ProbeResult { path, value }
    }

    /// Insert a unique key.
    ///
    /// # Errors
    /// [`StorageError::DuplicateKey`] if the key is present.
    pub fn insert(
        &mut self,
        alloc: &mut PageAllocator,
        key: u64,
        value: u64,
    ) -> StorageResult<InsertResult> {
        let (path, child_idxs, leaf) = self.descend(key);
        let mut smo = SmoStats::default();

        // Leaf insertion.
        match &mut self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|&k| k < key);
                if pos < keys.len() && keys[pos] == key {
                    return Err(StorageError::DuplicateKey { key });
                }
                keys.insert(pos, key);
                vals.insert(pos, value);
            }
            Node::Internal { .. } => unreachable!("descend ends at a leaf"),
        }
        self.len += 1;

        // Split propagation, bottom-up along the recorded path.
        let mut cur = leaf;
        let mut ancestors: Vec<NodeId> = self.node_path(&child_idxs);
        debug_assert_eq!(*ancestors.last().unwrap_or(&self.root), cur);
        ancestors.pop(); // drop the leaf itself; what remains are parents
        while self.nodes[cur].n_keys() > self.max_keys {
            let (sep, right) = self.split(alloc, cur, &mut smo);
            match ancestors.pop() {
                Some(parent) => {
                    let Node::Internal { keys, children } = &mut self.nodes[parent] else {
                        unreachable!("parents are internal")
                    };
                    let idx = keys.partition_point(|&k| k <= sep);
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    cur = parent;
                }
                None => {
                    // Root split: grow the tree.
                    let new_root = self.alloc_node(
                        alloc,
                        Node::Internal {
                            keys: vec![sep],
                            children: vec![cur, right],
                        },
                    );
                    smo.pages_allocated += 1;
                    smo.new_root = true;
                    self.root = new_root;
                    self.height += 1;
                    break;
                }
            }
        }
        Ok(InsertResult { path, smo })
    }

    /// Materialize the node ids along a child-index path from the root.
    fn node_path(&self, child_idxs: &[usize]) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(child_idxs.len() + 1);
        let mut cur = self.root;
        ids.push(cur);
        for &idx in child_idxs {
            let Node::Internal { children, .. } = &self.nodes[cur] else {
                unreachable!("child index implies internal node")
            };
            cur = children[idx];
            ids.push(cur);
        }
        ids
    }

    /// Split an overflowing node; returns `(separator, right_id)`.
    fn split(
        &mut self,
        alloc: &mut PageAllocator,
        node: NodeId,
        smo: &mut SmoStats,
    ) -> (u64, NodeId) {
        smo.splits += 1;
        smo.pages_allocated += 1;
        let mid = self.nodes[node].n_keys() / 2;
        match &mut self.nodes[node] {
            Node::Leaf { keys, vals, next } => {
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0];
                let old_next = *next;
                let right = self.alloc_node(
                    alloc,
                    Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                        next: old_next,
                    },
                );
                let Node::Leaf { next, .. } = &mut self.nodes[node] else {
                    unreachable!()
                };
                *next = Some(right);
                (sep, right)
            }
            Node::Internal { keys, children } => {
                // Middle key moves up; right node gets keys after it.
                let sep = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove the separator itself
                let right_children = children.split_off(mid + 1);
                let right = self.alloc_node(
                    alloc,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                );
                (sep, right)
            }
        }
    }

    /// Remove a key.
    ///
    /// # Errors
    /// [`StorageError::KeyNotFound`] if absent.
    pub fn delete(&mut self, key: u64) -> StorageResult<DeleteResult> {
        let (path, child_idxs, leaf) = self.descend(key);
        let mut smo = SmoStats::default();

        let value = match &mut self.nodes[leaf] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|&k| k < key);
                if pos >= keys.len() || keys[pos] != key {
                    return Err(StorageError::KeyNotFound { key });
                }
                keys.remove(pos);
                vals.remove(pos)
            }
            Node::Internal { .. } => unreachable!("descend ends at a leaf"),
        };
        self.len -= 1;

        // Rebalance bottom-up.
        let mut ancestors = self.node_path(&child_idxs);
        let mut idx_in_parent = child_idxs;
        let mut cur = ancestors.pop().expect("path non-empty");
        while cur != self.root && self.nodes[cur].n_keys() < self.min_keys() {
            let parent = *ancestors.last().expect("non-root has a parent");
            let my_idx = idx_in_parent.pop().expect("matching depth");
            if !self.try_borrow(parent, my_idx, &mut smo) {
                self.merge(parent, my_idx, &mut smo);
            }
            cur = parent;
            ancestors.pop();
        }

        // Root collapse: an internal root with a single child shrinks the
        // tree; an empty leaf root just stays (empty tree).
        while let Node::Internal { keys, children } = &self.nodes[self.root] {
            if !keys.is_empty() {
                break;
            }
            let child = children[0];
            self.free.push(self.root);
            self.root = child;
            self.height -= 1;
            smo.root_collapsed = true;
        }

        Ok(DeleteResult { path, value, smo })
    }

    /// Try to borrow a key from a sibling of `children[my_idx]`.
    fn try_borrow(&mut self, parent: NodeId, my_idx: usize, smo: &mut SmoStats) -> bool {
        let Node::Internal { children, .. } = &self.nodes[parent] else {
            unreachable!("parent is internal")
        };
        let n_children = children.len();
        let me = children[my_idx];

        // Prefer the left sibling, then the right.
        for (sib_idx, from_left) in [
            (my_idx.checked_sub(1), true),
            ((my_idx + 1 < n_children).then_some(my_idx + 1), false),
        ] {
            let Some(sib_idx) = sib_idx else { continue };
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            let sib = children[sib_idx];
            if self.nodes[sib].n_keys() <= self.min_keys() {
                continue;
            }
            let sep_idx = if from_left { my_idx - 1 } else { my_idx };
            self.shift_one(parent, sep_idx, sib, me, from_left);
            smo.borrows += 1;
            return true;
        }
        false
    }

    /// Move one entry from `sib` into `me` across separator `sep_idx`.
    fn shift_one(
        &mut self,
        parent: NodeId,
        sep_idx: usize,
        sib: NodeId,
        me: NodeId,
        from_left: bool,
    ) {
        // Take both nodes out to sidestep aliasing.
        let mut sib_node = std::mem::replace(
            &mut self.nodes[sib],
            Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            },
        );
        let mut me_node = std::mem::replace(
            &mut self.nodes[me],
            Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            },
        );
        let new_sep = match (&mut sib_node, &mut me_node) {
            (
                Node::Leaf {
                    keys: sk, vals: sv, ..
                },
                Node::Leaf {
                    keys: mk, vals: mv, ..
                },
            ) => {
                if from_left {
                    let k = sk.pop().expect("sibling has spare keys");
                    let v = sv.pop().expect("parallel arrays");
                    mk.insert(0, k);
                    mv.insert(0, v);
                    mk[0]
                } else {
                    let k = sk.remove(0);
                    let v = sv.remove(0);
                    mk.push(k);
                    mv.push(v);
                    sk[0]
                }
            }
            (
                Node::Internal {
                    keys: sk,
                    children: sc,
                },
                Node::Internal {
                    keys: mk,
                    children: mc,
                },
            ) => {
                let Node::Internal { keys: pk, .. } = &self.nodes[parent] else {
                    unreachable!()
                };
                let old_sep = pk[sep_idx];
                if from_left {
                    let k = sk.pop().expect("sibling has spare keys");
                    let c = sc.pop().expect("parallel arrays");
                    mk.insert(0, old_sep);
                    mc.insert(0, c);
                    k
                } else {
                    let k = sk.remove(0);
                    let c = sc.remove(0);
                    mk.push(old_sep);
                    mc.push(c);
                    k
                }
            }
            _ => unreachable!("siblings are at the same level"),
        };
        self.nodes[sib] = sib_node;
        self.nodes[me] = me_node;
        let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
            unreachable!()
        };
        keys[sep_idx] = new_sep;
    }

    /// Merge `children[my_idx]` with a sibling (the underflowing node always
    /// has a sibling because the parent has ≥ 1 key).
    fn merge(&mut self, parent: NodeId, my_idx: usize, smo: &mut SmoStats) {
        smo.merges += 1;
        let Node::Internal { children, .. } = &self.nodes[parent] else {
            unreachable!()
        };
        // Merge with the left sibling when one exists, else with the right.
        let (left_idx, right_idx) = if my_idx > 0 {
            (my_idx - 1, my_idx)
        } else {
            (my_idx, my_idx + 1)
        };
        let left = children[left_idx];
        let right = children[right_idx];

        let right_node = std::mem::replace(
            &mut self.nodes[right],
            Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            },
        );
        let Node::Internal {
            keys: pk,
            children: pc,
        } = &mut self.nodes[parent]
        else {
            unreachable!()
        };
        let sep = pk.remove(left_idx);
        pc.remove(right_idx);

        match (&mut self.nodes[left], right_node) {
            (
                Node::Leaf {
                    keys: lk,
                    vals: lv,
                    next: ln,
                },
                Node::Leaf {
                    keys: rk,
                    vals: rv,
                    next: rn,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                *ln = rn;
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
        self.free.push(right);
    }

    /// Range scan over `[lo, hi]` with per-bound inclusivity (the paper's
    /// index-scan signature: two keys + two inclusiveness flags).
    pub fn range(&self, lo: u64, lo_inclusive: bool, hi: u64, hi_inclusive: bool) -> ScanResult {
        let (path, _, leaf) = self.descend(lo);
        let mut items = Vec::new();
        let mut leaf_pages = Vec::new();
        let mut cur = Some(leaf);
        'leaves: while let Some(id) = cur {
            let Node::Leaf { keys, vals, next } = &self.nodes[id] else {
                unreachable!("leaf chain stays on leaves")
            };
            leaf_pages.push(self.page_ids[id]);
            for (i, &k) in keys.iter().enumerate() {
                let after_lo = if lo_inclusive { k >= lo } else { k > lo };
                if !after_lo {
                    continue;
                }
                let before_hi = if hi_inclusive { k <= hi } else { k < hi };
                if !before_hi {
                    break 'leaves;
                }
                items.push((k, vals[i]));
            }
            cur = *next;
        }
        ScanResult {
            path,
            leaf_pages,
            items,
        }
    }

    /// Check every structural invariant; used by tests (including property
    /// tests) after each mutation. Cost is O(n).
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let mut leaf_count = 0usize;
        self.check_node(self.root, None, None, self.height, &mut leaf_count);
        assert_eq!(leaf_count, self.len, "len out of sync with leaf contents");
        // Leaf chain is sorted and complete.
        let mut cur = Some(self.leftmost_leaf());
        let mut prev_key: Option<u64> = None;
        let mut chained = 0usize;
        while let Some(id) = cur {
            let Node::Leaf { keys, next, .. } = &self.nodes[id] else {
                panic!("leaf chain reached an internal node")
            };
            for &k in keys {
                assert!(prev_key.is_none_or(|p| p < k), "leaf chain out of order");
                prev_key = Some(k);
                chained += 1;
            }
            cur = *next;
        }
        assert_eq!(chained, self.len, "leaf chain misses keys");
    }

    fn leftmost_leaf(&self) -> NodeId {
        let mut cur = self.root;
        while let Node::Internal { children, .. } = &self.nodes[cur] {
            cur = children[0];
        }
        cur
    }

    fn check_node(
        &self,
        id: NodeId,
        lo: Option<u64>,
        hi: Option<u64>,
        expected_depth: u32,
        leaf_count: &mut usize,
    ) {
        let node = &self.nodes[id];
        // Key ordering and bounds.
        let keys = match node {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys,
        };
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "keys not strictly sorted");
        }
        if let Some(lo) = lo {
            assert!(
                keys.first().is_none_or(|&k| k >= lo),
                "key below subtree bound"
            );
        }
        if let Some(hi) = hi {
            assert!(
                keys.last().is_none_or(|&k| k < hi),
                "key above subtree bound"
            );
        }
        // Occupancy (root exempt).
        if id != self.root {
            assert!(node.n_keys() >= self.min_keys(), "underfull node");
        }
        assert!(node.n_keys() <= self.max_keys, "overfull node");
        match node {
            Node::Leaf { keys, vals, .. } => {
                assert_eq!(expected_depth, 1, "leaves at unequal depth");
                assert_eq!(keys.len(), vals.len(), "parallel arrays diverge");
                *leaf_count += keys.len();
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "fan-out mismatch");
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.check_node(child, clo, chi, expected_depth - 1, leaf_count);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(max_keys: usize) -> (PageAllocator, BTree) {
        let mut alloc = PageAllocator::new();
        let t = BTree::with_max_keys(&mut alloc, max_keys);
        (alloc, t)
    }

    #[test]
    fn empty_probe_returns_none() {
        let (_, t) = tree(4);
        let r = t.probe(42);
        assert_eq!(r.value, None);
        assert_eq!(r.path.len(), 1, "single-leaf tree has a one-step path");
        t.check_invariants();
    }

    #[test]
    fn insert_probe_roundtrip() {
        let (mut alloc, mut t) = tree(4);
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(&mut alloc, k, k * 10).unwrap();
        }
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.probe(k).value, Some(k * 10));
        }
        assert_eq!(t.probe(2).value, None);
        assert_eq!(t.len(), 5);
        t.check_invariants();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (mut alloc, mut t) = tree(4);
        t.insert(&mut alloc, 1, 10).unwrap();
        assert!(matches!(
            t.insert(&mut alloc, 1, 20),
            Err(StorageError::DuplicateKey { key: 1 })
        ));
        assert_eq!(t.probe(1).value, Some(10));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_grow_the_tree_and_report_smo() {
        let (mut alloc, mut t) = tree(4);
        let mut saw_split = false;
        let mut saw_new_root = false;
        for k in 0..100u64 {
            let r = t.insert(&mut alloc, k, k).unwrap();
            saw_split |= r.smo.splits > 0;
            saw_new_root |= r.smo.new_root;
            t.check_invariants();
        }
        assert!(saw_split && saw_new_root);
        assert!(t.height() >= 3, "100 keys at fanout 4 must be deep");
        for k in 0..100u64 {
            assert_eq!(t.probe(k).value, Some(k));
        }
    }

    #[test]
    fn probe_path_length_equals_height() {
        let (mut alloc, mut t) = tree(4);
        for k in 0..200u64 {
            t.insert(&mut alloc, k * 2, k).unwrap();
        }
        let r = t.probe(100);
        assert_eq!(r.path.len() as u32, t.height());
        // Path page ids are distinct.
        let mut pages: Vec<_> = r.path.iter().map(|s| s.page_id).collect();
        pages.dedup();
        assert_eq!(pages.len(), r.path.len());
    }

    #[test]
    fn delete_with_merges_shrinks_back() {
        let (mut alloc, mut t) = tree(4);
        for k in 0..100u64 {
            t.insert(&mut alloc, k, k).unwrap();
        }
        let peak_height = t.height();
        let mut saw_merge = false;
        let mut saw_borrow = false;
        let mut saw_collapse = false;
        for k in 0..100u64 {
            let r = t.delete(k).unwrap();
            assert_eq!(r.value, k);
            saw_merge |= r.smo.merges > 0;
            saw_borrow |= r.smo.borrows > 0;
            saw_collapse |= r.smo.root_collapsed;
            t.check_invariants();
        }
        assert!(saw_merge, "100 deletions at fanout 4 must merge");
        assert!(saw_borrow, "borrowing expected before merging");
        assert!(saw_collapse, "tree must shrink");
        assert!(t.is_empty());
        assert!(t.height() < peak_height);
        assert!(matches!(
            t.delete(5),
            Err(StorageError::KeyNotFound { key: 5 })
        ));
    }

    #[test]
    fn range_scan_with_inclusivity_flags() {
        let (mut alloc, mut t) = tree(4);
        for k in (0..50u64).map(|k| k * 2) {
            t.insert(&mut alloc, k, k + 1).unwrap();
        }
        let r = t.range(10, true, 20, true);
        let keys: Vec<u64> = r.items.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        let r = t.range(10, false, 20, false);
        let keys: Vec<u64> = r.items.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![12, 14, 16, 18]);
        // Scan crosses leaves: more than one leaf page visited.
        let r = t.range(0, true, 98, true);
        assert!(r.leaf_pages.len() > 1);
        assert_eq!(r.items.len(), 50);
        // Empty range.
        let r = t.range(11, true, 11, true);
        assert!(r.items.is_empty());
    }

    #[test]
    fn scan_values_track_keys() {
        let (mut alloc, mut t) = tree(8);
        for k in 0..300u64 {
            t.insert(&mut alloc, k, 1000 + k).unwrap();
        }
        let r = t.range(250, true, 260, false);
        for (k, v) in r.items {
            assert_eq!(v, 1000 + k);
        }
    }

    #[test]
    fn freed_nodes_are_reused() {
        let (mut alloc, mut t) = tree(4);
        for k in 0..200u64 {
            t.insert(&mut alloc, k, k).unwrap();
        }
        let pages_after_build = alloc.allocated();
        for k in 0..200u64 {
            t.delete(k).unwrap();
        }
        for k in 0..200u64 {
            t.insert(&mut alloc, k, k).unwrap();
        }
        // Rebuild reuses freed nodes: few or no new pages.
        assert!(
            alloc.allocated() <= pages_after_build + 2,
            "rebuild allocated {} new pages",
            alloc.allocated() - pages_after_build
        );
        t.check_invariants();
    }

    #[test]
    fn interleaved_insert_delete_stays_consistent() {
        let (mut alloc, mut t) = tree(6);
        // Insert evens, delete every fourth, insert odds.
        for k in (0..400u64).step_by(2) {
            t.insert(&mut alloc, k, k).unwrap();
        }
        for k in (0..400u64).step_by(4) {
            t.delete(k).unwrap();
        }
        for k in (1..400u64).step_by(2) {
            t.insert(&mut alloc, k, k).unwrap();
        }
        t.check_invariants();
        for k in 0..400u64 {
            let expected = if k % 2 == 1 || k % 4 == 2 {
                Some(k)
            } else {
                None
            };
            assert_eq!(t.probe(k).value, expected, "key {k}");
        }
    }

    #[test]
    fn root_page_is_stable_across_leaf_splits() {
        let (mut alloc, mut t) = tree(64);
        let _ = t.root_page();
        for k in 0..64u64 {
            t.insert(&mut alloc, k, k).unwrap();
        }
        // No root split yet at fanout 64 with 64 keys; root page unchanged.
        assert_eq!(t.height(), 1);
    }
}
