//! Failure-injection tests: the engine under resource exhaustion,
//! conflicting transactions, and invalid inputs.

use addict_storage::{Engine, EngineConfig, StorageError};
use addict_trace::XctTypeId;

const T0: XctTypeId = XctTypeId(0);

/// An engine with a pathologically small buffer pool.
fn tiny_bp_engine() -> Engine {
    Engine::new(EngineConfig {
        bufferpool_frames: 4,
        btree_max_keys: 8,
    })
}

#[test]
fn tiny_buffer_pool_still_serves_transactions() {
    // 4 frames with clock eviction: every operation re-fixes pages, so the
    // pool churns constantly but must stay correct.
    let mut e = tiny_bp_engine();
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    e.set_tracing(false);
    let x = e.begin(T0);
    for k in 0..200u64 {
        e.insert_tuple(x, t, &[(i, k)], format!("row{k:05}").as_bytes())
            .unwrap();
    }
    e.commit(x).unwrap();
    e.set_tracing(true);

    let x = e.begin(T0);
    for k in (0..200u64).step_by(17) {
        assert!(e.index_probe(x, i, k).unwrap().is_some(), "key {k}");
    }
    e.commit(x).unwrap();
    let stats = e.bufferpool_stats();
    assert!(stats.evictions > 0, "a 4-frame pool must evict");
    assert!(stats.misses > stats.evictions / 2);
}

#[test]
fn oversized_record_rejected_cleanly() {
    let mut e = Engine::new(EngineConfig::default());
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    let x = e.begin(T0);
    let huge = vec![0u8; 16 * 1024];
    let err = e.insert_tuple(x, t, &[(i, 1)], &huge).unwrap_err();
    assert!(matches!(err, StorageError::RecordTooLarge { .. }));
    // The transaction can continue with a sane insert and commit.
    e.insert_tuple(x, t, &[(i, 1)], b"fine").unwrap();
    e.commit(x).unwrap();
    assert!(e.peek_index(i, 1).unwrap().is_some());
}

#[test]
fn duplicate_key_insert_fails_without_corruption() {
    let mut e = Engine::new(EngineConfig::default());
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    let x = e.begin(T0);
    let rid1 = e.insert_tuple(x, t, &[(i, 42)], b"first").unwrap();
    let err = e.insert_tuple(x, t, &[(i, 42)], b"second").unwrap_err();
    assert!(matches!(err, StorageError::DuplicateKey { key: 42 }));
    e.commit(x).unwrap();
    // The original row is intact; the failed insert's heap record is an
    // orphan (a real system would undo it; ours documents the behavior).
    assert_eq!(e.peek_index(i, 42).unwrap(), Some(rid1));
    assert_eq!(e.peek(t, rid1).unwrap(), b"first");
}

#[test]
fn wait_die_resolves_contention_storm() {
    // Many interleaved transactions fighting over few records: wait-die
    // (young aborts) must keep the system live and deadlock-free.
    let mut e = Engine::new(EngineConfig::default());
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    e.set_tracing(false);
    let x = e.begin(T0);
    for k in 0..4u64 {
        e.insert_tuple(x, t, &[(i, k)], &[7u8; 64]).unwrap();
    }
    e.commit(x).unwrap();
    e.set_tracing(true);

    let mut completed = 0;
    let mut aborted = 0;
    let mut open = Vec::new();
    for round in 0..50u64 {
        let x = e.begin(T0);
        // Two hot keys with up to three transactions in flight: collisions
        // are guaranteed.
        let key = round % 2;
        match e.index_probe_rid(x, i, key) {
            Ok(Some(rid)) => match e.update_tuple(x, t, rid, &[round as u8; 64]) {
                Ok(()) => {
                    open.push(x);
                    if open.len() >= 3 {
                        for x in open.drain(..) {
                            e.commit(x).unwrap();
                            completed += 1;
                        }
                    }
                }
                Err(StorageError::LockConflict { .. } | StorageError::Deadlock { .. }) => {
                    e.abort(x).unwrap();
                    aborted += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            },
            Ok(None) => panic!("populated key missing"),
            Err(StorageError::LockConflict { .. } | StorageError::Deadlock { .. }) => {
                e.abort(x).unwrap();
                aborted += 1;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    for x in open {
        e.commit(x).unwrap();
        completed += 1;
    }
    assert!(completed > 0, "the system must make progress");
    assert!(aborted > 0, "the storm must produce real conflicts");
    assert_eq!(e.locks().n_locked(), 0, "no lock leaks after the storm");
}

#[test]
fn abort_releases_everything() {
    let mut e = Engine::new(EngineConfig::default());
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    let x0 = e.begin(T0);
    e.insert_tuple(x0, t, &[(i, 1)], b"r").unwrap();
    e.commit(x0).unwrap();

    let x1 = e.begin(T0);
    let rid = e.index_probe_rid(x1, i, 1).unwrap().unwrap();
    e.update_tuple(x1, t, rid, b"x").unwrap();
    assert!(e.locks().n_locked() > 0);
    e.abort(x1).unwrap();
    assert_eq!(e.locks().n_locked(), 0);
    // A new transaction acquires the same locks without conflict.
    let x2 = e.begin(T0);
    assert!(e.index_probe(x2, i, 1).unwrap().is_some());
    e.commit(x2).unwrap();
}

#[test]
fn operations_on_unknown_handles_fail_fast() {
    let mut e = Engine::new(EngineConfig::default());
    let t = e.create_table("t");
    let i = e.create_index(t, "pk").unwrap();
    let ghost = addict_storage::XctId(9999);
    assert!(matches!(
        e.index_probe(ghost, i, 1),
        Err(StorageError::NoSuchXct(_))
    ));
    assert!(matches!(e.commit(ghost), Err(StorageError::NoSuchXct(_))));
    // Unknown index id.
    let x = e.begin(T0);
    assert!(matches!(
        e.index_probe(x, addict_storage::IndexId(99), 1),
        Err(StorageError::NoSuchIndex(99))
    ));
    let _ = t;
    e.commit(x).unwrap();
}
