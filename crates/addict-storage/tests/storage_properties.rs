//! Property-based tests: the B+-tree against a `BTreeMap` model, and
//! slotted pages against a vector-of-records model.

use std::collections::BTreeMap;

use addict_storage::btree::BTree;
use addict_storage::heap::PageAllocator;
use addict_storage::page::SlottedPage;
use proptest::prelude::*;

/// Operations the B+-tree model understands.
#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Delete(u64),
    Probe(u64),
    Range(u64, u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    // A small key universe maximizes collisions, duplicates, and deletes of
    // present keys — the interesting cases.
    let key = 0u64..2000;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        2 => key.clone().prop_map(TreeOp::Delete),
        2 => key.clone().prop_map(TreeOp::Probe),
        1 => (key.clone(), key).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The B+-tree behaves exactly like BTreeMap under arbitrary operation
    /// sequences, and its structural invariants hold after every mutation.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(tree_op(), 1..400)) {
        let mut alloc = PageAllocator::new();
        // Tiny fanout so a few hundred keys build a deep tree with constant
        // splits and merges.
        let mut tree = BTree::with_max_keys(&mut alloc, 4);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let tree_result = tree.insert(&mut alloc, k, v);
                    match model.entry(k) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(tree_result.is_err(), "duplicate {k} accepted");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            prop_assert!(tree_result.is_ok(), "fresh insert of {k} rejected");
                            slot.insert(v);
                        }
                    }
                    tree.check_invariants();
                }
                TreeOp::Delete(k) => {
                    let tree_result = tree.delete(k);
                    match model.remove(&k) {
                        Some(v) => {
                            let r = tree_result.expect("model had the key");
                            prop_assert_eq!(r.value, v);
                        }
                        None => prop_assert!(tree_result.is_err(), "phantom delete of {k}"),
                    }
                    tree.check_invariants();
                }
                TreeOp::Probe(k) => {
                    prop_assert_eq!(tree.probe(k).value, model.get(&k).copied());
                }
                TreeOp::Range(lo, hi) => {
                    let got: Vec<(u64, u64)> = tree.range(lo, true, hi, true).items;
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
    }

    /// Scans honor all four inclusivity combinations.
    #[test]
    fn btree_range_inclusivity(
        keys in prop::collection::btree_set(0u64..500, 1..100),
        lo in 0u64..500,
        hi in 0u64..500,
        lo_inc in any::<bool>(),
        hi_inc in any::<bool>(),
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut alloc = PageAllocator::new();
        let mut tree = BTree::with_max_keys(&mut alloc, 6);
        for &k in &keys {
            tree.insert(&mut alloc, k, k).unwrap();
        }
        let got: Vec<u64> =
            tree.range(lo, lo_inc, hi, hi_inc).items.iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&k| {
                (if lo_inc { k >= lo } else { k > lo }) && (if hi_inc { k <= hi } else { k < hi })
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Slotted pages: whatever sequence of inserts/updates/deletes runs, the
    /// live records always read back exactly.
    #[test]
    fn page_matches_model(ops in prop::collection::vec((0u8..3, 0usize..40, 1usize..300), 1..200)) {
        let mut page = SlottedPage::new();
        let mut model: Vec<Option<Vec<u8>>> = Vec::new(); // by slot
        let mut live = 0usize;
        for (kind, target, len) in ops {
            let payload = vec![(len % 251) as u8; len];
            match kind {
                0 => {
                    // Insert.
                    if let Ok(slot) = page.insert(&payload) {
                        let slot = slot as usize;
                        if slot == model.len() {
                            model.push(Some(payload));
                        } else {
                            prop_assert!(model[slot].is_none(), "reused a live slot");
                            model[slot] = Some(payload);
                        }
                        live += 1;
                    }
                }
                1 => {
                    // Update an existing live slot, if any.
                    let slot = if model.is_empty() { 0 } else { target % model.len() };
                    let is_live = model.get(slot).is_some_and(Option::is_some);
                    let r = page.update(slot as u16, &payload);
                    if !is_live {
                        prop_assert!(r.is_err(), "update of dead slot succeeded");
                    } else if r.is_ok() {
                        model[slot] = Some(payload);
                    }
                }
                _ => {
                    // Delete.
                    let slot = if model.is_empty() { 0 } else { target % model.len() };
                    let is_live = model.get(slot).is_some_and(Option::is_some);
                    let deleted = page.delete(slot as u16);
                    prop_assert_eq!(deleted, is_live);
                    if deleted {
                        model[slot] = None;
                        live -= 1;
                    }
                }
            }
            // Full read-back check.
            prop_assert_eq!(page.n_records(), live);
            for (slot, expect) in model.iter().enumerate() {
                prop_assert_eq!(page.get(slot as u16), expect.as_deref(), "slot {}", slot);
            }
        }
    }
}

#[test]
fn btree_large_sequential_build_and_teardown() {
    let mut alloc = PageAllocator::new();
    let mut tree = BTree::new(&mut alloc);
    for k in 0..50_000u64 {
        tree.insert(&mut alloc, k, k ^ 0xAAAA).unwrap();
    }
    tree.check_invariants();
    assert_eq!(tree.len(), 50_000);
    assert!(tree.height() >= 2);
    for k in (0..50_000u64).rev() {
        assert_eq!(tree.delete(k).unwrap().value, k ^ 0xAAAA);
    }
    assert!(tree.is_empty());
    tree.check_invariants();
}

#[test]
fn btree_random_build_matches_sorted_scan() {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut alloc = PageAllocator::new();
    let mut tree = BTree::with_max_keys(&mut alloc, 32);
    let mut keys: Vec<u64> = (0..10_000u64).collect();
    keys.shuffle(&mut rng);
    for &k in &keys {
        tree.insert(&mut alloc, k, k).unwrap();
    }
    tree.check_invariants();
    let scan = tree.range(0, true, u64::MAX, true);
    assert_eq!(scan.items.len(), 10_000);
    assert!(scan.items.windows(2).all(|w| w[0].0 < w[1].0));
}
