//! Interning must be lossless: `intern → flatten` reproduces the original
//! event sequence bit-for-bit for *arbitrary* traces — op-bracketed or
//! not, empty or data-heavy, shared pool or private — and the interned
//! cursor ([`InternedSet`] via [`TraceSet`]) walks the exact flat-event
//! stream of the original. The observational-equivalence obligation of the
//! refactor: the compact form may change memory layout, never meaning.

use addict_sim::BlockAddr;
use addict_trace::set::flat_events_of;
use addict_trace::{
    InternedSet, InternedTrace, InternedWorkload, OpKind, SlicePool, TraceEvent, WorkloadTrace,
    XctTrace, XctTypeId,
};
use proptest::prelude::*;

/// Arbitrary traces: 0–7 operations of varying kind, instruction runs of
/// varying origin/length, data bursts with per-trace addresses, optional
/// wrapper instructions between ops, sometimes no markers at all.
fn arb_trace() -> impl Strategy<Value = XctTrace> {
    let op = prop_oneof![
        Just(OpKind::Probe),
        Just(OpKind::Scan),
        Just(OpKind::Update),
        Just(OpKind::Insert),
        Just(OpKind::Delete),
    ];
    (
        0u16..4,
        prop::collection::vec((op, 0u16..60, 0u64..5, 0u8..5, 0u64..1000, 0u16..3), 0..8),
    )
        .prop_map(|(ty, ops)| {
            let mut events = vec![TraceEvent::XctBegin {
                xct_type: XctTypeId(ty),
            }];
            for (kind, blocks, base_sel, data, data_base, wrapper) in ops {
                if wrapper > 0 {
                    // Wrapper code between operations.
                    events.push(TraceEvent::Instr {
                        block: BlockAddr(0x8000 + base_sel * 0x11),
                        n_blocks: wrapper,
                        ipb: 9,
                    });
                }
                events.push(TraceEvent::OpBegin { op: kind });
                if blocks > 0 {
                    events.push(TraceEvent::Instr {
                        block: BlockAddr(0x1000 + base_sel * 0x77),
                        n_blocks: blocks,
                        ipb: 7,
                    });
                }
                for d in 0..u64::from(data) {
                    events.push(TraceEvent::Data {
                        block: BlockAddr(0x50_000 + data_base * 64 + d),
                        write: d % 2 == 0,
                    });
                }
                events.push(TraceEvent::OpEnd { op: kind });
            }
            events.push(TraceEvent::XctEnd);
            XctTrace {
                xct_type: XctTypeId(ty),
                events,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// intern → flatten is the identity on the event sequence, through a
    /// pool shared by the whole batch.
    #[test]
    fn intern_flatten_roundtrips(traces in prop::collection::vec(arb_trace(), 0..12)) {
        let mut pool = SlicePool::new();
        let interned: Vec<InternedTrace> = traces
            .iter()
            .map(|t| InternedTrace::intern(t, &mut pool))
            .collect();
        for (it, t) in interned.iter().zip(&traces) {
            let back = it.flatten(&pool);
            prop_assert_eq!(back.xct_type, t.xct_type);
            prop_assert_eq!(&back.events, &t.events);
            prop_assert_eq!(it.instructions(&pool), t.instructions());
            prop_assert_eq!(it.data_accesses(), t.data_accesses());
        }
    }

    /// The interned cursor yields the identical flat-event stream.
    #[test]
    fn interned_cursor_walks_flat_stream(traces in prop::collection::vec(arb_trace(), 1..8)) {
        let mut pool = SlicePool::new();
        let interned: Vec<InternedTrace> = traces
            .iter()
            .map(|t| InternedTrace::intern(t, &mut pool))
            .collect();
        let set = InternedSet { pool: &pool, xcts: &interned };
        for i in 0..traces.len() {
            prop_assert_eq!(
                flat_events_of(&set, i),
                flat_events_of(traces.as_slice(), i),
                "trace {} diverged", i
            );
        }
    }

    /// Pool merging (worker-local pool → master arena) is lossless too.
    #[test]
    fn reintern_roundtrips(traces in prop::collection::vec(arb_trace(), 1..8)) {
        let mut local = SlicePool::new();
        let interned: Vec<InternedTrace> = traces
            .iter()
            .map(|t| InternedTrace::intern(t, &mut local))
            .collect();
        let mut master = SlicePool::new();
        for (it, t) in interned.iter().zip(&traces) {
            let merged = it.reintern(&local, &mut master);
            prop_assert_eq!(&merged.flatten(&master).events, &t.events);
        }
    }

    /// The delta-varint address encoding round-trips adversarial
    /// streams: arbitrary `u64` addresses (non-monotone, negative and
    /// >32-bit deltas, region-boundary values) with occasional immediate
    /// duplicates (a region's first touch re-touched, delta 0). Both
    /// decode paths — `flatten` and the cursor walk — must reproduce
    /// every address bit-identically.
    #[test]
    fn extreme_addresses_roundtrip(
        addrs in prop::collection::vec(
            (
                prop_oneof![
                    any::<u64>(),
                    Just(0u64),
                    Just(u64::MAX),
                    Just(i64::MAX as u64),
                    Just(i64::MAX as u64 + 1),
                    (0u32..64).prop_map(|s| 1u64 << s),
                    (0u32..64).prop_map(|s| (1u64 << s).wrapping_sub(1)),
                ],
                any::<bool>(),
            ),
            0..40,
        )
    ) {
        let mut events = vec![TraceEvent::XctBegin { xct_type: XctTypeId(0) }];
        events.push(TraceEvent::OpBegin { op: OpKind::Update });
        for (i, &(a, dup)) in addrs.iter().enumerate() {
            events.push(TraceEvent::Data { block: BlockAddr(a), write: i % 2 == 0 });
            if dup {
                events.push(TraceEvent::Data { block: BlockAddr(a), write: i % 2 != 0 });
            }
            // Split across op bodies so the stream also crosses slice
            // boundaries mid-decode.
            if i % 5 == 4 {
                events.push(TraceEvent::OpEnd { op: OpKind::Update });
                events.push(TraceEvent::OpBegin { op: OpKind::Update });
            }
        }
        events.push(TraceEvent::OpEnd { op: OpKind::Update });
        events.push(TraceEvent::XctEnd);
        let trace = XctTrace { xct_type: XctTypeId(0), events };

        let mut pool = SlicePool::new();
        let interned = InternedTrace::intern(&trace, &mut pool);
        prop_assert_eq!(&interned.flatten(&pool).events, &trace.events);
        let traces = [interned];
        let set = InternedSet { pool: &pool, xcts: &traces };
        prop_assert_eq!(
            flat_events_of(&set, 0),
            flat_events_of(std::slice::from_ref(&trace), 0)
        );
    }

    /// Interning never grows the arena beyond the flat form, and repeats
    /// of one trace shape cost no pool events at all.
    #[test]
    fn pool_never_exceeds_flat(trace in arb_trace(), copies in 1usize..6) {
        let mut pool = SlicePool::new();
        let first = InternedTrace::intern(&trace, &mut pool);
        let after_first = pool.n_events();
        prop_assert!(after_first <= trace.events.len());
        for _ in 1..copies {
            let again = InternedTrace::intern(&trace, &mut pool);
            prop_assert_eq!(&again.slice_refs(), &first.slice_refs());
        }
        prop_assert_eq!(pool.n_events(), after_first, "duplicates grew the pool");
    }
}

/// Same control flow with different data addresses shares every slice —
/// the workload property the arena exploits (TPC traces repeat per-type
/// event shapes while data addresses vary per instance).
#[test]
fn data_addresses_do_not_break_sharing() {
    let shape = |data_base: u64| {
        // One op body shaped like a real probe/update: several routine
        // walks around a couple of data touches.
        let mut events = vec![
            TraceEvent::XctBegin {
                xct_type: XctTypeId(0),
            },
            TraceEvent::OpBegin { op: OpKind::Update },
        ];
        for w in 0..6u64 {
            events.push(TraceEvent::Instr {
                block: BlockAddr(0x1000 + w * 0x40),
                n_blocks: 12,
                ipb: 8,
            });
        }
        events.push(TraceEvent::Data {
            block: BlockAddr(data_base),
            write: false,
        });
        events.push(TraceEvent::Data {
            block: BlockAddr(data_base + 1),
            write: true,
        });
        events.push(TraceEvent::OpEnd { op: OpKind::Update });
        events.push(TraceEvent::XctEnd);
        XctTrace {
            xct_type: XctTypeId(0),
            events,
        }
    };
    let w = WorkloadTrace {
        name: "synthetic".into(),
        xct_type_names: vec!["u".into()],
        xcts: (0..64).map(|i| shape(0x90_000 + i * 128)).collect(),
    };
    let iw = InternedWorkload::from_flat(&w);
    let fp = iw.footprint();
    // 64 same-shape traces: the pool holds one copy of the three slices.
    assert_eq!(fp.dedup_ratio(), 64.0, "{fp:?}");
    assert!(
        fp.reduction() > 2.0,
        "same-shape traces must compress well beyond 2x: {fp:?}"
    );
    // And the round trip still yields each trace's own data addresses.
    let back = iw.flatten();
    for (a, b) in back.xcts.iter().zip(&w.xcts) {
        assert_eq!(a.events, b.events);
    }
}
