//! # addict-trace
//!
//! The Pin substitute: a block-granularity execution-trace model for the
//! ADDICT reproduction.
//!
//! The paper collects x86 instruction/data traces of Shore-MT with Pin and
//! replays them on a timing simulator. We cannot trace native instruction
//! addresses portably, so this crate supplies the substitution documented in
//! DESIGN.md:
//!
//! * a [`codemap`] assigns every storage-manager routine a stable synthetic
//!   code region (a range of 64-byte instruction blocks) whose size is
//!   calibrated to the footprint ratios of Figure 1 and Shore-MT's overall
//!   128–256 KB instruction footprint;
//! * a [`recorder`] is threaded through the *real* storage engine
//!   (`addict-storage`): as the engine executes a transaction, every routine
//!   it enters emits its block walk, and every page/structure it touches
//!   emits data-block events. Code-path variety (index-vs-no-index inserts,
//!   page allocations, structural modifications) therefore emerges from the
//!   engine's actual control flow, exactly the property ADDICT exploits;
//! * [`event`] defines the portable trace format with transaction and
//!   operation entry/exit markers — the "indicators" Algorithm 1 takes as
//!   input;
//! * [`footprint`] computes the per-instance instruction/data footprints
//!   the Section 2 characterization is built on;
//! * [`intern`] stores traces in a deduplicated, arena-backed form —
//!   repeated event slices interned once into a shared [`SlicePool`] —
//!   so the replay working set scales with *distinct code paths*, not
//!   trace count;
//! * [`set`] defines [`TraceSet`], the replay-facing cursor abstraction
//!   both the flat and the interned layouts implement.

pub mod codemap;
pub mod event;
pub mod footprint;
pub mod intern;
pub mod layout;
pub mod recorder;
pub mod set;

pub use codemap::{CodeMap, Routine};
pub use event::{OpKind, TraceEvent, WorkloadTrace, XctTrace, XctTypeId};
pub use footprint::Footprint;
pub use intern::{
    InternFootprint, InternedSet, InternedTrace, InternedWorkload, SlicePool, SliceRef,
};
pub use recorder::TraceRecorder;
pub use set::{DataRun, Fetched, TraceSet};
