//! The trace recorder the storage engine drives while executing
//! transactions.
//!
//! Several transactions may be open at once (the engine interleaves them on
//! one thread, as callers of a storage manager do); each gets its own event
//! stream, keyed by a caller-chosen `u64` handle. The engine *switches* the
//! recorder to a transaction before emitting events for it — mirroring how
//! Pin attributes trace events to the thread executing them.
//!
//! Emission primitives:
//!
//! * [`TraceRecorder::exec`] — the full block walk of a routine (straight
//!   line code),
//! * [`TraceRecorder::exec_part`] — one slice of a routine's region (loop
//!   bodies, conditional halves),
//! * [`TraceRecorder::data`] — one data-block access.
//!
//! The recorder can be disabled, in which case every call is a cheap no-op
//! — the storage engine runs identically either way, so plain storage tests
//! pay nothing for the instrumentation.

use std::collections::HashMap;

use addict_sim::BlockAddr;

use crate::codemap::{CodeMap, Routine};
use crate::event::{OpKind, TraceEvent, XctTrace, XctTypeId};

#[derive(Debug)]
struct OpenTrace {
    trace: XctTrace,
    op_open: Option<OpKind>,
}

/// Records per-transaction traces of engine execution.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: bool,
    open: HashMap<u64, OpenTrace>,
    current: Option<u64>,
    finished: Vec<XctTrace>,
}

impl TraceRecorder {
    /// A recorder that captures events.
    pub fn new() -> Self {
        TraceRecorder {
            enabled: true,
            open: HashMap::new(),
            current: None,
            finished: Vec::new(),
        }
    }

    /// A recorder that drops everything (for untraced engine runs).
    pub fn disabled() -> Self {
        TraceRecorder {
            enabled: false,
            ..Self::new()
        }
    }

    /// Is this recorder capturing?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn capturing on or off (population runs are untraced).
    ///
    /// # Panics
    /// Panics if any transaction is open.
    pub fn set_enabled(&mut self, on: bool) {
        assert!(
            self.open.is_empty(),
            "cannot toggle tracing with open transactions"
        );
        self.enabled = on;
    }

    /// Start a transaction under `handle` and make it current. The engine
    /// is expected to emit the `XctBegin` routine walk itself right after.
    ///
    /// # Panics
    /// Panics if `handle` is already open.
    pub fn begin_xct(&mut self, handle: u64, xct_type: XctTypeId) {
        if !self.enabled {
            return;
        }
        let mut trace = XctTrace {
            xct_type,
            events: Vec::with_capacity(4096),
        };
        trace.events.push(TraceEvent::XctBegin { xct_type });
        let prev = self.open.insert(
            handle,
            OpenTrace {
                trace,
                op_open: None,
            },
        );
        assert!(prev.is_none(), "begin_xct: handle {handle} already open");
        self.current = Some(handle);
    }

    /// Direct subsequent events to `handle`'s trace.
    ///
    /// # Panics
    /// Panics if `handle` is not open.
    pub fn switch_to(&mut self, handle: u64) {
        if !self.enabled {
            return;
        }
        assert!(
            self.open.contains_key(&handle),
            "switch_to unknown handle {handle}"
        );
        self.current = Some(handle);
    }

    /// Finish transaction `handle`.
    ///
    /// # Panics
    /// Panics if `handle` is not open or has an operation still open.
    pub fn end_xct(&mut self, handle: u64) {
        if !self.enabled {
            return;
        }
        let mut open = self
            .open
            .remove(&handle)
            .expect("end_xct without begin_xct");
        assert!(
            open.op_open.is_none(),
            "end_xct with an operation still open"
        );
        open.trace.events.push(TraceEvent::XctEnd);
        self.finished.push(open.trace);
        if self.current == Some(handle) {
            self.current = None;
        }
    }

    fn cur(&mut self) -> Option<&mut OpenTrace> {
        let handle = self.current?;
        self.open.get_mut(&handle)
    }

    /// Enter a database operation on the current transaction.
    pub fn begin_op(&mut self, op: OpKind) {
        if !self.enabled {
            return;
        }
        let open = self.cur().expect("begin_op outside a transaction");
        assert!(open.op_open.is_none(), "operations do not nest");
        open.op_open = Some(op);
        open.trace.events.push(TraceEvent::OpBegin { op });
    }

    /// Exit the open database operation on the current transaction.
    pub fn end_op(&mut self) {
        if !self.enabled {
            return;
        }
        let open = self.cur().expect("end_op outside a transaction");
        let op = open.op_open.take().expect("end_op without begin_op");
        open.trace.events.push(TraceEvent::OpEnd { op });
    }

    /// Emit the full block walk of `routine`.
    #[inline]
    pub fn exec(&mut self, routine: Routine) {
        if !self.enabled {
            return;
        }
        let map = CodeMap::global();
        self.walk(routine, 0, map.n_blocks(routine));
    }

    /// Emit one slice of `routine`'s region: part `part` of `of` equal
    /// parts. Used for loop bodies and conditional halves so that runtime
    /// control flow shapes the instruction stream.
    ///
    /// # Panics
    /// Panics if `part >= of` or `of == 0`.
    pub fn exec_part(&mut self, routine: Routine, part: u64, of: u64) {
        assert!(of > 0 && part < of, "exec_part({part}, {of}) out of range");
        if !self.enabled {
            return;
        }
        let n = CodeMap::global().n_blocks(routine);
        let start = n * part / of;
        let end = n * (part + 1) / of;
        self.walk(routine, start, end);
    }

    /// Emit an exact block slice `[start, start+len)` of `routine`'s
    /// region. The engine uses this for *data-dependent branch variants*:
    /// equal-length alternative slices chosen by runtime values (key bits,
    /// bucket indexes, record sizes), which produce the partial same-type
    /// instruction overlap the paper measures in Figure 2 — without
    /// changing the routine's total footprint.
    ///
    /// # Panics
    /// Panics if the slice exceeds the routine's region.
    pub fn exec_slice(&mut self, routine: Routine, start: u64, len: u64) {
        let n = CodeMap::global().n_blocks(routine);
        assert!(
            start + len <= n,
            "slice {start}+{len} exceeds {routine:?} ({n} blocks)"
        );
        if !self.enabled {
            return;
        }
        self.walk(routine, start, start + len);
    }

    fn walk(&mut self, routine: Routine, from: u64, to: u64) {
        if from == to {
            return;
        }
        let map = CodeMap::global();
        let base = map.base(routine).0;
        let ipb = map.instrs_per_block(routine);
        let n = u16::try_from(to - from).expect("routine regions fit u16 blocks");
        let Some(open) = self.cur() else { return };
        open.trace.events.push(TraceEvent::Instr {
            block: BlockAddr(base + from),
            n_blocks: n,
            ipb,
        });
    }

    /// Emit one data access on the current transaction.
    #[inline]
    pub fn data(&mut self, block: BlockAddr, write: bool) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.cur() else { return };
        open.trace.events.push(TraceEvent::Data { block, write });
    }

    /// Number of completed traces held.
    pub fn len(&self) -> usize {
        self.finished.len()
    }

    /// True when no completed traces are held.
    pub fn is_empty(&self) -> bool {
        self.finished.is_empty()
    }

    /// Drain the completed traces (in completion order).
    pub fn take_traces(&mut self) -> Vec<XctTrace> {
        std::mem::take(&mut self.finished)
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::CodeMap;

    #[test]
    fn records_a_bracketed_transaction() {
        let mut r = TraceRecorder::new();
        r.begin_xct(1, XctTypeId(3));
        r.begin_op(OpKind::Probe);
        r.exec(Routine::FindKey);
        r.data(BlockAddr(0x9999), false);
        r.end_op();
        r.end_xct(1);
        let traces = r.take_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.xct_type, XctTypeId(3));
        assert!(matches!(
            t.events.first(),
            Some(TraceEvent::XctBegin { .. })
        ));
        assert!(matches!(t.events.last(), Some(TraceEvent::XctEnd)));
        let map = CodeMap::global();
        assert_eq!(t.instr_accesses(), map.n_blocks(Routine::FindKey));
        assert_eq!(t.data_accesses(), 1);
    }

    #[test]
    fn interleaved_transactions_keep_separate_streams() {
        let mut r = TraceRecorder::new();
        r.begin_xct(1, XctTypeId(0));
        r.begin_xct(2, XctTypeId(1));
        // Events for 2 (current after begin), then switch back to 1.
        r.data(BlockAddr(200), false);
        r.switch_to(1);
        r.data(BlockAddr(100), false);
        r.data(BlockAddr(101), false);
        r.switch_to(2);
        r.data(BlockAddr(201), true);
        r.end_xct(2);
        r.end_xct(1);
        let traces = r.take_traces();
        assert_eq!(traces.len(), 2);
        // Completion order: 2 first.
        assert_eq!(traces[0].xct_type, XctTypeId(1));
        assert_eq!(traces[0].data_accesses(), 2);
        assert_eq!(traces[1].xct_type, XctTypeId(0));
        assert_eq!(traces[1].data_accesses(), 2);
        // No cross-contamination.
        assert!(traces[1].events.iter().all(|e| !matches!(
            e,
            TraceEvent::Data { block, .. } if block.0 >= 200
        )));
    }

    #[test]
    fn exec_part_slices_cover_whole_region_disjointly() {
        let mut r = TraceRecorder::new();
        r.begin_xct(0, XctTypeId(0));
        for part in 0..3 {
            r.exec_part(Routine::BtreeTraverse, part, 3);
        }
        r.end_xct(0);
        let t = &r.take_traces()[0];
        let map = CodeMap::global();
        let base = map.base(Routine::BtreeTraverse).0;
        let n = map.n_blocks(Routine::BtreeTraverse);
        let mut seen = std::collections::HashSet::new();
        for e in t.flat_events() {
            if let crate::event::FlatEvent::Instr { block, .. } = e {
                if (base..base + n).contains(&block.0) {
                    assert!(seen.insert(block.0), "block visited twice across parts");
                }
            }
        }
        assert_eq!(seen.len() as u64, n, "parts did not cover the region");
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let mut r = TraceRecorder::disabled();
        r.begin_xct(5, XctTypeId(0));
        r.exec(Routine::FindKey);
        r.data(BlockAddr(1), true);
        r.end_xct(5);
        assert!(r.take_traces().is_empty());
    }

    #[test]
    fn set_enabled_toggles_capture() {
        let mut r = TraceRecorder::new();
        r.set_enabled(false);
        r.begin_xct(1, XctTypeId(0));
        r.end_xct(1);
        assert!(r.is_empty());
        r.set_enabled(true);
        r.begin_xct(2, XctTypeId(0));
        r.end_xct(2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn duplicate_handle_rejected() {
        let mut r = TraceRecorder::new();
        r.begin_xct(1, XctTypeId(0));
        r.begin_xct(1, XctTypeId(1));
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_operations_rejected() {
        let mut r = TraceRecorder::new();
        r.begin_xct(1, XctTypeId(0));
        r.begin_op(OpKind::Probe);
        r.begin_op(OpKind::Update);
    }

    #[test]
    #[should_panic(expected = "unknown handle")]
    fn switch_to_unknown_handle_rejected() {
        let mut r = TraceRecorder::new();
        r.switch_to(42);
    }

    #[test]
    fn multiple_transactions_accumulate() {
        let mut r = TraceRecorder::new();
        for i in 0..5 {
            r.begin_xct(i, XctTypeId(i as u16));
            r.end_xct(i);
        }
        assert_eq!(r.len(), 5);
        let traces = r.take_traces();
        assert_eq!(traces.len(), 5);
        assert!(r.is_empty());
    }
}
