//! [`TraceSet`]: the replay-facing view of a batch of traces.
//!
//! The replay engine (`addict-core`) walks traces through this trait so the
//! same discrete-event loop runs over both storage layouts:
//!
//! * flat `[XctTrace]` — every trace owns its `Vec<TraceEvent>`;
//! * interned [`InternedSet`](crate::intern::InternedSet) — traces are
//!   compact [`SliceRef`](crate::intern::SliceRef) sequences into one
//!   shared, deduplicated [`SlicePool`](crate::intern::SlicePool) arena.
//!
//! The contract is *fetch-once-per-step*: [`TraceSet::fetch`] reads the
//! trace exactly once and returns everything the engine needs — the flat
//! event to execute **and** the run geometry required to advance past it —
//! so the hot loop never re-reads the trace to step the cursor (the old
//! cursor did up to three lookups per event: `peek`, `instr_run`, and
//! `advance` each re-fetched `events[idx]`).

use addict_sim::BlockAddr;

use crate::event::{FlatEvent, TraceEvent, XctTrace, XctTypeId};

/// Everything the replay engine learns from one trace fetch.
///
/// Instruction runs are reported segment-granularly: `Run` describes the
/// *remainder* of the run at the cursor, so the segment engine can execute
/// it whole, and the per-block path can synthesize the single
/// [`FlatEvent::Instr`] at its head without a second lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// The cursor stands inside an instruction run: next block to fetch,
    /// blocks remaining in the run (including this one), and instructions
    /// charged per block.
    Run {
        /// Next instruction block.
        block: BlockAddr,
        /// Blocks left in the run, this one included (always ≥ 1).
        rem: u16,
        /// Dynamic instructions per block visit.
        ipb: u16,
    },
    /// A marker or data event.
    Event(FlatEvent),
    /// The trace is exhausted.
    End,
}

/// A replayable batch of traces.
///
/// Implementations must be cheap to `fetch` repeatedly: the replay engine
/// calls it once per executed event (or once per *segment* on the
/// segment-granular fast path) and never re-reads the trace to advance.
pub trait TraceSet {
    /// Per-thread cursor state. `Default` is the start of any trace.
    type Cursor: Copy + Default + std::fmt::Debug;

    /// Number of traces.
    fn len(&self) -> usize;

    /// True when there are no traces.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transaction type of trace `idx`.
    fn xct_type(&self, idx: usize) -> XctTypeId;

    /// Total dynamic instructions of trace `idx` (STREX's load balancer).
    fn instructions_of(&self, idx: usize) -> u64;

    /// What stands at `cur` in trace `idx`. The single trace read per
    /// engine step.
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched;

    /// Consume `k` blocks of the instruction run that `fetch` reported
    /// with `rem` blocks remaining (`1 <= k <= rem`; `k == rem` ends the
    /// run). Pure cursor arithmetic — no trace re-read for the flat
    /// layout, one slice-length lookup for the interned one.
    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16);

    /// Consume the non-run event that `fetch` reported as `ev` (the event
    /// is passed back so interned cursors can step their data-address
    /// stream without resolving the pool again).
    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent);
}

/// Cursor over a flat trace's run-length-encoded events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlatCursor {
    /// Index into `events`.
    idx: usize,
    /// Block offset within the current instruction run.
    off: u16,
}

impl TraceSet for [XctTrace] {
    type Cursor = FlatCursor;

    fn len(&self) -> usize {
        <[XctTrace]>::len(self)
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        self[idx].xct_type
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        self[idx].instructions()
    }

    #[inline]
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        match self[idx].events.get(cur.idx) {
            None => Fetched::End,
            Some(&TraceEvent::Instr {
                block,
                n_blocks,
                ipb,
            }) => Fetched::Run {
                block: BlockAddr(block.0 + u64::from(cur.off)),
                rem: n_blocks - cur.off,
                ipb,
            },
            Some(&TraceEvent::XctBegin { xct_type }) => {
                Fetched::Event(FlatEvent::XctBegin(xct_type))
            }
            Some(&TraceEvent::XctEnd) => Fetched::Event(FlatEvent::XctEnd),
            Some(&TraceEvent::OpBegin { op }) => Fetched::Event(FlatEvent::OpBegin(op)),
            Some(&TraceEvent::OpEnd { op }) => Fetched::Event(FlatEvent::OpEnd(op)),
            Some(&TraceEvent::Data { block, write }) => {
                Fetched::Event(FlatEvent::Data { block, write })
            }
        }
    }

    #[inline]
    fn advance_run(&self, _idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        debug_assert!(k >= 1 && k <= rem);
        if k == rem {
            cur.idx += 1;
            cur.off = 0;
        } else {
            cur.off += k;
        }
    }

    #[inline]
    fn advance_event(&self, _idx: usize, cur: &mut Self::Cursor, _ev: FlatEvent) {
        cur.idx += 1;
    }
}

impl TraceSet for Vec<XctTrace> {
    type Cursor = FlatCursor;

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        TraceSet::xct_type(self.as_slice(), idx)
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        TraceSet::instructions_of(self.as_slice(), idx)
    }

    #[inline]
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        TraceSet::fetch(self.as_slice(), idx, cur)
    }

    #[inline]
    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        TraceSet::advance_run(self.as_slice(), idx, cur, rem, k);
    }

    #[inline]
    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent) {
        TraceSet::advance_event(self.as_slice(), idx, cur, ev);
    }
}

/// Walk a whole trace through a [`TraceSet`] as flat events (test and
/// diagnostic helper; the replay engine drives the cursor itself).
pub fn flat_events_of<T: TraceSet + ?Sized>(set: &T, idx: usize) -> Vec<FlatEvent> {
    let mut cur = T::Cursor::default();
    let mut out = Vec::new();
    loop {
        match set.fetch(idx, cur) {
            Fetched::End => break,
            Fetched::Run { block, rem, ipb } => {
                out.push(FlatEvent::Instr {
                    block,
                    n_instr: ipb,
                });
                set.advance_run(idx, &mut cur, rem, 1);
            }
            Fetched::Event(ev) => {
                out.push(ev);
                set.advance_event(idx, &mut cur, ev);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;

    fn sample() -> Vec<XctTrace> {
        vec![XctTrace {
            xct_type: XctTypeId(7),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(7),
                },
                TraceEvent::OpBegin { op: OpKind::Probe },
                TraceEvent::Instr {
                    block: BlockAddr(0x40),
                    n_blocks: 3,
                    ipb: 5,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000),
                    write: true,
                },
                TraceEvent::OpEnd { op: OpKind::Probe },
                TraceEvent::XctEnd,
            ],
        }]
    }

    #[test]
    fn fetch_reports_run_remainders() {
        let traces = sample();
        let set = traces.as_slice();
        let mut cur = FlatCursor::default();
        // Skip XctBegin and OpBegin.
        for _ in 0..2 {
            let Fetched::Event(ev) = set.fetch(0, cur) else {
                panic!("expected marker")
            };
            set.advance_event(0, &mut cur, ev);
        }
        assert_eq!(
            set.fetch(0, cur),
            Fetched::Run {
                block: BlockAddr(0x40),
                rem: 3,
                ipb: 5
            }
        );
        set.advance_run(0, &mut cur, 3, 2);
        assert_eq!(
            set.fetch(0, cur),
            Fetched::Run {
                block: BlockAddr(0x42),
                rem: 1,
                ipb: 5
            }
        );
        set.advance_run(0, &mut cur, 1, 1);
        assert!(matches!(
            set.fetch(0, cur),
            Fetched::Event(FlatEvent::Data { .. })
        ));
    }

    #[test]
    fn flat_walk_matches_event_flatten() {
        let traces = sample();
        let via_set = flat_events_of(traces.as_slice(), 0);
        let via_flatten: Vec<FlatEvent> = traces[0].flat_events().collect();
        assert_eq!(via_set, via_flatten);
    }

    #[test]
    fn exhausted_cursor_fetches_end() {
        let traces = vec![XctTrace {
            xct_type: XctTypeId(0),
            events: vec![],
        }];
        assert_eq!(
            TraceSet::fetch(traces.as_slice(), 0, FlatCursor::default()),
            Fetched::End
        );
    }
}
