//! [`TraceSet`]: the replay-facing view of a batch of traces.
//!
//! The replay engine (`addict-core`) walks traces through this trait so the
//! same discrete-event loop runs over both storage layouts:
//!
//! * flat `[XctTrace]` — every trace owns its `Vec<TraceEvent>`;
//! * interned [`InternedSet`](crate::intern::InternedSet) — traces are
//!   compact [`SliceRef`](crate::intern::SliceRef) sequences into one
//!   shared, deduplicated [`SlicePool`](crate::intern::SlicePool) arena.
//!
//! The contract is *fetch-once-per-step*: [`TraceSet::fetch`] reads the
//! trace exactly once and returns everything the engine needs — the flat
//! event to execute **and** the run geometry required to advance past it —
//! so the hot loop never re-reads the trace to step the cursor (the old
//! cursor did up to three lookups per event: `peek`, `instr_run`, and
//! `advance` each re-fetched `events[idx]`).

use addict_sim::{BlockAddr, DataAccess};

use crate::event::{FlatEvent, TraceEvent, XctTrace, XctTypeId};

/// A reusable buffer holding one coalesced run of consecutive data
/// accesses — the lazily-computed *data-run view* of a trace.
///
/// Traces store `Data` events exactly as before (the interned `SlicePool`
/// is untouched); a `DataRun` materializes only at replay time, when
/// [`TraceSet::gather_data_run`] collects the consecutive `Data` events at
/// the cursor so the machine can execute them run-granularly. The engine
/// keeps one `DataRun` for the whole replay: the backing `Vec` grows to
/// the longest run once and is reused, keeping the hot loop
/// allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct DataRun {
    accesses: Vec<DataAccess>,
}

impl DataRun {
    /// An empty run buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the previous run's contents (capacity is kept).
    pub fn clear(&mut self) {
        self.accesses.clear();
    }

    /// Append one access (implementors of
    /// [`TraceSet::gather_data_run`] fill the buffer through this).
    pub fn push(&mut self, access: DataAccess) {
        self.accesses.push(access);
    }

    /// The gathered accesses, in trace order.
    pub fn accesses(&self) -> &[DataAccess] {
        &self.accesses
    }

    /// Number of gathered accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when nothing was gathered.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Everything the replay engine learns from one trace fetch.
///
/// Instruction runs are reported segment-granularly: `Run` describes the
/// *remainder* of the run at the cursor, so the segment engine can execute
/// it whole, and the per-block path can synthesize the single
/// [`FlatEvent::Instr`] at its head without a second lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// The cursor stands inside an instruction run: next block to fetch,
    /// blocks remaining in the run (including this one), and instructions
    /// charged per block.
    Run {
        /// Next instruction block.
        block: BlockAddr,
        /// Blocks left in the run, this one included (always ≥ 1).
        rem: u16,
        /// Dynamic instructions per block visit.
        ipb: u16,
    },
    /// A marker or data event.
    Event(FlatEvent),
    /// The trace is exhausted.
    End,
}

/// A replayable batch of traces.
///
/// Implementations must be cheap to `fetch` repeatedly: the replay engine
/// calls it once per executed event (or once per *segment* on the
/// segment-granular fast path) and never re-reads the trace to advance.
pub trait TraceSet {
    /// Per-thread cursor state. `Default` is the start of any trace.
    type Cursor: Copy + Default + std::fmt::Debug;

    /// Number of traces.
    fn len(&self) -> usize;

    /// True when there are no traces.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transaction type of trace `idx`.
    fn xct_type(&self, idx: usize) -> XctTypeId;

    /// Total dynamic instructions of trace `idx` (STREX's load balancer).
    fn instructions_of(&self, idx: usize) -> u64;

    /// What stands at `cur` in trace `idx`. The single trace read per
    /// engine step.
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched;

    /// Consume `k` blocks of the instruction run that `fetch` reported
    /// with `rem` blocks remaining (`1 <= k <= rem`; `k == rem` ends the
    /// run). Pure cursor arithmetic — no trace re-read for the flat
    /// layout, one slice-length lookup for the interned one.
    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16);

    /// Consume the non-run event that `fetch` reported as `ev` (the event
    /// is passed back so interned cursors can step their data-address
    /// stream without resolving the pool again).
    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent);

    /// Collect the run of consecutive `Data` events standing at `cur` into
    /// `run` (cleared first), without advancing the cursor. Returns the run
    /// length — `0` when the cursor does not stand at a data event. The
    /// data-run view is computed lazily here, at replay time: traces (and
    /// the interned pool) store per-event `Data` entries unchanged.
    ///
    /// The default walks a cursor *copy* through `fetch`/`advance_event`,
    /// so it is consistent with per-event fetching by construction;
    /// layouts may override it with a direct scan (the flat slice layout
    /// does).
    fn gather_data_run(&self, idx: usize, cur: Self::Cursor, run: &mut DataRun) -> usize {
        run.clear();
        let mut c = cur;
        while let Fetched::Event(ev @ FlatEvent::Data { block, write }) = self.fetch(idx, c) {
            run.push(DataAccess { block, write });
            self.advance_event(idx, &mut c, ev);
        }
        run.len()
    }

    /// Hint that trace `idx` will replay soon (the engine calls this for
    /// the next queued trace when a segment starts, one pick ahead of
    /// use). Implementations may issue software prefetches for the
    /// trace's backing storage; purely advisory — it must not observe or
    /// mutate anything a replay could see. The schedulers that
    /// time-multiplex the whole workload (STREX's Admission::All
    /// round-robin) resume a cache-cold trace every few hundred events
    /// once the workload outgrows the host's L2; warming the dependent
    /// head of that chain (trace struct → slice refs → encoded data) a
    /// segment early is what keeps their 10k-transaction rate near the
    /// 400-transaction one. Default: no-op.
    #[inline]
    fn prefetch(&self, _idx: usize) {}

    /// Consume `k` consecutive data events previously reported by
    /// [`TraceSet::gather_data_run`] (`1 <= k <=` the gathered length).
    /// Pure cursor arithmetic, like [`TraceSet::advance_run`].
    fn advance_data_run(&self, idx: usize, cur: &mut Self::Cursor, k: usize) {
        // The event payload is irrelevant to cursor stepping beyond being
        // a `Data` (interned cursors bump their data-address position).
        let stand_in = FlatEvent::Data {
            block: BlockAddr(0),
            write: false,
        };
        for _ in 0..k {
            self.advance_event(idx, cur, stand_in);
        }
    }
}

/// Issue a best-effort cache prefetch for the line holding `p`. A no-op
/// on non-x86_64 targets; never a correctness concern anywhere (the
/// instruction has no architectural effect).
#[inline(always)]
pub(crate) fn prefetch_ptr<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure hint — valid for any address,
    // including dangling ones — and SSE is baseline on x86_64.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Cursor over a flat trace's run-length-encoded events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlatCursor {
    /// Index into `events`.
    idx: usize,
    /// Block offset within the current instruction run.
    off: u16,
}

impl TraceSet for [XctTrace] {
    type Cursor = FlatCursor;

    fn len(&self) -> usize {
        <[XctTrace]>::len(self)
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        self[idx].xct_type
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        self[idx].instructions()
    }

    #[inline]
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        match self[idx].events.get(cur.idx) {
            None => Fetched::End,
            Some(&TraceEvent::Instr {
                block,
                n_blocks,
                ipb,
            }) => Fetched::Run {
                block: BlockAddr(block.0 + u64::from(cur.off)),
                rem: n_blocks - cur.off,
                ipb,
            },
            Some(&TraceEvent::XctBegin { xct_type }) => {
                Fetched::Event(FlatEvent::XctBegin(xct_type))
            }
            Some(&TraceEvent::XctEnd) => Fetched::Event(FlatEvent::XctEnd),
            Some(&TraceEvent::OpBegin { op }) => Fetched::Event(FlatEvent::OpBegin(op)),
            Some(&TraceEvent::OpEnd { op }) => Fetched::Event(FlatEvent::OpEnd(op)),
            Some(&TraceEvent::Data { block, write }) => {
                Fetched::Event(FlatEvent::Data { block, write })
            }
        }
    }

    #[inline]
    fn advance_run(&self, _idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        debug_assert!(k >= 1 && k <= rem);
        if k == rem {
            cur.idx += 1;
            cur.off = 0;
        } else {
            cur.off += k;
        }
    }

    #[inline]
    fn advance_event(&self, _idx: usize, cur: &mut Self::Cursor, _ev: FlatEvent) {
        cur.idx += 1;
    }

    /// Direct scan over the event slice: consecutive `Data` events sit at
    /// consecutive indexes, so the run is the longest `Data` prefix of
    /// `events[cur.idx..]`.
    fn gather_data_run(&self, idx: usize, cur: Self::Cursor, run: &mut DataRun) -> usize {
        run.clear();
        for e in &self[idx].events[cur.idx..] {
            let &TraceEvent::Data { block, write } = e else {
                break;
            };
            run.push(DataAccess { block, write });
        }
        run.len()
    }

    #[inline]
    fn advance_data_run(&self, _idx: usize, cur: &mut Self::Cursor, k: usize) {
        debug_assert_eq!(cur.off, 0, "a data run never starts mid-instruction-run");
        cur.idx += k;
    }

    // Warm the head of the dependent chain a resumed trace walks: the
    // `XctTrace` struct, then the event buffer it points at (the pointer
    // load overlaps under out-of-order execution; nothing consumes it).
    #[inline]
    fn prefetch(&self, idx: usize) {
        let t = &self[idx];
        prefetch_ptr(t);
        prefetch_ptr(t.events.as_ptr());
    }
}

impl TraceSet for Vec<XctTrace> {
    type Cursor = FlatCursor;

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn xct_type(&self, idx: usize) -> XctTypeId {
        TraceSet::xct_type(self.as_slice(), idx)
    }

    fn instructions_of(&self, idx: usize) -> u64 {
        TraceSet::instructions_of(self.as_slice(), idx)
    }

    #[inline]
    fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
        TraceSet::fetch(self.as_slice(), idx, cur)
    }

    #[inline]
    fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
        TraceSet::advance_run(self.as_slice(), idx, cur, rem, k);
    }

    #[inline]
    fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent) {
        TraceSet::advance_event(self.as_slice(), idx, cur, ev);
    }

    #[inline]
    fn gather_data_run(&self, idx: usize, cur: Self::Cursor, run: &mut DataRun) -> usize {
        TraceSet::gather_data_run(self.as_slice(), idx, cur, run)
    }

    #[inline]
    fn advance_data_run(&self, idx: usize, cur: &mut Self::Cursor, k: usize) {
        TraceSet::advance_data_run(self.as_slice(), idx, cur, k);
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        TraceSet::prefetch(self.as_slice(), idx);
    }
}

/// Walk a whole trace through a [`TraceSet`] as flat events (test and
/// diagnostic helper; the replay engine drives the cursor itself).
pub fn flat_events_of<T: TraceSet + ?Sized>(set: &T, idx: usize) -> Vec<FlatEvent> {
    let mut cur = T::Cursor::default();
    let mut out = Vec::new();
    loop {
        match set.fetch(idx, cur) {
            Fetched::End => break,
            Fetched::Run { block, rem, ipb } => {
                out.push(FlatEvent::Instr {
                    block,
                    n_instr: ipb,
                });
                set.advance_run(idx, &mut cur, rem, 1);
            }
            Fetched::Event(ev) => {
                out.push(ev);
                set.advance_event(idx, &mut cur, ev);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;

    fn sample() -> Vec<XctTrace> {
        vec![XctTrace {
            xct_type: XctTypeId(7),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(7),
                },
                TraceEvent::OpBegin { op: OpKind::Probe },
                TraceEvent::Instr {
                    block: BlockAddr(0x40),
                    n_blocks: 3,
                    ipb: 5,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000),
                    write: true,
                },
                TraceEvent::OpEnd { op: OpKind::Probe },
                TraceEvent::XctEnd,
            ],
        }]
    }

    #[test]
    fn fetch_reports_run_remainders() {
        let traces = sample();
        let set = traces.as_slice();
        let mut cur = FlatCursor::default();
        // Skip XctBegin and OpBegin.
        for _ in 0..2 {
            let Fetched::Event(ev) = set.fetch(0, cur) else {
                panic!("expected marker")
            };
            set.advance_event(0, &mut cur, ev);
        }
        assert_eq!(
            set.fetch(0, cur),
            Fetched::Run {
                block: BlockAddr(0x40),
                rem: 3,
                ipb: 5
            }
        );
        set.advance_run(0, &mut cur, 3, 2);
        assert_eq!(
            set.fetch(0, cur),
            Fetched::Run {
                block: BlockAddr(0x42),
                rem: 1,
                ipb: 5
            }
        );
        set.advance_run(0, &mut cur, 1, 1);
        assert!(matches!(
            set.fetch(0, cur),
            Fetched::Event(FlatEvent::Data { .. })
        ));
    }

    #[test]
    fn flat_walk_matches_event_flatten() {
        let traces = sample();
        let via_set = flat_events_of(traces.as_slice(), 0);
        let via_flatten: Vec<FlatEvent> = traces[0].flat_events().collect();
        assert_eq!(via_set, via_flatten);
    }

    /// Gather/advance through any layout must agree with walking the same
    /// events one at a time via `fetch`/`advance_event` — here exercised
    /// on the flat layout's specialized overrides.
    #[test]
    fn gather_data_run_matches_per_event_walk() {
        let traces = vec![XctTrace {
            xct_type: XctTypeId(1),
            events: vec![
                TraceEvent::XctBegin {
                    xct_type: XctTypeId(1),
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000),
                    write: false,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9001),
                    write: true,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9000),
                    write: false,
                },
                TraceEvent::Instr {
                    block: BlockAddr(0x40),
                    n_blocks: 2,
                    ipb: 5,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x9002),
                    write: true,
                },
                TraceEvent::XctEnd,
            ],
        }];
        let set = traces.as_slice();
        let mut cur = FlatCursor::default();
        let mut run = DataRun::new();
        // At XctBegin: no data run.
        assert_eq!(set.gather_data_run(0, cur, &mut run), 0);
        let Fetched::Event(ev) = set.fetch(0, cur) else {
            panic!("marker expected")
        };
        set.advance_event(0, &mut cur, ev);
        // At the first Data: a 3-access run, gathered without advancing.
        assert_eq!(set.gather_data_run(0, cur, &mut run), 3);
        assert_eq!(
            run.accesses(),
            &[
                DataAccess {
                    block: BlockAddr(0x9000),
                    write: false
                },
                DataAccess {
                    block: BlockAddr(0x9001),
                    write: true
                },
                DataAccess {
                    block: BlockAddr(0x9000),
                    write: false
                },
            ]
        );
        // Partial consumption lands mid-run: the remainder re-gathers.
        let mut partial = cur;
        set.advance_data_run(0, &mut partial, 2);
        assert_eq!(set.gather_data_run(0, partial, &mut run), 1);
        // Full consumption lands exactly on the instruction run.
        set.advance_data_run(0, &mut cur, 3);
        assert!(matches!(set.fetch(0, cur), Fetched::Run { .. }));
        // Mid-instruction-run cursors gather nothing.
        set.advance_run(0, &mut cur, 2, 1);
        assert_eq!(set.gather_data_run(0, cur, &mut run), 0);
        assert!(run.is_empty());
    }

    /// A layout that keeps the trait's *default*
    /// `gather_data_run`/`advance_data_run` (both flat and interned
    /// override them with direct scans, so without this wrapper the
    /// defaults — the contract future implementors inherit — would have
    /// zero coverage).
    struct DefaultOnly(Vec<XctTrace>);

    impl TraceSet for DefaultOnly {
        type Cursor = FlatCursor;

        fn len(&self) -> usize {
            self.0.len()
        }

        fn xct_type(&self, idx: usize) -> XctTypeId {
            self.0[idx].xct_type
        }

        fn instructions_of(&self, idx: usize) -> u64 {
            self.0[idx].instructions()
        }

        fn fetch(&self, idx: usize, cur: Self::Cursor) -> Fetched {
            TraceSet::fetch(self.0.as_slice(), idx, cur)
        }

        fn advance_run(&self, idx: usize, cur: &mut Self::Cursor, rem: u16, k: u16) {
            TraceSet::advance_run(self.0.as_slice(), idx, cur, rem, k);
        }

        fn advance_event(&self, idx: usize, cur: &mut Self::Cursor, ev: FlatEvent) {
            TraceSet::advance_event(self.0.as_slice(), idx, cur, ev);
        }
        // gather_data_run / advance_data_run: trait defaults.
    }

    /// The default cursor-copy gather and advance agree with the flat
    /// layout's specialized overrides at every position of a trace.
    #[test]
    fn default_data_run_impls_match_specialized() {
        let traces = vec![XctTrace {
            xct_type: XctTypeId(0),
            events: vec![
                TraceEvent::Data {
                    block: BlockAddr(0x100),
                    write: true,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x101),
                    write: false,
                },
                TraceEvent::Instr {
                    block: BlockAddr(0x40),
                    n_blocks: 2,
                    ipb: 5,
                },
                TraceEvent::Data {
                    block: BlockAddr(0x102),
                    write: true,
                },
            ],
        }];
        let fallback = DefaultOnly(traces.clone());
        let spec = traces.as_slice();
        let mut dc = FlatCursor::default();
        let mut sc = FlatCursor::default();
        let mut drun = DataRun::new();
        let mut srun = DataRun::new();
        loop {
            let n = fallback.gather_data_run(0, dc, &mut drun);
            assert_eq!(spec.gather_data_run(0, sc, &mut srun), n);
            assert_eq!(drun.accesses(), srun.accesses());
            if n > 0 {
                fallback.advance_data_run(0, &mut dc, n);
                spec.advance_data_run(0, &mut sc, n);
                assert_eq!(dc, sc, "cursors diverged after advancing {n}");
                continue;
            }
            match spec.fetch(0, sc) {
                Fetched::End => break,
                Fetched::Run { rem, .. } => {
                    fallback.advance_run(0, &mut dc, rem, 1);
                    spec.advance_run(0, &mut sc, rem, 1);
                }
                Fetched::Event(ev) => {
                    fallback.advance_event(0, &mut dc, ev);
                    spec.advance_event(0, &mut sc, ev);
                }
            }
        }
    }

    #[test]
    fn exhausted_cursor_fetches_end() {
        let traces = vec![XctTrace {
            xct_type: XctTypeId(0),
            events: vec![],
        }];
        assert_eq!(
            TraceSet::fetch(traces.as_slice(), 0, FlatCursor::default()),
            Fetched::End
        );
    }
}
