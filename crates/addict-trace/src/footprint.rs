//! Footprint extraction: the unique instruction and data blocks touched by
//! a span of trace events, plus per-block access counts.
//!
//! These are the primitives the Section 2 characterization (crate
//! `addict-analysis`) builds on: Figure 2 compares footprints *across*
//! instances, Figure 3 counts accesses *within* one instance.

use std::collections::{BTreeMap, BTreeSet};

use addict_sim::BlockAddr;

use crate::event::TraceEvent;

/// The unique blocks touched by some span of execution, split by kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Unique instruction blocks.
    pub instr: BTreeSet<BlockAddr>,
    /// Unique data blocks.
    pub data: BTreeSet<BlockAddr>,
}

impl Footprint {
    /// Footprint of a span of events.
    pub fn of_events(events: &[TraceEvent]) -> Self {
        let mut fp = Footprint::default();
        for e in events {
            match e {
                TraceEvent::Instr {
                    block, n_blocks, ..
                } => {
                    for i in 0..u64::from(*n_blocks) {
                        fp.instr.insert(BlockAddr(block.0 + i));
                    }
                }
                TraceEvent::Data { block, .. } => {
                    fp.data.insert(*block);
                }
                _ => {}
            }
        }
        fp
    }

    /// Union with another footprint.
    pub fn union(&mut self, other: &Footprint) {
        self.instr.extend(other.instr.iter().copied());
        self.data.extend(other.data.iter().copied());
    }

    /// Instruction footprint in bytes.
    pub fn instr_bytes(&self) -> u64 {
        self.instr.len() as u64 * 64
    }

    /// Data footprint in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64 * 64
    }
}

/// Per-block access counts over a span of events (Figure 3's "average reuse
/// count" numerator).
#[derive(Debug, Clone, Default)]
pub struct AccessCounts {
    /// Accesses per instruction block.
    pub instr: BTreeMap<BlockAddr, u64>,
    /// Accesses per data block.
    pub data: BTreeMap<BlockAddr, u64>,
}

impl AccessCounts {
    /// Count accesses in a span of events.
    pub fn of_events(events: &[TraceEvent]) -> Self {
        let mut c = AccessCounts::default();
        for e in events {
            match e {
                TraceEvent::Instr {
                    block, n_blocks, ..
                } => {
                    for i in 0..u64::from(*n_blocks) {
                        *c.instr.entry(BlockAddr(block.0 + i)).or_insert(0) += 1;
                    }
                }
                TraceEvent::Data { block, .. } => *c.data.entry(*block).or_insert(0) += 1,
                _ => {}
            }
        }
        c
    }

    /// Merge counts from another span.
    pub fn merge(&mut self, other: &AccessCounts) {
        for (&b, &n) in &other.instr {
            *self.instr.entry(b).or_insert(0) += n;
        }
        for (&b, &n) in &other.data {
            *self.data.entry(b).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpKind, XctTypeId};

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::XctBegin {
                xct_type: XctTypeId(0),
            },
            TraceEvent::Instr {
                block: BlockAddr(10),
                n_blocks: 1,
                ipb: 5,
            },
            TraceEvent::Instr {
                block: BlockAddr(10),
                n_blocks: 2,
                ipb: 5,
            },
            TraceEvent::OpBegin { op: OpKind::Probe },
            TraceEvent::Data {
                block: BlockAddr(100),
                write: false,
            },
            TraceEvent::Data {
                block: BlockAddr(100),
                write: true,
            },
            TraceEvent::Data {
                block: BlockAddr(101),
                write: false,
            },
            TraceEvent::OpEnd { op: OpKind::Probe },
            TraceEvent::XctEnd,
        ]
    }

    #[test]
    fn footprint_deduplicates() {
        let fp = Footprint::of_events(&events());
        assert_eq!(fp.instr.len(), 2);
        assert_eq!(fp.data.len(), 2);
        assert_eq!(fp.instr_bytes(), 128);
        assert_eq!(fp.data_bytes(), 128);
    }

    #[test]
    fn union_accumulates() {
        let mut a = Footprint::of_events(&events());
        let b = Footprint::of_events(&[TraceEvent::Instr {
            block: BlockAddr(99),
            n_blocks: 1,
            ipb: 1,
        }]);
        a.union(&b);
        assert_eq!(a.instr.len(), 3);
    }

    #[test]
    fn counts_accumulate_per_block() {
        let c = AccessCounts::of_events(&events());
        assert_eq!(c.instr[&BlockAddr(10)], 2);
        assert_eq!(c.instr[&BlockAddr(11)], 1);
        assert_eq!(c.data[&BlockAddr(100)], 2);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = AccessCounts::of_events(&events());
        let b = AccessCounts::of_events(&events());
        a.merge(&b);
        assert_eq!(a.instr[&BlockAddr(10)], 4);
        assert_eq!(a.data[&BlockAddr(101)], 2);
    }

    #[test]
    fn empty_span_is_empty() {
        let fp = Footprint::of_events(&[]);
        assert!(fp.instr.is_empty() && fp.data.is_empty());
    }
}
