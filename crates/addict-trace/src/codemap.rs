//! The synthetic code map: every storage-manager routine owns a stable
//! region of instruction blocks.
//!
//! This is the heart of the Pin substitution. Each routine of the
//! `addict-storage` engine is registered here with:
//!
//! * an **exclusive footprint** in 64-byte blocks, calibrated so that the
//!   *inclusive* footprints (routine + everything it calls) reproduce the
//!   percentages of Figure 1 of the paper (e.g. `lookup` ≈ 73% of
//!   `find key`, `allocate page` ≈ 47% of `create record`), and the total
//!   code size lands inside Shore-MT's measured 128–256 KB instruction
//!   footprint;
//! * a static **call graph** mirroring Figure 1's flow graph, used by the
//!   Figure 1 analysis to attribute inclusive footprints;
//! * an **instructions-per-block** density used when the recorder emits the
//!   routine's block walk.
//!
//! Because regions are deterministic, different *instances* of the same
//! operation touch the same instruction blocks — the high instruction
//! overlap of Section 2.2.1 — while conditional routines (page allocation,
//! structural modification) diversify the stream exactly when the real
//! engine takes those paths.

use std::collections::HashSet;
use std::sync::OnceLock;

use addict_sim::BlockAddr;

use crate::layout::CODE_BASE;

/// Every instrumented routine of the storage manager.
///
/// The names follow Figure 1 of the paper where the figure names them
/// (`find key`, `lookup`, `traverse`, `initialize cursor`, `fetch next`,
/// `pin record page`, `update page`, `create record`, `create index entry`,
/// `allocate page`, `structural modification`) plus the infrastructure
/// routines every operation leans on (buffer pool, latches, locks, log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Routine {
    /// Transaction begin: allocate xct state, write begin log record.
    XctBegin,
    /// Transaction commit: release locks, write commit record.
    XctCommit,
    /// Buffer-pool fix (hash lookup, pin).
    BpFix,
    /// Buffer-pool unfix.
    BpUnfix,
    /// Page latch acquire.
    LatchAcquire,
    /// Page latch release.
    LatchRelease,
    /// Lock-manager acquire (hash, queue, grant).
    LockAcquire,
    /// Lock-manager release.
    LockRelease,
    /// Log-manager record insertion.
    LogInsert,
    /// Tuple/record format encode-decode.
    TupleLayout,
    /// Storage-manager probe API (`find key` in Figure 1).
    FindKey,
    /// Index lookup dispatch (`lookup`).
    BtreeLookup,
    /// Root-to-leaf descent (`traverse`).
    BtreeTraverse,
    /// Record retrieval after the descent.
    RecordFetch,
    /// Scan start (`initialize cursor`).
    InitCursor,
    /// Scan iteration (`fetch next`).
    FetchNext,
    /// Update API entry.
    UpdateTupleApi,
    /// `pin record page`.
    PinRecordPage,
    /// `update page` (record rewrite + log).
    UpdatePage,
    /// Insert API entry.
    InsertTupleApi,
    /// `create record`.
    CreateRecord,
    /// `allocate page` (conditional: only when no page has space).
    AllocatePage,
    /// `create index entry`.
    CreateIndexEntry,
    /// `structural modification` (conditional: splits, new roots).
    StructuralModification,
    /// Delete API entry.
    DeleteTupleApi,
    /// Record removal.
    DeleteRecord,
    /// Index-entry removal.
    DeleteIndexEntry,
}

/// Static metadata for one routine.
#[derive(Debug, Clone, Copy)]
struct RoutineMeta {
    routine: Routine,
    /// Exclusive footprint in 64-byte blocks.
    blocks: u64,
    /// Dynamic instructions charged per block visit.
    instrs_per_block: u16,
    /// Static callees (Figure 1 flow graph + infrastructure).
    calls: &'static [Routine],
}

use Routine::*;

/// The calibrated table. Region bases are assigned in declaration order
/// starting at [`CODE_BASE`]. Total: 2798 blocks ≈ 179 KB, inside
/// Shore-MT's 128–256 KB (Section 4.6 of the paper).
const ROUTINES: &[RoutineMeta] = &[
    RoutineMeta {
        routine: XctBegin,
        blocks: 48,
        instrs_per_block: 11,
        calls: &[LogInsert],
    },
    RoutineMeta {
        routine: XctCommit,
        blocks: 96,
        instrs_per_block: 10,
        calls: &[LogInsert, LockRelease],
    },
    RoutineMeta {
        routine: BpFix,
        blocks: 56,
        instrs_per_block: 9,
        calls: &[],
    },
    RoutineMeta {
        routine: BpUnfix,
        blocks: 16,
        instrs_per_block: 8,
        calls: &[],
    },
    RoutineMeta {
        routine: LatchAcquire,
        blocks: 12,
        instrs_per_block: 8,
        calls: &[],
    },
    RoutineMeta {
        routine: LatchRelease,
        blocks: 8,
        instrs_per_block: 8,
        calls: &[],
    },
    RoutineMeta {
        routine: LockAcquire,
        blocks: 96,
        instrs_per_block: 12,
        calls: &[],
    },
    RoutineMeta {
        routine: LockRelease,
        blocks: 48,
        instrs_per_block: 10,
        calls: &[],
    },
    RoutineMeta {
        routine: LogInsert,
        blocks: 80,
        instrs_per_block: 11,
        calls: &[],
    },
    RoutineMeta {
        routine: TupleLayout,
        blocks: 48,
        instrs_per_block: 13,
        calls: &[],
    },
    RoutineMeta {
        routine: FindKey,
        blocks: 64,
        instrs_per_block: 10,
        calls: &[BtreeLookup, LockAcquire, RecordFetch],
    },
    RoutineMeta {
        routine: BtreeLookup,
        blocks: 112,
        instrs_per_block: 11,
        calls: &[BtreeTraverse],
    },
    RoutineMeta {
        routine: BtreeTraverse,
        blocks: 160,
        instrs_per_block: 12,
        calls: &[BpFix, LatchAcquire, LatchRelease, LockAcquire],
    },
    RoutineMeta {
        routine: RecordFetch,
        blocks: 64,
        instrs_per_block: 10,
        calls: &[BpFix, TupleLayout],
    },
    RoutineMeta {
        routine: InitCursor,
        blocks: 180,
        instrs_per_block: 11,
        calls: &[BtreeLookup, LockAcquire],
    },
    RoutineMeta {
        routine: FetchNext,
        blocks: 120,
        instrs_per_block: 14,
        calls: &[TupleLayout, LatchAcquire, LatchRelease],
    },
    RoutineMeta {
        routine: UpdateTupleApi,
        blocks: 48,
        instrs_per_block: 10,
        calls: &[PinRecordPage, UpdatePage],
    },
    RoutineMeta {
        routine: PinRecordPage,
        blocks: 150,
        instrs_per_block: 10,
        calls: &[BpFix, LatchAcquire],
    },
    RoutineMeta {
        routine: UpdatePage,
        blocks: 130,
        instrs_per_block: 11,
        calls: &[TupleLayout, LogInsert],
    },
    RoutineMeta {
        routine: InsertTupleApi,
        blocks: 56,
        instrs_per_block: 10,
        calls: &[CreateRecord, CreateIndexEntry, LockAcquire],
    },
    RoutineMeta {
        routine: CreateRecord,
        blocks: 350,
        instrs_per_block: 11,
        calls: &[BpFix, TupleLayout, LogInsert, AllocatePage],
    },
    RoutineMeta {
        routine: AllocatePage,
        blocks: 220,
        instrs_per_block: 10,
        calls: &[BpFix, LogInsert],
    },
    RoutineMeta {
        routine: CreateIndexEntry,
        blocks: 100,
        instrs_per_block: 11,
        calls: &[BtreeTraverse, LogInsert, StructuralModification],
    },
    RoutineMeta {
        routine: StructuralModification,
        blocks: 220,
        instrs_per_block: 10,
        calls: &[AllocatePage, LogInsert, LatchAcquire, LatchRelease],
    },
    RoutineMeta {
        routine: DeleteTupleApi,
        blocks: 56,
        instrs_per_block: 10,
        calls: &[DeleteRecord, DeleteIndexEntry, LockAcquire],
    },
    RoutineMeta {
        routine: DeleteRecord,
        blocks: 120,
        instrs_per_block: 10,
        calls: &[BpFix, TupleLayout, LogInsert],
    },
    RoutineMeta {
        routine: DeleteIndexEntry,
        blocks: 140,
        instrs_per_block: 11,
        calls: &[BtreeTraverse, LogInsert, StructuralModification],
    },
];

/// All routines, in region order.
pub const ALL_ROUTINES: [Routine; 27] = [
    XctBegin,
    XctCommit,
    BpFix,
    BpUnfix,
    LatchAcquire,
    LatchRelease,
    LockAcquire,
    LockRelease,
    LogInsert,
    TupleLayout,
    FindKey,
    BtreeLookup,
    BtreeTraverse,
    RecordFetch,
    InitCursor,
    FetchNext,
    UpdateTupleApi,
    PinRecordPage,
    UpdatePage,
    InsertTupleApi,
    CreateRecord,
    AllocatePage,
    CreateIndexEntry,
    StructuralModification,
    DeleteTupleApi,
    DeleteRecord,
    DeleteIndexEntry,
];

/// The immutable code map: region assignment + call graph queries.
#[derive(Debug)]
pub struct CodeMap {
    /// Region base block per routine (indexed by discriminant).
    bases: Vec<u64>,
}

impl CodeMap {
    fn build() -> CodeMap {
        let mut bases = Vec::with_capacity(ROUTINES.len());
        let mut next = CODE_BASE;
        for meta in ROUTINES {
            debug_assert_eq!(meta.routine as usize, bases.len(), "table order mismatch");
            bases.push(next);
            next += meta.blocks;
        }
        CodeMap { bases }
    }

    /// The process-wide code map.
    pub fn global() -> &'static CodeMap {
        static MAP: OnceLock<CodeMap> = OnceLock::new();
        MAP.get_or_init(CodeMap::build)
    }

    #[inline]
    fn meta(r: Routine) -> &'static RoutineMeta {
        &ROUTINES[r as usize]
    }

    /// First block of `r`'s region.
    pub fn base(&self, r: Routine) -> BlockAddr {
        BlockAddr(self.bases[r as usize])
    }

    /// Exclusive footprint of `r` in blocks.
    pub fn n_blocks(&self, r: Routine) -> u64 {
        Self::meta(r).blocks
    }

    /// Instructions charged per block visit of `r`.
    pub fn instrs_per_block(&self, r: Routine) -> u16 {
        Self::meta(r).instrs_per_block
    }

    /// Static callees of `r` (the Figure 1 flow graph).
    pub fn calls(&self, r: Routine) -> &'static [Routine] {
        Self::meta(r).calls
    }

    /// The routine owning instruction block `block`, if any.
    pub fn routine_of(&self, block: BlockAddr) -> Option<Routine> {
        if block.0 < CODE_BASE || block.0 >= CODE_BASE + self.total_blocks() {
            return None;
        }
        // Regions are contiguous and sorted: binary search the bases.
        let idx = match self.bases.binary_search(&block.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(ALL_ROUTINES[idx])
    }

    /// Total code footprint in blocks.
    pub fn total_blocks(&self) -> u64 {
        ROUTINES.iter().map(|m| m.blocks).sum()
    }

    /// Transitive closure of `r` over the static call graph (including `r`).
    pub fn closure(&self, r: Routine) -> HashSet<Routine> {
        let mut seen = HashSet::new();
        let mut stack = vec![r];
        while let Some(cur) = stack.pop() {
            if seen.insert(cur) {
                stack.extend(self.calls(cur).iter().copied());
            }
        }
        seen
    }

    /// Inclusive footprint of `r` in blocks: the union of the exclusive
    /// footprints of its call closure. This is the quantity Figure 1's
    /// percentages are expressed in.
    pub fn inclusive_blocks(&self, r: Routine) -> u64 {
        self.closure(r).iter().map(|&x| self.n_blocks(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_contiguous_and_disjoint() {
        let m = CodeMap::global();
        let mut expected = CODE_BASE;
        for &r in &ALL_ROUTINES {
            assert_eq!(m.base(r).0, expected, "{r:?}");
            expected += m.n_blocks(r);
        }
    }

    #[test]
    fn total_footprint_matches_shore_mt_range() {
        let m = CodeMap::global();
        let kb = m.total_blocks() * 64 / 1024;
        assert!(
            (128..=256).contains(&kb),
            "total code footprint {kb} KB outside Shore-MT's 128-256 KB"
        );
    }

    #[test]
    fn routine_of_inverts_regions() {
        let m = CodeMap::global();
        for &r in &ALL_ROUTINES {
            let base = m.base(r);
            assert_eq!(m.routine_of(base), Some(r));
            let last = BlockAddr(base.0 + m.n_blocks(r) - 1);
            assert_eq!(m.routine_of(last), Some(r));
        }
        assert_eq!(m.routine_of(BlockAddr(0)), None);
        assert_eq!(m.routine_of(BlockAddr(CODE_BASE + m.total_blocks())), None);
    }

    #[test]
    fn figure1_probe_ratios() {
        // Figure 1: lookup ~73% of find key, traverse ~71% of lookup,
        // lock ~33% of traverse. Allow +-10 percentage points.
        let m = CodeMap::global();
        let fk = m.inclusive_blocks(FindKey) as f64;
        let lu = m.inclusive_blocks(BtreeLookup) as f64;
        let tr = m.inclusive_blocks(BtreeTraverse) as f64;
        let lk = m.inclusive_blocks(LockAcquire) as f64;
        assert!(
            (lu / fk - 0.73).abs() < 0.10,
            "lookup/find_key = {}",
            lu / fk
        );
        assert!(
            (tr / lu - 0.71).abs() < 0.10,
            "traverse/lookup = {}",
            tr / lu
        );
        assert!(
            (lk / tr - 0.335).abs() < 0.10,
            "lock/traverse = {}",
            lk / tr
        );
    }

    #[test]
    fn figure1_scan_ratios() {
        // initialize cursor ~75% of scan; fetch next ~3x smaller.
        let m = CodeMap::global();
        let ic = m.inclusive_blocks(InitCursor) as f64;
        let fnx = m.inclusive_blocks(FetchNext) as f64;
        let ratio = ic / fnx;
        assert!((2.0..=4.5).contains(&ratio), "init/fetch = {ratio}");
    }

    #[test]
    fn figure1_update_ratios() {
        // pin record page ~40%, update page ~46% of update tuple.
        let m = CodeMap::global();
        let up: u64 = m
            .closure(UpdateTupleApi)
            .iter()
            .map(|&r| m.n_blocks(r))
            .sum();
        let pin = m.inclusive_blocks(PinRecordPage) as f64 / up as f64;
        let upd = m.inclusive_blocks(UpdatePage) as f64 / up as f64;
        assert!((pin - 0.40).abs() < 0.10, "pin share = {pin}");
        assert!((upd - 0.46).abs() < 0.10, "update page share = {upd}");
    }

    #[test]
    fn figure1_insert_ratios() {
        // create record vs create index entry roughly comparable (44/56),
        // allocate page ~47% of create record, SMO ~65% of create index entry.
        let m = CodeMap::global();
        let cr = m.inclusive_blocks(CreateRecord) as f64;
        let cie = m.inclusive_blocks(CreateIndexEntry) as f64;
        let ratio = cr / cie;
        assert!((0.55..=1.1).contains(&ratio), "CR/CIE = {ratio}");
        let alloc = m.inclusive_blocks(AllocatePage) as f64 / cr;
        assert!((alloc - 0.47).abs() < 0.12, "alloc/CR = {alloc}");
        let smo = m.inclusive_blocks(StructuralModification) as f64 / cie;
        assert!((smo - 0.65).abs() < 0.15, "SMO/CIE = {smo}");
    }

    #[test]
    fn closures_contain_self_and_callees() {
        let m = CodeMap::global();
        let c = m.closure(FindKey);
        assert!(c.contains(&FindKey));
        assert!(c.contains(&BtreeTraverse));
        assert!(c.contains(&BpFix));
        assert!(!c.contains(&CreateRecord));
        // Leaf routine closure is itself.
        assert_eq!(m.closure(LogInsert).len(), 1);
    }

    #[test]
    fn operations_exceed_l1i_together() {
        // A transaction executing probe + insert + update must overflow a
        // 32 KB (512-block) L1-I: that is the premise of the whole paper.
        let m = CodeMap::global();
        let mut all = HashSet::new();
        for r in [FindKey, InsertTupleApi, UpdateTupleApi, XctBegin, XctCommit] {
            all.extend(m.closure(r));
        }
        let blocks: u64 = all.iter().map(|&r| m.n_blocks(r)).sum();
        assert!(blocks > 512, "combined ops fit L1-I ({blocks} blocks)");
    }
}
